"""SQL front end: parse and compile the paper's view-definition dialect."""

from repro.sqlfront.compiler import (
    compile_delete,
    compile_insert,
    compile_query,
    compile_view,
    script_to_transaction,
    sql_to_expr,
    sql_to_view,
)
from repro.sqlfront.lexer import Token, tokenize
from repro.sqlfront.parser import (
    CreateView,
    DeleteStatement,
    InsertStatement,
    parse_query,
    parse_script,
    parse_statement,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_query",
    "parse_statement",
    "CreateView",
    "compile_query",
    "compile_insert",
    "compile_delete",
    "script_to_transaction",
    "parse_script",
    "InsertStatement",
    "DeleteStatement",
    "compile_view",
    "sql_to_expr",
    "sql_to_view",
]
