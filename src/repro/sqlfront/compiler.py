"""Compile the SQL parse tree to bag-algebra expressions.

Name resolution follows the classic range-variable discipline of the
paper's Example 1.1: every FROM item binds a range variable (its alias,
or the table name), and the compiler renames each table's columns to
``binding.column`` before forming the join product.  Qualified column
references resolve directly; unqualified ones resolve when they are
unambiguous across the FROM items.

The output is always a *core* bag-algebra expression, so everything the
front end produces is differentiable by Figure 2.
"""

from __future__ import annotations

from typing import Protocol

from repro.algebra.expr import (
    DupElim,
    Expr,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
    except_expr,
    min_expr,
    rename,
)
from repro.algebra.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
)
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import ParseError, SchemaError
from repro.sqlfront.parser import (
    AndCond,
    BinaryOp,
    ColumnRef,
    ComparisonCond,
    Condition,
    CreateView,
    DeleteStatement,
    InsertStatement,
    NotCond,
    Operand,
    OrCond,
    Query,
    SelectCore,
    SetOp,
    UpdateStatement,
    parse_query,
    parse_script,
    parse_statement,
)

__all__ = [
    "Catalog",
    "compile_query",
    "compile_view",
    "compile_insert",
    "compile_delete",
    "compile_update",
    "compile_aggregate_view",
    "script_to_transaction",
    "sql_to_expr",
    "sql_to_view",
]


class Catalog(Protocol):
    """Anything that can resolve table names — e.g. a Database."""

    def ref(self, name: str) -> TableRef: ...


class _Resolver:
    """Column-name resolution for one SELECT core."""

    def __init__(self, bindings: dict[str, tuple[str, ...]]) -> None:
        # binding -> original column names of that table
        self._bindings = bindings
        self._unqualified: dict[str, list[str]] = {}
        for binding, columns in bindings.items():
            for column in columns:
                self._unqualified.setdefault(column, []).append(f"{binding}.{column}")

    def resolve(self, column: ColumnRef) -> str:
        if column.qualifier is not None:
            binding = column.qualifier
            if binding not in self._bindings:
                raise SchemaError(
                    f"unknown range variable {binding!r} in {column.display()!r}",
                    attribute=column.display(),
                    position=column.position,
                )
            if column.name not in self._bindings[binding]:
                raise SchemaError(
                    f"table bound to {binding!r} has no column {column.name!r}",
                    attribute=column.display(),
                    position=column.position,
                )
            return f"{binding}.{column.name}"
        candidates = self._unqualified.get(column.name, [])
        if not candidates:
            raise SchemaError(
                f"unknown column {column.name!r}",
                attribute=column.name,
                position=column.position,
            )
        if len(candidates) > 1:
            raise SchemaError(
                f"ambiguous column {column.name!r}: {candidates}",
                attribute=column.name,
                position=column.position,
            )
        return candidates[0]

    def all_columns(self) -> tuple[tuple[str, str], ...]:
        """All ``(qualified, original)`` column pairs, in FROM order."""
        pairs: list[tuple[str, str]] = []
        for binding, columns in self._bindings.items():
            for column in columns:
                pairs.append((f"{binding}.{column}", column))
        return tuple(pairs)


def _compile_operand(operand: Operand, resolver: _Resolver) -> Term:
    if isinstance(operand, ColumnRef):
        return Attr(resolver.resolve(operand))
    if isinstance(operand, BinaryOp):
        return Arith(
            operand.op,
            _compile_operand(operand.left, resolver),
            _compile_operand(operand.right, resolver),
        )
    return Const(operand.value)


def _compile_condition(condition: Condition, resolver: _Resolver) -> Predicate:
    if isinstance(condition, ComparisonCond):
        return Comparison(
            condition.op,
            _compile_operand(condition.left, resolver),
            _compile_operand(condition.right, resolver),
        )
    if isinstance(condition, AndCond):
        return And(_compile_condition(condition.left, resolver), _compile_condition(condition.right, resolver))
    if isinstance(condition, OrCond):
        return Or(_compile_condition(condition.left, resolver), _compile_condition(condition.right, resolver))
    if isinstance(condition, NotCond):
        return Not(_compile_condition(condition.operand, resolver))
    raise ParseError(f"unknown condition node {type(condition).__name__}")


def _compile_core(core: SelectCore, catalog: Catalog) -> Expr:
    if core.is_aggregate():
        raise ParseError(
            "aggregate queries (GROUP BY / COUNT / SUM) are supported as "
            "materialized views only — use ViewManager.define_view or "
            "compile_aggregate_view"
        )
    bindings: dict[str, tuple[str, ...]] = {}
    sources: list[Expr] = []
    for item in core.from_items:
        base = catalog.ref(item.table)
        binding = item.binding
        if binding in bindings:
            raise SchemaError(f"duplicate range variable {binding!r} in FROM clause")
        columns = base.schema().attributes
        bindings[binding] = columns
        sources.append(rename(base, tuple(f"{binding}.{column}" for column in columns)))

    source = sources[0]
    for extra in sources[1:]:
        source = Product(source, extra)

    resolver = _Resolver(bindings)
    if core.where is not None:
        source = Select(_compile_condition(core.where, resolver), source)

    if core.items is None:
        pairs = resolver.all_columns()
        attrs = tuple(qualified for qualified, __ in pairs)
        names = tuple(original for __, original in pairs)
        result: Expr = Project(attrs, source, names)
    elif all(isinstance(item.column, ColumnRef) for item in core.items):
        attrs = tuple(resolver.resolve(item.column) for item in core.items)
        names = tuple(
            item.alias if item.alias is not None else item.column.name for item in core.items
        )
        result = Project(attrs, source, names)
    else:
        # At least one computed item: a generalized (mapping) projection.
        terms = tuple(_compile_operand(item.column, resolver) for item in core.items)
        names = tuple(
            item.alias if item.alias is not None else item.column.name for item in core.items
        )
        result = MapProject(terms, source, names)
    if core.distinct:
        result = DupElim(result)
    return result


def compile_query(query: Query, catalog: Catalog) -> Expr:
    """Compile a parsed query to a core bag-algebra expression."""
    if isinstance(query, SelectCore):
        return _compile_core(query, catalog)
    if isinstance(query, SetOp):
        left = compile_query(query.left, catalog)
        right = compile_query(query.right, catalog)
        if left.schema().arity != right.schema().arity:
            raise SchemaError(
                f"{query.op}: operand arities differ "
                f"({left.schema().arity} vs {right.schema().arity})"
            )
        if query.op == "UNION ALL":
            return UnionAll(left, right)
        if query.op == "EXCEPT ALL":
            return Monus(left, right)
        if query.op == "EXCEPT":
            return except_expr(left, right)
        if query.op == "INTERSECT ALL":
            return min_expr(left, right)
        if query.op == "INTERSECT":
            return DupElim(min_expr(left, right))
        raise ParseError(f"unknown set operation {query.op!r}")
    raise ParseError(f"unknown query node {type(query).__name__}")


def compile_aggregate_view(name: str, core: SelectCore, catalog: Catalog):
    """Compile an aggregate SELECT core into an
    :class:`~repro.extensions.aggregates.AggregateView`.

    The non-aggregate select items must be exactly the GROUP BY columns
    (listed first); a ``COUNT(*)`` is added implicitly when absent, since
    the incremental maintenance algorithm needs it to track group
    liveness.  The base (pre-grouping) query selects the group columns
    plus every SUM argument.
    """
    from repro.extensions.aggregates import AggregateSpec, AggregateView
    from repro.sqlfront.parser import AggregateItem, SelectItem

    if core.distinct:
        raise SchemaError("DISTINCT cannot be combined with GROUP BY aggregates here")
    if core.items is None:
        raise SchemaError("aggregate queries must list their columns explicitly")
    group_cols = list(core.group_by or ())
    plain_items = [item for item in core.items if isinstance(item, SelectItem)]
    aggregate_items = [item for item in core.items if isinstance(item, AggregateItem)]
    if len(plain_items) + len(aggregate_items) != len(core.items):
        raise SchemaError("unsupported select item in an aggregate query")
    for item in plain_items:
        if not isinstance(item.column, ColumnRef):
            raise SchemaError("non-aggregate select items must be plain GROUP BY columns")
        if item.column not in group_cols:
            raise SchemaError(
                f"column {item.column.display()!r} must appear in GROUP BY"
            )
    if [item.column for item in plain_items] != group_cols:
        raise SchemaError(
            "list the GROUP BY columns first and in GROUP BY order, then the aggregates"
        )

    # Base query: group columns + SUM arguments, duplicates preserved.
    def output_name(column: ColumnRef, alias: str | None = None) -> str:
        return alias if alias is not None else column.name

    base_items: list[SelectItem] = []
    seen: dict[ColumnRef, str] = {}
    for item in plain_items:
        base_items.append(SelectItem(item.column, output_name(item.column, item.alias)))
        seen[item.column] = output_name(item.column, item.alias)
    specs: list[AggregateSpec] = []
    for item in aggregate_items:
        if item.function == "count":
            specs.append(AggregateSpec("count", alias=item.alias))
            continue
        assert item.column is not None
        if item.column not in seen:
            base_items.append(SelectItem(item.column, output_name(item.column)))
            seen[item.column] = output_name(item.column)
        specs.append(AggregateSpec("sum", seen[item.column], alias=item.alias))
    if not any(spec.function == "count" for spec in specs):
        specs.insert(0, AggregateSpec("count"))
    base_core = SelectCore(tuple(base_items), core.from_items, core.where, False)
    base_expr = _compile_core(base_core, catalog)
    base_view = ViewDefinition(f"__base__{name}", base_expr)
    group_names = tuple(seen[column] for column in group_cols)
    return AggregateView(name, base_view, group_names, tuple(specs))


def compile_view(statement: CreateView, catalog: Catalog) -> ViewDefinition:
    """Compile a parsed ``CREATE VIEW`` into a :class:`ViewDefinition`."""
    expr = compile_query(statement.query, catalog)
    if statement.columns is not None:
        if len(statement.columns) != expr.schema().arity:
            raise SchemaError(
                f"view {statement.name!r} declares {len(statement.columns)} columns "
                f"but the query produces {expr.schema().arity}"
            )
        expr = rename(expr, statement.columns)
    return ViewDefinition(statement.name, expr)


def sql_to_expr(source: str, catalog: Catalog) -> Expr:
    """Parse and compile a SQL query in one step."""
    return compile_query(parse_query(source), catalog)


# ----------------------------------------------------------------------
# DML: INSERT / DELETE statements → transaction deltas
# ----------------------------------------------------------------------


def _reorder_columns(statement: InsertStatement, table_ref: TableRef) -> tuple[int, ...] | None:
    """Positions mapping the statement's column order to the table's.

    Returns ``None`` when the statement has no column list (values are
    taken in table order).
    """
    if statement.columns is None:
        return None
    table_attrs = table_ref.schema().attributes
    if sorted(statement.columns) != sorted(table_attrs):
        raise SchemaError(
            f"INSERT column list {list(statement.columns)} must name every column of "
            f"{statement.table!r} ({list(table_attrs)})"
        )
    by_name = {name: index for index, name in enumerate(statement.columns)}
    return tuple(by_name[attr] for attr in table_attrs)


def compile_insert(statement: InsertStatement, catalog: Catalog, txn: UserTransaction) -> None:
    """Add an ``INSERT`` statement's effect to a transaction."""
    table_ref = catalog.ref(statement.table)
    order = _reorder_columns(statement, table_ref)
    if statement.rows is not None:
        arity = table_ref.schema().arity
        rows = []
        for row in statement.rows:
            if len(row) != arity:
                raise SchemaError(
                    f"INSERT row has {len(row)} values, table {statement.table!r} has {arity} columns"
                )
            rows.append(tuple(row[position] for position in order) if order is not None else row)
        txn.insert(statement.table, rows)
        return
    source = compile_query(statement.query, catalog)
    if source.schema().arity != table_ref.schema().arity:
        raise SchemaError(
            f"INSERT SELECT produces {source.schema().arity} columns, table "
            f"{statement.table!r} has {table_ref.schema().arity}"
        )
    if order is not None:
        source = Project(order, source, table_ref.schema().attributes)
    else:
        source = rename(source, table_ref.schema().attributes)
    txn.insert_query(statement.table, source)


def compile_delete(statement: DeleteStatement, catalog: Catalog, txn: UserTransaction) -> None:
    """Add a ``DELETE`` statement's effect to a transaction."""
    table_ref = catalog.ref(statement.table)
    if statement.where is None:
        txn.delete_query(statement.table, table_ref)
        return
    resolver = _Resolver({statement.table: table_ref.schema().attributes})
    predicate = _compile_condition(statement.where, resolver)
    qualified = rename(table_ref, tuple(f"{statement.table}.{a}" for a in table_ref.schema().attributes))
    selected = Select(predicate, qualified)
    txn.delete_query(statement.table, rename(selected, table_ref.schema().attributes))


def compile_update(statement: UpdateStatement, catalog: Catalog, txn: UserTransaction) -> None:
    """Add an ``UPDATE`` statement's effect to a transaction.

    Compiled as delete-the-victims plus insert-the-rewritten-victims,
    both reading the pre-transaction state — the paper's simple
    transaction form of an update.
    """
    table_ref = catalog.ref(statement.table)
    attrs = table_ref.schema().attributes
    resolver = _Resolver({statement.table: attrs})
    qualified = rename(table_ref, tuple(f"{statement.table}.{a}" for a in attrs))
    if statement.where is not None:
        victims: Expr = Select(_compile_condition(statement.where, resolver), qualified)
    else:
        victims = qualified
    set_terms: dict[str, Term] = {}
    for column, expression in statement.assignments:
        if column not in attrs:
            raise SchemaError(f"table {statement.table!r} has no column {column!r}")
        if column in set_terms:
            raise SchemaError(f"column {column!r} assigned twice in UPDATE")
        set_terms[column] = _compile_operand(expression, resolver)
    terms = tuple(
        set_terms.get(attr_name, Attr(f"{statement.table}.{attr_name}")) for attr_name in attrs
    )
    victims_plain = rename(victims, attrs)
    txn.delete_query(statement.table, victims_plain)
    txn.insert_query(statement.table, MapProject(terms, victims, attrs))


def script_to_transaction(source: str, catalog: Catalog, txn: UserTransaction) -> UserTransaction:
    """Compile a ``;``-separated DML script into one transaction.

    All statements execute with the paper's simultaneous semantics:
    every delta is evaluated against the pre-transaction state.
    Queries and ``CREATE VIEW`` are rejected here.
    """
    for statement in parse_script(source):
        if isinstance(statement, InsertStatement):
            compile_insert(statement, catalog, txn)
        elif isinstance(statement, DeleteStatement):
            compile_delete(statement, catalog, txn)
        elif isinstance(statement, UpdateStatement):
            compile_update(statement, catalog, txn)
        else:
            raise ParseError(
                f"only INSERT/DELETE/UPDATE allowed in a DML script, found {type(statement).__name__}"
            )
    return txn


def sql_to_view(source: str, catalog: Catalog, *, name: str | None = None) -> ViewDefinition:
    """Parse and compile a view definition.

    Accepts either ``CREATE VIEW ... AS SELECT ...`` (name taken from
    the statement) or a bare query with an explicit ``name=``.
    """
    statement = parse_statement(source)
    if isinstance(statement, CreateView):
        view = compile_view(statement, catalog)
        if name is not None and name != view.name:
            view = ViewDefinition(name, view.query)
        return view
    if isinstance(statement, (InsertStatement, DeleteStatement, UpdateStatement)):
        raise ParseError("a view definition must be a query, not a DML statement")
    if name is None:
        raise ParseError("a bare query needs an explicit view name")
    return ViewDefinition(name, compile_query(statement, catalog))
