"""Tokenizer for the SQL subset used by the view definitions.

The dialect covers the paper's Example 1.1 and a little more:
``CREATE VIEW``, ``SELECT [DISTINCT]``, comma joins with range
variables, ``WHERE`` with comparison predicates and ``AND``/``OR``/
``NOT``, plus the bag set operations ``UNION ALL``, ``EXCEPT [ALL]``
and ``INTERSECT [ALL]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "CREATE",
        "VIEW",
        "AS",
        "SELECT",
        "DISTINCT",
        "ALL",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "UNION",
        "EXCEPT",
        "INTERSECT",
        "NULL",
        "TRUE",
        "FALSE",
        "INSERT",
        "INTO",
        "TABLE",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "GROUP",
        "BY",
    }
)

_PUNCT = {",", "(", ")", "*", ".", ";"}
_ARITH = {"+", "/"}
_COMPARISON_START = {"=", "!", "<", ">"}


@dataclass(frozen=True)
class Token:
    """One lexical token: a ``kind``, its ``text``, and source position."""

    kind: str  # KEYWORD | NAME | NUMBER | STRING | OP | PUNCT | EOF
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char.isspace():
            index += 1
            continue
        start = index
        if char == "'":
            index += 1
            pieces: list[str] = []
            while True:
                if index >= length:
                    raise ParseError("unterminated string literal", start)
                if source[index] == "'":
                    if index + 1 < length and source[index + 1] == "'":
                        pieces.append("'")
                        index += 2
                        continue
                    index += 1
                    break
                pieces.append(source[index])
                index += 1
            tokens.append(Token("STRING", "".join(pieces), start))
        elif char == '"':
            # Double-quoted string literals are accepted as a convenience.
            index += 1
            pieces = []
            while index < length and source[index] != '"':
                pieces.append(source[index])
                index += 1
            if index >= length:
                raise ParseError("unterminated string literal", start)
            index += 1
            tokens.append(Token("STRING", "".join(pieces), start))
        elif char.isdigit() or (char == "-" and index + 1 < length and source[index + 1].isdigit()):
            index += 1
            seen_dot = False
            while index < length and (source[index].isdigit() or (source[index] == "." and not seen_dot)):
                if source[index] == ".":
                    # A dot not followed by a digit is the qualifier dot.
                    if index + 1 >= length or not source[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            tokens.append(Token("NUMBER", source[start:index], start))
        elif char.isalpha() or char == "_":
            index += 1
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("NAME", word, start))
        elif char in _ARITH:
            tokens.append(Token("OP", char, start))
            index += 1
        elif char == "-":
            tokens.append(Token("OP", "-", start))
            index += 1
        elif char in _COMPARISON_START:
            if source.startswith(("!=", "<>", "<=", ">="), index):
                text = source[index : index + 2]
                tokens.append(Token("OP", "!=" if text == "<>" else text, start))
                index += 2
            elif char in {"=", "<", ">"}:
                tokens.append(Token("OP", char, start))
                index += 1
            else:
                raise ParseError(f"unexpected character {char!r}", start)
        elif char in _PUNCT:
            tokens.append(Token("PUNCT", char, start))
            index += 1
        else:
            raise ParseError(f"unexpected character {char!r}", start)
    tokens.append(Token("EOF", "", length))
    return tokens
