"""Recursive-descent parser producing a small SQL parse tree.

The parse tree (``Select*`` dataclasses below) is deliberately separate
from the bag-algebra AST: the compiler in
:mod:`repro.sqlfront.compiler` resolves names against a catalog and
emits :class:`~repro.algebra.expr.Expr` trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.errors import ParseError
from repro.sqlfront.lexer import Token, tokenize

__all__ = [
    "ColumnRef",
    "InsertStatement",
    "DeleteStatement",
    "UpdateStatement",
    "BinaryOp",
    "Statement",
    "parse_script",
    "LiteralValue",
    "ComparisonCond",
    "AndCond",
    "OrCond",
    "NotCond",
    "SelectItem",
    "AggregateItem",
    "FromItem",
    "SelectCore",
    "SetOp",
    "CreateView",
    "CreateTable",
    "parse_statement",
    "parse_query",
]


# ----------------------------------------------------------------------
# Parse-tree nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """``[qualifier.]name`` in a select list or predicate.

    ``position`` is the character offset of the reference in the source
    text; it is excluded from equality/hashing so column identity stays
    purely name-based.
    """

    name: str
    qualifier: str | None = None
    position: int | None = field(default=None, compare=False)

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class LiteralValue:
    """A literal constant in a predicate."""

    value: Any


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic over operands: ``left op right`` with op in ``+ - * /``."""

    op: str
    left: "Operand"
    right: "Operand"


Operand = Union[ColumnRef, LiteralValue, BinaryOp]


@dataclass(frozen=True)
class ComparisonCond:
    op: str
    left: Operand
    right: Operand


@dataclass(frozen=True)
class AndCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class OrCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class NotCond:
    operand: "Condition"


Condition = Union[ComparisonCond, AndCond, OrCond, NotCond]


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column or expression, with optional alias."""

    column: "Operand"
    alias: str | None = None


@dataclass(frozen=True)
class AggregateItem:
    """An aggregate select-list entry: ``COUNT(*)`` or ``SUM(column)``."""

    function: str  # "count" | "sum"
    column: ColumnRef | None
    alias: str | None = None


@dataclass(frozen=True)
class FromItem:
    """One FROM entry: a table with an optional range variable."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias if self.alias else self.table


@dataclass(frozen=True)
class SelectCore:
    """One SELECT ... FROM ... [WHERE ...] [GROUP BY ...] block."""

    items: tuple["SelectItem | AggregateItem", ...] | None  # None means SELECT *
    from_items: tuple[FromItem, ...]
    where: Condition | None
    distinct: bool
    group_by: tuple[ColumnRef, ...] | None = None

    def is_aggregate(self) -> bool:
        """Whether this core uses GROUP BY or aggregate functions."""
        if self.group_by is not None:
            return True
        return any(isinstance(item, AggregateItem) for item in self.items or ())


@dataclass(frozen=True)
class SetOp:
    """``left <op> right`` where op ∈ {UNION ALL, EXCEPT, EXCEPT ALL,
    INTERSECT, INTERSECT ALL}."""

    op: str
    left: "Query"
    right: "Query"


Query = Union[SelectCore, SetOp]


@dataclass(frozen=True)
class CreateView:
    """``CREATE VIEW name [(columns)] AS query``."""

    name: str
    columns: tuple[str, ...] | None
    query: Query


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col, col, …)`` — untyped columns."""

    name: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table [(columns)] VALUES (...), ...`` or
    ``INSERT INTO table [(columns)] SELECT ...``."""

    table: str
    columns: tuple[str, ...] | None
    #: Literal rows (``VALUES`` form) …
    rows: tuple[tuple[Any, ...], ...] | None
    #: … or a source query (``INSERT … SELECT`` form).
    query: Query | None


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE condition]``."""

    table: str
    where: Condition | None


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET col = expr [, …] [WHERE condition]``."""

    table: str
    assignments: tuple[tuple[str, "Operand"], ...]
    where: Condition | None


Statement = Union[Query, CreateView, CreateTable, InsertStatement, DeleteStatement, UpdateStatement]


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._last: Token | None = None

    # Token helpers -----------------------------------------------------

    @property
    def last_position(self) -> int:
        """Position of the most recently consumed token (0 before any)."""
        return self._last.position if self._last is not None else 0

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
            self._last = token
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected}, found {actual.text or actual.kind!r}", actual.position)
        return token

    # Grammar -----------------------------------------------------------

    def statement(self) -> Statement:
        result = self.single_statement()
        self._accept("PUNCT", ";")
        self._expect("EOF")
        return result

    def script(self) -> list[Statement]:
        """A ``;``-separated sequence of statements."""
        statements = [self.single_statement()]
        while self._accept("PUNCT", ";"):
            if self._check("EOF"):
                break
            statements.append(self.single_statement())
        self._expect("EOF")
        return statements

    def single_statement(self) -> Statement:
        if self._check("KEYWORD", "CREATE"):
            if self._tokens[self._index + 1].text == "TABLE":
                return self.create_table()
            return self.create_view()
        if self._check("KEYWORD", "INSERT"):
            return self.insert_statement()
        if self._check("KEYWORD", "DELETE"):
            return self.delete_statement()
        if self._check("KEYWORD", "UPDATE"):
            return self.update_statement()
        return self.query()

    def insert_statement(self) -> InsertStatement:
        self._expect("KEYWORD", "INSERT")
        self._expect("KEYWORD", "INTO")
        table = self._expect("NAME").text
        columns: tuple[str, ...] | None = None
        if self._accept("PUNCT", "("):
            names = [self._expect("NAME").text]
            while self._accept("PUNCT", ","):
                names.append(self._expect("NAME").text)
            self._expect("PUNCT", ")")
            columns = tuple(names)
        if self._accept("KEYWORD", "VALUES"):
            rows = [self.value_row()]
            while self._accept("PUNCT", ","):
                rows.append(self.value_row())
            return InsertStatement(table, columns, tuple(rows), None)
        return InsertStatement(table, columns, None, self.query())

    def value_row(self) -> tuple[Any, ...]:
        self._expect("PUNCT", "(")
        values = [self.literal_value()]
        while self._accept("PUNCT", ","):
            values.append(self.literal_value())
        self._expect("PUNCT", ")")
        return tuple(values)

    def literal_value(self) -> Any:
        operand = self.operand()
        if not isinstance(operand, LiteralValue):
            raise ParseError("VALUES rows must contain literals only", self._peek().position)
        return operand.value

    def update_statement(self) -> UpdateStatement:
        self._expect("KEYWORD", "UPDATE")
        table = self._expect("NAME").text
        self._expect("KEYWORD", "SET")
        assignments = [self.set_clause()]
        while self._accept("PUNCT", ","):
            assignments.append(self.set_clause())
        where: Condition | None = None
        if self._accept("KEYWORD", "WHERE"):
            where = self.condition()
        return UpdateStatement(table, tuple(assignments), where)

    def set_clause(self) -> tuple[str, Operand]:
        column = self._expect("NAME").text
        self._expect("OP", "=")
        return column, self.expression()

    def delete_statement(self) -> DeleteStatement:
        self._expect("KEYWORD", "DELETE")
        self._expect("KEYWORD", "FROM")
        table = self._expect("NAME").text
        where: Condition | None = None
        if self._accept("KEYWORD", "WHERE"):
            where = self.condition()
        return DeleteStatement(table, where)

    def create_table(self) -> CreateTable:
        self._expect("KEYWORD", "CREATE")
        self._expect("KEYWORD", "TABLE")
        name = self._expect("NAME").text
        self._expect("PUNCT", "(")
        columns = [self._expect("NAME").text]
        while self._accept("PUNCT", ","):
            columns.append(self._expect("NAME").text)
        self._expect("PUNCT", ")")
        return CreateTable(name, tuple(columns))

    def create_view(self) -> CreateView:
        self._expect("KEYWORD", "CREATE")
        self._expect("KEYWORD", "VIEW")
        name = self._expect("NAME").text
        columns: tuple[str, ...] | None = None
        if self._accept("PUNCT", "("):
            names = [self._expect("NAME").text]
            while self._accept("PUNCT", ","):
                names.append(self._expect("NAME").text)
            self._expect("PUNCT", ")")
            columns = tuple(names)
        self._expect("KEYWORD", "AS")
        return CreateView(name, columns, self.query())

    def query(self) -> Query:
        left = self.select_core()
        while True:
            if self._accept("KEYWORD", "UNION"):
                self._expect("KEYWORD", "ALL")
                left = SetOp("UNION ALL", left, self.select_core())
            elif self._accept("KEYWORD", "EXCEPT"):
                op = "EXCEPT ALL" if self._accept("KEYWORD", "ALL") else "EXCEPT"
                left = SetOp(op, left, self.select_core())
            elif self._accept("KEYWORD", "INTERSECT"):
                op = "INTERSECT ALL" if self._accept("KEYWORD", "ALL") else "INTERSECT"
                left = SetOp(op, left, self.select_core())
            else:
                return left

    def select_core(self) -> SelectCore:
        if self._accept("PUNCT", "("):
            # Parenthesized query: restart at the set-operation level.
            inner = self.query()
            self._expect("PUNCT", ")")
            if isinstance(inner, SetOp):
                raise ParseError("nested set operations must appear at the top level", self._peek().position)
            return inner
        self._expect("KEYWORD", "SELECT")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        if not distinct:
            self._accept("KEYWORD", "ALL")
        items: tuple[SelectItem, ...] | None
        if self._accept("PUNCT", "*"):
            items = None
        else:
            entries = [self.select_item()]
            while self._accept("PUNCT", ","):
                entries.append(self.select_item())
            items = tuple(entries)
        self._expect("KEYWORD", "FROM")
        from_items = [self.from_item()]
        while self._accept("PUNCT", ","):
            from_items.append(self.from_item())
        where: Condition | None = None
        if self._accept("KEYWORD", "WHERE"):
            where = self.condition()
        group_by: tuple[ColumnRef, ...] | None = None
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_cols = [self.column_ref()]
            while self._accept("PUNCT", ","):
                group_cols.append(self.column_ref())
            group_by = tuple(group_cols)
        return SelectCore(items, tuple(from_items), where, distinct, group_by)

    def select_item(self) -> "SelectItem | AggregateItem":
        if (
            self._check("NAME")
            and self._peek().text.upper() in ("COUNT", "SUM")
            and self._tokens[self._index + 1].kind == "PUNCT"
            and self._tokens[self._index + 1].text == "("
        ):
            return self.aggregate_item()
        expression = self.expression()
        alias: str | None = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("NAME").text
        elif self._check("NAME"):
            alias = self._advance().text
        if alias is None and not isinstance(expression, ColumnRef):
            raise ParseError(
                "a computed select item needs an alias (… AS name)", self._peek().position
            )
        return SelectItem(expression, alias)

    def aggregate_item(self) -> AggregateItem:
        function = self._expect("NAME").text.lower()
        self._expect("PUNCT", "(")
        column: ColumnRef | None = None
        if function == "count":
            self._expect("PUNCT", "*")
        else:
            column = self.column_ref()
        self._expect("PUNCT", ")")
        alias: str | None = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("NAME").text
        elif self._check("NAME"):
            alias = self._advance().text
        return AggregateItem(function, column, alias)

    def from_item(self) -> FromItem:
        name = self._expect("NAME").text
        alias: str | None = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("NAME").text
        elif self._check("NAME"):
            alias = self._advance().text
        return FromItem(name, alias)

    def column_ref(self) -> ColumnRef:
        token = self._expect("NAME")
        if self._accept("PUNCT", "."):
            second = self._expect("NAME").text
            return ColumnRef(second, qualifier=token.text, position=token.position)
        return ColumnRef(token.text, position=token.position)

    # Conditions ---------------------------------------------------------

    def condition(self) -> Condition:
        left = self.and_condition()
        while self._accept("KEYWORD", "OR"):
            left = OrCond(left, self.and_condition())
        return left

    def and_condition(self) -> Condition:
        left = self.not_condition()
        while self._accept("KEYWORD", "AND"):
            left = AndCond(left, self.not_condition())
        return left

    def not_condition(self) -> Condition:
        if self._accept("KEYWORD", "NOT"):
            return NotCond(self.not_condition())
        if self._check("PUNCT", "("):
            # "(" may open a nested condition or a parenthesized
            # arithmetic term: try the condition reading, backtrack to a
            # comparison on failure.
            mark = self._index
            try:
                self._advance()
                inner = self.condition()
                self._expect("PUNCT", ")")
                return inner
            except ParseError:
                self._index = mark
        return self.comparison()

    COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})

    def comparison(self) -> ComparisonCond:
        left = self.expression()
        op_token = self._expect("OP")
        if op_token.text not in self.COMPARISON_OPS:
            raise ParseError(f"expected a comparison operator, found {op_token.text!r}", op_token.position)
        right = self.expression()
        return ComparisonCond(op_token.text, left, right)

    # Arithmetic expression grammar -----------------------------------

    def expression(self) -> Operand:
        left = self.term_mul()
        while True:
            if self._accept("OP", "+"):
                left = BinaryOp("+", left, self.term_mul())
            elif self._accept("OP", "-"):
                left = BinaryOp("-", left, self.term_mul())
            elif self._check("NUMBER") and self._peek().text.startswith("-"):
                # "a -1" lexes the minus into the number; read it as a
                # subtraction of the absolute value.
                token = self._advance()
                text = token.text[1:]
                value = float(text) if "." in text else int(text)
                left = BinaryOp("-", left, LiteralValue(value))
            else:
                return left

    def term_mul(self) -> Operand:
        left = self.unary()
        while True:
            if self._accept("PUNCT", "*"):
                left = BinaryOp("*", left, self.unary())
            elif self._accept("OP", "/"):
                left = BinaryOp("/", left, self.unary())
            else:
                return left

    def unary(self) -> Operand:
        if self._accept("OP", "-"):
            return BinaryOp("-", LiteralValue(0), self.unary())
        if self._accept("PUNCT", "("):
            inner = self.expression()
            self._expect("PUNCT", ")")
            return inner
        return self.operand()

    def operand(self) -> Operand:
        token = self._peek()
        if token.kind == "NAME":
            return self.column_ref()
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            return LiteralValue(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            self._advance()
            return LiteralValue(token.text)
        if token.kind == "KEYWORD" and token.text in {"NULL", "TRUE", "FALSE"}:
            self._advance()
            return LiteralValue({"NULL": None, "TRUE": True, "FALSE": False}[token.text])
        raise ParseError(f"expected an operand, found {token.text or token.kind!r}", token.position)


def parse_statement(source: str) -> Statement:
    """Parse one full statement (query, CREATE VIEW, INSERT, or DELETE)."""
    return _Parser(tokenize(source)).statement()


def parse_script(source: str) -> list[Statement]:
    """Parse a ``;``-separated script of statements."""
    return _Parser(tokenize(source)).script()


def parse_query(source: str) -> Query:
    """Parse a query; reject DDL/DML statements."""
    parser = _Parser(tokenize(source))
    result = parser.statement()
    if not isinstance(result, (SelectCore, SetOp)):
        raise ParseError(
            f"expected a query, found {type(result).__name__}",
            parser.last_position,
        )
    return result
