"""Batch-at-a-time execution of compiled physical plans.

The :class:`VectorizedExecutor` reuses the :class:`~repro.exec.compiler.Compiler`
lowering unchanged — equi-join detection, source-access fusion, index
selection, static pruning, and the shared plan cache are identical to
the tuple-at-a-time engine — but walks the resulting ``PNode`` tree
with *columnar kernels* over :class:`~repro.algebra.columnar.ColumnBatch`
values instead of calling ``PNode.execute``:

* stored tables are cached as column batches and maintained
  **incrementally**: the executor registers a write listener with its
  database, so a ``Bag.patch``-driven write appends ``O(|delta|)``
  physical rows (inserts as-is, clamped deletes with negated
  multiplicities) instead of re-decomposing the table, consolidating
  lazily when the appended tail outgrows the table's support;
* projection is a column gather, union-all a column append;
* selections and maps run over the batch in one pass, carrying signed
  multiplicities through untouched (linear operators distribute over
  the net — see :mod:`repro.algebra.columnar`);
* equi-joins keep both compiled strategies: the probe side drives
  lookups into the same maintained hash indexes the tuple engine uses,
  or both sides hash classically with multiplicities multiplying
  (bilinear, so signed batches join without consolidation);
* the nonlinear operators — ε, ∸, min — consolidate their inputs at
  the kernel boundary, the only places canonicalization is paid;
* every node keeps a version-stamped batch memo (same stamp discipline
  as ``PNode.execute``), and the final ``Bag`` materialization is
  memoized per node as well, so an unchanged expression re-evaluates
  in O(1).

Cost accounting: batch kernels charge the physical rows they touch
under the same operator names as the tuple engine; pure structural
kernels (gather, append) touch no rows and charge nothing — that gap
*is* the measured win.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.algebra.bag import Bag, Row
from repro.algebra.columnar import ColumnBatch
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr
from repro.errors import ReproError, UnknownTableError
from repro.exec.compiler import (
    Compiler,
    PDedup,
    PEquiJoin,
    PFilter,
    PIndexSelect,
    PLiteral,
    PMap,
    PMonus,
    PNode,
    PPipeline,
    PProduct,
    PProject,
    PScan,
    PUnionAll,
)
from repro.exec.executor import ExecutionContext, Executor
from repro.robustness.faults import fault_point

__all__ = ["VectorizedExecutor", "TableBatchCache"]

#: Consolidate a delta-appended table batch once its physical rows
#: exceed this multiple of the table's distinct-row support.
_COMPACT_FACTOR = 2


def _filter_project_shape(
    steps: list[tuple[str, object]],
) -> tuple[list, tuple[int, ...] | None] | None:
    """Recognize a fused chain of filters with at most one trailing project.

    Returns ``(predicates, positions)`` when the chain is columnar-safe
    (``positions`` is ``None`` for a pure filter chain), else ``None``.
    """
    predicates = []
    positions: tuple[int, ...] | None = None
    for index, (kind, payload) in enumerate(steps):
        if kind == "filter":
            predicates.append(payload)
        elif kind == "project" and index == len(steps) - 1:
            positions = payload  # type: ignore[assignment]
        else:
            return None
    return predicates, positions


class TableBatchCache:
    """Column batches for stored tables, maintained through writes.

    Registered as a write listener on the owning database: patches
    append delta rows in place (the batch stays netting-exact because
    deletes are clamped against the pre-patch value), wholesale
    replacements just drop the entry so the next scan re-decomposes.
    """

    def __init__(self) -> None:
        self._batches: dict[str, ColumnBatch] = {}

    # -- write-listener protocol ---------------------------------------

    def on_patch(self, name: str, delete: Bag, insert: Bag, before: Bag, after: Bag) -> None:
        batch = self._batches.get(name)
        if batch is None:
            return
        batch.append_patch(delete, insert, before)

    def on_replace(self, name: str, bag: Bag) -> None:
        self._batches.pop(name, None)

    def on_drop(self, name: str) -> None:
        self._batches.pop(name, None)

    # -- reads ---------------------------------------------------------

    def get(self, name: str, bag: Bag, arity: int) -> ColumnBatch:
        """The batch for ``name``, decomposed on first use and compacted
        when the appended delta tail outgrows the table's support.

        ``arity`` is the table's *schema* arity — an empty bag cannot
        supply it, and a batch decomposed without columns could never
        absorb appended deltas.
        """
        batch = self._batches.get(name)
        if batch is None:
            batch = ColumnBatch.from_pairs(bag.items(), arity)
            self._batches[name] = batch
        elif len(batch) > _COMPACT_FACTOR * max(bag.distinct_count(), 16):
            # ``consolidate`` is pure, so the swap below is the whole
            # commit: a fault raised before it leaves the (larger but
            # correct) delta-appended batch in place, never a torn one.
            consolidated = batch.consolidate()
            fault_point("crash-mid-consolidate")
            batch = consolidated
            self._batches[name] = batch
        return batch


class VectorizedExecutor(Executor):
    """Run compiled plans with columnar kernels (``exec_mode="vectorized"``)."""

    def __init__(self, database) -> None:
        super().__init__(database)
        self._table_cache = TableBatchCache()
        database.add_write_listener(self._table_cache)
        #: node -> [stamp, batch, bag-or-None]; nodes hash by identity.
        self._batch_memo: dict[PNode, list] = {}

    # -- entry points --------------------------------------------------

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        node = self._nodes.get(expr)
        if node is not None:
            if counter is not None:
                counter.plan_hits += 1
        else:
            if counter is not None:
                counter.plan_misses += 1
            if len(self._nodes) > self.MAX_NODES:
                self._nodes.clear()
                self._batch_memo.clear()
            node = Compiler(self._nodes).compile(expr)
        ctx = self._context(counter)
        entry = self._run(node, ctx)
        if entry[2] is None:
            entry[2] = entry[1].to_bag()
        return entry[2]

    # -- the batch interpreter -----------------------------------------

    def _run(self, node: PNode, ctx: ExecutionContext) -> list:
        """Execute ``node`` to a memo entry ``[stamp, batch, bag|None]``."""
        stamp = ctx.stamp_for(node.tables)
        entry = self._batch_memo.get(node)
        if entry is not None and entry[0] == stamp:
            if ctx.counter is not None:
                ctx.counter.memo_hits += 1
            return entry
        if node.check_empty and node.runtime_empty(ctx.state):
            batch = ColumnBatch.empty()
        else:
            batch = self._kernel(node, ctx)
        # Build the entry fully before publishing (same value-before-
        # stamp discipline as PNode.execute for parallel readers).
        entry = [stamp, batch, None]
        self._batch_memo[node] = entry
        return entry

    def _batch(self, node: PNode, ctx: ExecutionContext) -> ColumnBatch:
        return self._run(node, ctx)[1]

    def _kernel(self, node: PNode, ctx: ExecutionContext) -> ColumnBatch:
        kernel = _KERNELS.get(type(node))
        if kernel is None:
            raise ReproError(f"no vectorized kernel for {type(node).__name__}")
        return kernel(self, node, ctx)

    # -- table access --------------------------------------------------

    def _scan_batch(self, name: str, ctx: ExecutionContext) -> ColumnBatch:
        try:
            bag = ctx.state[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} is not present in the database state") from None
        return self._table_cache.get(name, bag, self._database.schema_of(name).arity)

    # -- kernels -------------------------------------------------------

    def _k_scan(self, node: PScan, ctx) -> ColumnBatch:
        batch = self._scan_batch(node.name, ctx)
        if ctx.counter is not None:
            ctx.counter.record("scan", len(batch))
        return batch

    def _k_literal(self, node: PLiteral, ctx) -> ColumnBatch:
        if ctx.counter is not None:
            ctx.counter.record("literal", len(node.bag))
        return ColumnBatch.from_bag(node.bag)

    def _k_pipeline(self, node: PPipeline, ctx) -> ColumnBatch:
        base = self._scan_batch(node.access.table, ctx)
        out_arity = len(node.access.out_map)
        fast = _filter_project_shape(node.access.steps)
        if fast is not None and base.arity:
            # Columnar fast path for the dominant σ*→Π chain: predicates
            # run once per physical row to build a mask, then values move
            # column-wise — no per-row output tuples, no pair transpose.
            predicates, positions = fast
            read = len(base)
            if predicates:
                if len(predicates) == 1:
                    predicate = predicates[0]
                    mask = [predicate(row) for row in zip(*base.columns)]
                else:
                    mask = [
                        all(predicate(row) for predicate in predicates)
                        for row in zip(*base.columns)
                    ]
                columns = tuple(
                    [value for value, keep in zip(column, mask) if keep]
                    for column in base.columns
                )
                mults = [count for count, keep in zip(base.mults, mask) if keep]
                batch = ColumnBatch(columns, mults, base.arity)
            else:
                batch = base
            if positions is not None:
                batch = batch.gather(positions)
            if ctx.counter is not None:
                ctx.counter.record("scan", read)
            return batch
        apply = node.access.apply
        pairs = []
        read = 0
        for row, count in base.rows():
            read += 1
            image = apply(row)
            if image is not None:
                pairs.append((image, count))
        if ctx.counter is not None:
            ctx.counter.record("scan", read)
        return ColumnBatch.from_pairs(pairs, out_arity)

    def _k_index_select(self, node: PIndexSelect, ctx) -> ColumnBatch:
        try:
            base = ctx.state[node.access.table]
        except KeyError:
            raise UnknownTableError(
                f"table {node.access.table!r} is not present in the database state"
            ) from None
        index = ctx.indexes.get(node.access.table, node.key_positions, base, counter=ctx.counter)
        bucket = index.lookup(node.key_values)
        apply = node.access.apply
        residual = node.residual
        pairs = []
        examined = 0
        for row, count in bucket.items():
            examined += 1
            image = apply(row)
            if image is None:
                continue
            if residual is not None and not residual(image):
                continue
            pairs.append((image, count))
        if ctx.counter is not None:
            ctx.counter.record_probes("index_probe", 1)
            ctx.counter.record("index_select", examined)
        return ColumnBatch.from_pairs(pairs, len(node.access.out_map))

    def _k_filter(self, node: PFilter, ctx) -> ColumnBatch:
        child = self._batch(node.child, ctx)
        predicate = node.predicate
        mask = [predicate(row) for row, _count in child.rows()]
        columns = tuple(
            [value for value, keep in zip(column, mask) if keep] for column in child.columns
        )
        mults = [count for count, keep in zip(child.mults, mask) if keep]
        if ctx.counter is not None:
            ctx.counter.record("select", len(mults))
        return ColumnBatch(columns, mults, child.arity)

    def _k_project(self, node: PProject, ctx) -> ColumnBatch:
        child = self._batch(node.child, ctx)
        # The columnar win: a gather shares columns and touches no rows.
        return child.gather(node.positions)

    def _k_map(self, node: PMap, ctx) -> ColumnBatch:
        child = self._batch(node.child, ctx)
        functions = node.functions
        pairs = [
            (tuple(function(row) for function in functions), count) for row, count in child.rows()
        ]
        if ctx.counter is not None:
            ctx.counter.record("map", len(pairs))
        return ColumnBatch.from_pairs(pairs, len(functions))

    def _k_dedup(self, node: PDedup, ctx) -> ColumnBatch:
        child = self._batch(node.child, ctx)
        pairs = [(row, 1) for row, count in child.net_counts().items() if count > 0]
        if ctx.counter is not None:
            ctx.counter.record("dedup", len(pairs))
        return ColumnBatch.from_pairs(pairs, child.arity)

    def _k_union_all(self, node: PUnionAll, ctx) -> ColumnBatch:
        left = self._batch(node.left, ctx)
        right = self._batch(node.right, ctx)
        # Structural append; no per-row work, nothing charged.
        return left.concat(right)

    def _k_monus(self, node: PMonus, ctx) -> ColumnBatch:
        if node.right.runtime_empty(ctx.state):
            return self._batch(node.left, ctx)
        left = self._batch(node.left, ctx)
        counts = left.net_counts()
        left_arity = left.arity
        if node.probe_table is not None:
            try:
                probe_bag = ctx.state[node.probe_table]
            except KeyError:
                raise UnknownTableError(
                    f"table {node.probe_table!r} is not present in the database state"
                ) from None
            lookup = probe_bag.multiplicity
            if ctx.counter is not None:
                ctx.counter.record_probes("probe", len(counts))
        else:
            right_counts: Mapping[Row, int] = self._batch(node.right, ctx).net_counts()
            lookup = lambda row: right_counts.get(row, 0)  # noqa: E731
        pairs = []
        for row, count in counts.items():
            remaining = count - lookup(row)
            if remaining > 0:
                pairs.append((row, remaining))
        if ctx.counter is not None:
            ctx.counter.record("monus", len(pairs))
        return ColumnBatch.from_pairs(pairs, left_arity)

    def _k_product(self, node: PProduct, ctx) -> ColumnBatch:
        left = self._batch(node.left, ctx)
        right = self._batch(node.right, ctx)
        pairs = []
        right_rows = list(right.rows())
        for lrow, lcount in left.rows():
            for rrow, rcount in right_rows:
                pairs.append((lrow + rrow, lcount * rcount))
        if ctx.counter is not None:
            ctx.counter.record("product", len(pairs))
        return ColumnBatch.from_pairs(pairs, left.arity + right.arity)

    def _k_equijoin(self, node: PEquiJoin, ctx) -> ColumnBatch:
        indexed = node._index_side(ctx)
        if indexed is not None:
            return self._probe_join(node, ctx, indexed)
        return self._hash_join(node, ctx)

    def _probe_join(self, node: PEquiJoin, ctx, indexed) -> ColumnBatch:
        probe = node.right if indexed is node.left else node.left
        probe_batch = self._batch(probe.node, ctx)
        try:
            base = ctx.state[indexed.access.table]
        except KeyError:
            raise UnknownTableError(
                f"table {indexed.access.table!r} is not present in the database state"
            ) from None
        index = ctx.indexes.get(indexed.access.table, indexed.base_key_positions, base, counter=ctx.counter)
        probe_positions = probe.key_positions
        probe_filter = probe.side_filter
        indexed_filter = indexed.side_filter
        apply = indexed.access.apply
        residual = node.residual
        left_is_probe = probe is node.left
        pairs = []
        probes = 0
        examined = 0
        for probe_row, probe_count in probe_batch.rows():
            if probe_filter is not None and not probe_filter(probe_row):
                continue
            probes += 1
            bucket = index.lookup(tuple(probe_row[position] for position in probe_positions))
            if not bucket:
                continue
            for base_row, base_count in bucket.items():
                examined += 1
                image = apply(base_row)
                if image is None:
                    continue
                if indexed_filter is not None and not indexed_filter(image):
                    continue
                joined = probe_row + image if left_is_probe else image + probe_row
                if residual is not None and not residual(joined):
                    continue
                pairs.append((joined, probe_count * base_count))
        if ctx.counter is not None:
            ctx.counter.record_probes("index_probe", probes)
            ctx.counter.record("index_join", examined)
        arity = probe_batch.arity + len(indexed.access.out_map)
        return ColumnBatch.from_pairs(pairs, arity)

    def _hash_join(self, node: PEquiJoin, ctx) -> ColumnBatch:
        left = self._batch(node.left.node, ctx)
        right = self._batch(node.right.node, ctx)
        left_filter = node.left.side_filter
        right_filter = node.right.side_filter
        swap = len(left) < len(right)
        build_batch, build_positions, build_filter = (
            (left, node.left.key_positions, left_filter)
            if swap
            else (right, node.right.key_positions, right_filter)
        )
        probe_batch, probe_positions, probe_filter = (
            (right, node.right.key_positions, right_filter)
            if swap
            else (left, node.left.key_positions, left_filter)
        )
        buckets: dict[tuple, list[tuple[Row, int]]] = {}
        for row, count in build_batch.rows():
            if build_filter is not None and not build_filter(row):
                continue
            buckets.setdefault(tuple(row[position] for position in build_positions), []).append((row, count))
        residual = node.residual
        probe_is_right = probe_batch is right
        pairs = []
        for row, count in probe_batch.rows():
            if probe_filter is not None and not probe_filter(row):
                continue
            bucket = buckets.get(tuple(row[position] for position in probe_positions))
            if not bucket:
                continue
            for other_row, other_count in bucket:
                joined = (other_row + row) if (swap and probe_is_right) else (row + other_row)
                if residual is not None and not residual(joined):
                    continue
                pairs.append((joined, count * other_count))
        if ctx.counter is not None:
            ctx.counter.record("hash_join", len(pairs))
        return ColumnBatch.from_pairs(pairs, left.arity + right.arity)


_KERNELS = {
    PScan: VectorizedExecutor._k_scan,
    PLiteral: VectorizedExecutor._k_literal,
    PPipeline: VectorizedExecutor._k_pipeline,
    PIndexSelect: VectorizedExecutor._k_index_select,
    PFilter: VectorizedExecutor._k_filter,
    PProject: VectorizedExecutor._k_project,
    PMap: VectorizedExecutor._k_map,
    PDedup: VectorizedExecutor._k_dedup,
    PUnionAll: VectorizedExecutor._k_union_all,
    PMonus: VectorizedExecutor._k_monus,
    PProduct: VectorizedExecutor._k_product,
    PEquiJoin: VectorizedExecutor._k_equijoin,
}
