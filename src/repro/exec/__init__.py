"""Compiled physical plans for the refresh hot path.

The interpreted evaluator (:mod:`repro.algebra.evaluation`) re-walks the
AST, re-binds every predicate, and re-hashes join build sides on every
call, so ``refresh``/``propagate`` work scales with query complexity ×
view count × table size even when the *algorithmic* delta (Sections 4–5
of the paper) is small.  This package closes that gap — the difference
Olteanu's IVM survey calls algorithmic vs *system* delta-proportionality:

* :mod:`repro.exec.compiler` lowers a bag-algebra :class:`~repro.algebra.expr.Expr`
  once into a tree of physical operators with predicates bound, hash-join
  keys chosen, constant-equality selections turned into index lookups,
  and ``E ∸ R`` turned into per-row probes;
* :mod:`repro.exec.executor` caches compiled plans per expression and
  memoizes subexpression *results* across ``evaluate`` calls, guarded by
  per-table version stamps from :class:`~repro.storage.database.Database`;
* :mod:`repro.exec.indexes` maintains hash indexes on stored tables
  incrementally inside the storage layer's ``Bag.patch``-driven writes,
  so index-backed selections and join build sides cost
  O(|delta| + |output|) instead of O(|table|).

Two further tiers build on the compiled plans (see
:mod:`repro.exec.vectorized` and :mod:`repro.exec.pushdown`):

* ``exec_mode="vectorized"`` runs the same physical plans batch-at-a-
  time over :class:`~repro.algebra.columnar.ColumnBatch` columns with
  an integer multiplicity vector, deferring canonicalization to
  nonlinear operator boundaries;
* ``exec_mode="sqlite"`` pushes whole pushable ``Expr`` subtrees down
  into an incrementally-mirrored SQLite database as single SQL
  statements (joins and multiplicity arithmetic run in C), falling
  back to the vectorized kernels per subtree when a node is not
  pushable.

The interpreted path remains available as a correctness oracle: pass
``exec_mode="interpreted"`` to :class:`~repro.storage.database.Database`
(or set the ``REPRO_EXEC`` environment variable) to bypass compilation.
"""

from __future__ import annotations

import os

from repro.errors import ReproError

COMPILED = "compiled"
INTERPRETED = "interpreted"
VECTORIZED = "vectorized"
SQLITE = "sqlite"

_MODES = (COMPILED, INTERPRETED, VECTORIZED, SQLITE)

#: Environment variable overriding the default execution mode.
ENV_VAR = "REPRO_EXEC"

#: Spelling variants accepted by :func:`resolve_exec_mode`.
_ALIASES = {
    "interp": INTERPRETED,
    "interpret": INTERPRETED,
    "oracle": INTERPRETED,
    "vector": VECTORIZED,
    "batch": VECTORIZED,
    "columnar": VECTORIZED,
    "pushdown": SQLITE,
    "sqlite-pushdown": SQLITE,
    "sql": SQLITE,
}

__all__ = [
    "COMPILED",
    "INTERPRETED",
    "VECTORIZED",
    "SQLITE",
    "ENV_VAR",
    "default_exec_mode",
    "resolve_exec_mode",
    "Executor",
]


def default_exec_mode() -> str:
    """The process-wide default mode (``REPRO_EXEC`` or compiled)."""
    return resolve_exec_mode(os.environ.get(ENV_VAR))


def resolve_exec_mode(mode: str | None) -> str:
    """Validate ``mode``, falling back to the compiled default."""
    if mode is None or mode == "":
        return COMPILED
    normalized = mode.strip().lower()
    # Accept the obvious abbreviations so REPRO_EXEC=interp works.
    normalized = _ALIASES.get(normalized, normalized)
    if normalized not in _MODES:
        raise ReproError(f"unknown execution mode {mode!r}; pick one of {_MODES}")
    return normalized


from repro.exec.executor import Executor  # noqa: E402  (re-export)
