"""The compiled-plan executor: plan cache + version-stamped result reuse.

An :class:`Executor` belongs to one :class:`~repro.storage.database.Database`.
It keeps a single table mapping expressions (by structural equality) to
physical plan nodes, so

* the *plan* for a view's query, its differential Del/Add rewrites, or a
  policy's refresh expression is compiled exactly once and reused across
  transactions (``plan_hits`` / ``plan_misses`` on the cost counter), and
* structurally shared *subexpressions* — within one plan or across plans
  of different views — resolve to the same node object, whose memoized
  result is reused across ``evaluate`` calls as long as the version
  stamps of the tables it reads are unchanged (``memo_hits``).

The stamps come from the database's monotonic per-table version clock,
bumped on every write, which is what makes cross-call reuse safe where
the interpreted evaluator's per-call memo is not (see the warning on
:func:`repro.algebra.evaluation.evaluate`).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr
from repro.exec.compiler import Compiler, PEquiJoin, PIndexSelect, PNode

__all__ = ["ExecutionContext", "Executor"]


class ExecutionContext:
    """Per-call view of the database handed to physical operators."""

    __slots__ = ("state", "counter", "indexes", "_version_of")

    def __init__(self, state: Mapping[str, Bag], counter: CostCounter | None, indexes, version_of) -> None:
        self.state = state
        self.counter = counter
        self.indexes = indexes
        self._version_of = version_of

    def stamp_for(self, tables: tuple[str, ...]) -> tuple[int, ...]:
        """The current version stamp of a node's input tables."""
        version_of = self._version_of
        return tuple(version_of(name) for name in tables)


class Executor:
    """Compiles expressions for one database and runs the physical plans."""

    #: Cached-node ceiling; exceeding it clears the cache wholesale.  Plans
    #: are tiny, but per-transaction ``Literal`` expressions are distinct
    #: every time, so an unbounded cache would grow with workload length.
    MAX_NODES = 16384

    def __init__(self, database) -> None:
        self._database = database
        self._nodes: dict[Expr, PNode] = {}

    # -- introspection -------------------------------------------------

    @property
    def cached_plans(self) -> int:
        return len(self._nodes)

    def node_for(self, expr: Expr) -> PNode | None:
        """The cached physical node for ``expr``, if compiled (for tests)."""
        return self._nodes.get(expr)

    def footprint(self, expr: Expr) -> frozenset[str]:
        """The set of stored tables the compiled plan for ``expr`` reads.

        Every physical node carries the input tables its memo guard
        stamps, so the root node's table set *is* the plan's read
        footprint — including tables the compiler's simplifications kept
        and excluding none.  The effect analyzer
        (:mod:`repro.analysis.effects`) uses this as the inferred read
        set of maintenance operations.  Compiling is side-effect-free,
        so calling this never changes execution behavior.
        """
        node = self._nodes.get(expr)
        if node is None:
            if len(self._nodes) > self.MAX_NODES:
                self._nodes.clear()
            node = Compiler(self._nodes).compile(expr)
        return frozenset(node.tables)

    # -- execution -----------------------------------------------------

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        """Evaluate ``expr`` against the database's current state."""
        node = self._nodes.get(expr)
        if node is not None:
            if counter is not None:
                counter.plan_hits += 1
        else:
            if counter is not None:
                counter.plan_misses += 1
            if len(self._nodes) > self.MAX_NODES:
                self._nodes.clear()
            if obs.telemetry_enabled():
                with obs.span("plan_compile", tables=",".join(sorted(expr.tables()))):
                    node = Compiler(self._nodes).compile(expr)
                obs.metric_inc("plan_compiles")
            else:
                node = Compiler(self._nodes).compile(expr)
        return node.execute(self._context(counter))

    def prime(self, expr: Expr, *, counter: CostCounter | None = None) -> PNode:
        """Compile ``expr`` now and pre-build the indexes its plan can use.

        Scenarios call this at install time, while log tables are still
        empty, so the one-time ``index_build`` scans are free and all
        later maintenance flows incrementally through ``Bag.patch``
        writes — refreshes then find current indexes and pay only probes.
        """
        node = self._nodes.get(expr)
        if node is None:
            node = Compiler(self._nodes).compile(expr)
        ctx = self._context(counter)
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            stack.extend(current.children())
            if isinstance(current, PIndexSelect):
                self._build_index(ctx, current.access.table, current.key_positions)
            elif isinstance(current, PEquiJoin):
                for side in (current.left, current.right):
                    if side.indexable:
                        self._build_index(ctx, side.access.table, side.base_key_positions)
        return node

    def _build_index(self, ctx: ExecutionContext, table: str, positions: tuple[int, ...]) -> None:
        base = ctx.state.get(table)
        if base is not None:
            ctx.indexes.get(table, positions, base, counter=ctx.counter)

    def _context(self, counter: CostCounter | None) -> ExecutionContext:
        database = self._database
        return ExecutionContext(database.state, counter, database.indexes, database.version_of)
