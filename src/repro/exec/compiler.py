"""Compilation of bag-algebra expressions into physical plans.

A physical plan is a tree of :class:`PNode` operators produced once per
distinct expression and then reused across ``evaluate`` calls.  Lowering
does, at compile time, all the work the interpreted evaluator repeats on
every call:

* every predicate and map term is **bound** against its input schema
  exactly once;
* ``σ_p(E × F)`` with cross-operand equality conjuncts becomes an
  **equi-join** node with the key positions chosen and the residual
  predicate split into probe-side, build-side, and cross parts;
* a chain of ``σ``/``Π``/``map`` over a stored table becomes a fused
  :class:`SourceAccess`, which an equi-join or constant-equality
  selection can serve from a maintained **hash index** (O(|delta| +
  |output|) probes instead of O(|table|) scans);
* ``E ∸ R`` against a stored table becomes a **monus-probe** node;
* adjacent projections compose into one.

Cost accounting mirrors the interpreted evaluator's conventions: every
row an operator touches is one tuple-op, recorded under the operator's
name.  Index-backed operators charge their probes (also tallied in
:attr:`CostCounter.index_probes`) and the bucket rows they examine,
never the table rows they skip — that difference is the measured win.

Each node carries the sorted tuple of table names it reads; the executor
stamps results with the tables' current version numbers so a memoized
result is reused exactly as long as none of its inputs changed.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import _conjuncts, _equijoin_keys
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import And, Attr, Comparison, Const, Predicate
from repro.errors import ReproError, UnknownTableError

__all__ = ["Compiler", "PNode", "SourceAccess"]


# ----------------------------------------------------------------------
# Fused access paths over stored tables
# ----------------------------------------------------------------------


class SourceAccess:
    """A ``σ``/``Π``/``map`` chain over one stored table, fused.

    ``steps`` transform a base-table row into the chain's output row (or
    drop it); ``out_map`` maps each output position back to the base
    column it carries, or ``None`` for computed columns.  Join keys and
    constant-equality selections whose output positions all map to base
    columns can be served by a hash index on the base table.
    """

    __slots__ = ("table", "out_map", "steps")

    def __init__(self, table: str, out_map: tuple[int | None, ...]) -> None:
        self.table = table
        self.out_map = out_map
        self.steps: list[tuple[str, Any]] = []

    def base_positions(self, out_positions: tuple[int, ...]) -> tuple[int, ...] | None:
        """Map output positions to base columns (``None`` if any is computed)."""
        mapped = tuple(self.out_map[position] for position in out_positions)
        if any(position is None for position in mapped):
            return None
        return mapped  # type: ignore[return-value]

    def apply(self, row: Row) -> Row | None:
        """Run the fused chain on one base row (``None`` = filtered out)."""
        for kind, payload in self.steps:
            if kind == "filter":
                if not payload(row):
                    return None
            elif kind == "project":
                row = tuple(row[position] for position in payload)
            else:  # "map"
                row = tuple(function(row) for function in payload)
        return row


def source_access(expr: Expr) -> SourceAccess | None:
    """Build a :class:`SourceAccess` for ``expr`` when it is a fusable chain."""
    if isinstance(expr, TableRef):
        return SourceAccess(expr.name, tuple(range(expr.table_schema.arity)))
    if isinstance(expr, Select):
        access = source_access(expr.child)
        if access is None:
            return None
        access.steps.append(("filter", expr.predicate.bind(expr.child.schema())))
        return access
    if isinstance(expr, Project):
        access = source_access(expr.child)
        if access is None:
            return None
        positions = expr.positions()
        access.out_map = tuple(access.out_map[position] for position in positions)
        access.steps.append(("project", positions))
        return access
    if isinstance(expr, MapProject):
        access = source_access(expr.child)
        if access is None:
            return None
        child_schema = expr.child.schema()
        out_map: list[int | None] = []
        for term in expr.terms:
            if isinstance(term, Attr):
                out_map.append(access.out_map[child_schema.index_of(term.name)])
            else:
                out_map.append(None)
        access.out_map = tuple(out_map)
        access.steps.append(("map", tuple(term.bind(child_schema) for term in expr.terms)))
        return access
    return None


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------


class PNode:
    """A physical operator with a version-stamped cross-call result memo."""

    __slots__ = ("tables", "_stamp", "_value")

    #: Whether execute() may short-circuit to φ via runtime_empty().
    check_empty = True

    def __init__(self, tables: frozenset[str]) -> None:
        self.tables = tuple(sorted(tables))
        self._stamp: tuple[int, ...] | None = None
        self._value: Bag | None = None

    def children(self) -> tuple[PNode, ...]:
        return ()

    def runtime_empty(self, state: Mapping[str, Bag]) -> bool:
        """Conservatively decide emptiness from table sizes (False = unknown)."""
        return False

    def execute(self, ctx) -> Bag:
        stamp = ctx.stamp_for(self.tables)
        if stamp == self._stamp and self._value is not None:
            if ctx.counter is not None:
                ctx.counter.memo_hits += 1
            return self._value
        if self.check_empty and self.runtime_empty(ctx.state):
            result = Bag.empty()
        else:
            result = self._compute(ctx)
        # Value before stamp: a concurrent reader (the parallel group
        # scheduler's compute phase) that observes the new stamp must
        # also observe the matching value.  Worst case under the reverse
        # order is a stale stamp, which just means a redundant recompute.
        self._value = result
        self._stamp = stamp
        return result

    def _compute(self, ctx) -> Bag:
        raise NotImplementedError


class PLiteral(PNode):
    check_empty = False

    __slots__ = ("bag",)

    def __init__(self, bag: Bag) -> None:
        super().__init__(frozenset())
        self.bag = bag

    def runtime_empty(self, state) -> bool:
        return not self.bag

    def _compute(self, ctx) -> Bag:
        if ctx.counter is not None:
            ctx.counter.record("literal", len(self.bag))
        return self.bag


class PScan(PNode):
    check_empty = False

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__(frozenset({name}))
        self.name = name

    def runtime_empty(self, state) -> bool:
        value = state.get(self.name)
        return value is not None and not value

    def _compute(self, ctx) -> Bag:
        try:
            result = ctx.state[self.name]
        except KeyError:
            raise UnknownTableError(f"table {self.name!r} is not present in the database state") from None
        if ctx.counter is not None:
            ctx.counter.record("scan", len(result))
        return result


class PPipeline(PNode):
    """A fused σ/Π/map chain over a stored table, evaluated in one pass.

    Charges one ``scan`` tuple-op per base row read — intermediate
    selection/projection materializations are pipelined away.
    """

    __slots__ = ("access",)

    def __init__(self, access: SourceAccess) -> None:
        super().__init__(frozenset({access.table}))
        self.access = access

    def runtime_empty(self, state) -> bool:
        value = state.get(self.access.table)
        return value is not None and not value

    def _compute(self, ctx) -> Bag:
        try:
            base = ctx.state[self.access.table]
        except KeyError:
            raise UnknownTableError(
                f"table {self.access.table!r} is not present in the database state"
            ) from None
        counts: dict[Row, int] = {}
        read = 0
        apply = self.access.apply
        for row, count in base.items():
            read += 1
            image = apply(row)
            if image is None:
                continue
            counts[image] = counts.get(image, 0) + count
        if ctx.counter is not None:
            ctx.counter.record("scan", read)
        return Bag(counts=counts)


class PIndexSelect(PNode):
    """``σ_{attr=const ∧ …}`` over a fused source, via one index probe."""

    __slots__ = ("access", "key_positions", "key_values", "residual")

    def __init__(
        self,
        access: SourceAccess,
        key_positions: tuple[int, ...],
        key_values: tuple,
        residual: Callable[[Row], bool] | None,
    ) -> None:
        super().__init__(frozenset({access.table}))
        self.access = access
        self.key_positions = key_positions
        self.key_values = key_values
        self.residual = residual

    def runtime_empty(self, state) -> bool:
        value = state.get(self.access.table)
        return value is not None and not value

    def _compute(self, ctx) -> Bag:
        try:
            base = ctx.state[self.access.table]
        except KeyError:
            raise UnknownTableError(
                f"table {self.access.table!r} is not present in the database state"
            ) from None
        index = ctx.indexes.get(self.access.table, self.key_positions, base, counter=ctx.counter)
        bucket = index.lookup(self.key_values)
        counts: dict[Row, int] = {}
        examined = 0
        apply = self.access.apply
        residual = self.residual
        for row, count in bucket.items():
            examined += 1
            image = apply(row)
            if image is None:
                continue
            if residual is not None and not residual(image):
                continue
            counts[image] = counts.get(image, 0) + count
        if ctx.counter is not None:
            ctx.counter.record_probes("index_probe", 1)
            ctx.counter.record("index_select", examined)
        return Bag(counts=counts)


class PFilter(PNode):
    __slots__ = ("child", "predicate")

    def __init__(self, child: PNode, predicate: Callable[[Row], bool]) -> None:
        super().__init__(frozenset(child.tables))
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def runtime_empty(self, state) -> bool:
        return self.child.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        result = self.child.execute(ctx).select(self.predicate)
        if ctx.counter is not None:
            ctx.counter.record("select", len(result))
        return result


class PProject(PNode):
    __slots__ = ("child", "positions")

    def __init__(self, child: PNode, positions: tuple[int, ...]) -> None:
        super().__init__(frozenset(child.tables))
        self.child = child
        self.positions = positions

    def children(self):
        return (self.child,)

    def runtime_empty(self, state) -> bool:
        return self.child.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        result = self.child.execute(ctx).project(self.positions)
        if ctx.counter is not None:
            ctx.counter.record("project", len(result))
        return result


class PMap(PNode):
    __slots__ = ("child", "functions")

    def __init__(self, child: PNode, functions: tuple[Callable[[Row], Any], ...]) -> None:
        super().__init__(frozenset(child.tables))
        self.child = child
        self.functions = functions

    def children(self):
        return (self.child,)

    def runtime_empty(self, state) -> bool:
        return self.child.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        counts: dict[Row, int] = {}
        for row, count in self.child.execute(ctx).items():
            image = tuple(function(row) for function in self.functions)
            counts[image] = counts.get(image, 0) + count
        result = Bag(counts=counts)
        if ctx.counter is not None:
            ctx.counter.record("map", len(result))
        return result


class PDedup(PNode):
    __slots__ = ("child",)

    def __init__(self, child: PNode) -> None:
        super().__init__(frozenset(child.tables))
        self.child = child

    def children(self):
        return (self.child,)

    def runtime_empty(self, state) -> bool:
        return self.child.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        result = self.child.execute(ctx).dedup()
        if ctx.counter is not None:
            ctx.counter.record("dedup", len(result))
        return result


class PUnionAll(PNode):
    __slots__ = ("left", "right")

    def __init__(self, left: PNode, right: PNode) -> None:
        super().__init__(frozenset(left.tables) | frozenset(right.tables))
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def runtime_empty(self, state) -> bool:
        return self.left.runtime_empty(state) and self.right.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        result = self.left.execute(ctx).union_all(self.right.execute(ctx))
        if ctx.counter is not None:
            ctx.counter.record("union_all", len(result))
        return result


class PMonus(PNode):
    """``E ∸ F``, probing the stored table's hash map when ``F`` is one."""

    __slots__ = ("left", "right", "probe_table")

    def __init__(self, left: PNode, right: PNode, probe_table: str | None) -> None:
        super().__init__(frozenset(left.tables) | frozenset(right.tables))
        self.left = left
        self.right = right
        self.probe_table = probe_table

    def children(self):
        return (self.left, self.right)

    def runtime_empty(self, state) -> bool:
        return self.left.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        if self.right.runtime_empty(ctx.state):
            # ``E ∸ φ`` is ``E``: skip the anti-join entirely.
            return self.left.execute(ctx)
        left = self.left.execute(ctx)
        if self.probe_table is not None:
            try:
                right = ctx.state[self.probe_table]
            except KeyError:
                raise UnknownTableError(
                    f"table {self.probe_table!r} is not present in the database state"
                ) from None
            if ctx.counter is not None:
                ctx.counter.record_probes("probe", left.distinct_count())
        else:
            right = self.right.execute(ctx)
        result = left.monus(right)
        if ctx.counter is not None:
            ctx.counter.record("monus", len(result))
        return result


class PProduct(PNode):
    __slots__ = ("left", "right")

    def __init__(self, left: PNode, right: PNode) -> None:
        super().__init__(frozenset(left.tables) | frozenset(right.tables))
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def runtime_empty(self, state) -> bool:
        return self.left.runtime_empty(state) or self.right.runtime_empty(state)

    def _compute(self, ctx) -> Bag:
        result = self.left.execute(ctx).product(self.right.execute(ctx))
        if ctx.counter is not None:
            ctx.counter.record("product", len(result))
        return result


class _JoinSide:
    """Compile-time description of one equi-join operand."""

    __slots__ = ("node", "key_positions", "access", "base_key_positions", "side_filter")

    def __init__(
        self,
        node: PNode,
        key_positions: tuple[int, ...],
        access: SourceAccess | None,
        side_filter: Callable[[Row], bool] | None,
    ) -> None:
        self.node = node
        self.key_positions = key_positions
        self.access = access
        # Base columns behind the join keys; None = not index-servable.
        self.base_key_positions = access.base_positions(key_positions) if access is not None else None
        self.side_filter = side_filter

    @property
    def indexable(self) -> bool:
        return self.base_key_positions is not None


class PEquiJoin(PNode):
    """``σ_p(E × F)`` with equality keys: hash join or index-probe join.

    At execute time the join picks the cheapest strategy available: if
    one operand is a fused chain over a stored table whose join keys map
    to base columns, that side is served from a maintained hash index
    (its scan is skipped entirely) and the other side drives the probes.
    Otherwise both operands are evaluated and hashed classically.
    """

    __slots__ = ("left", "right", "residual")

    def __init__(self, left: _JoinSide, right: _JoinSide, residual: Callable[[Row], bool] | None) -> None:
        super().__init__(frozenset(left.node.tables) | frozenset(right.node.tables))
        self.left = left
        self.right = right
        self.residual = residual

    def children(self):
        return (self.left.node, self.right.node)

    def runtime_empty(self, state) -> bool:
        return self.left.node.runtime_empty(state) or self.right.node.runtime_empty(state)

    def _index_side(self, ctx) -> _JoinSide | None:
        """The side to serve from an index (the larger stored table wins)."""
        candidates = [side for side in (self.left, self.right) if side.indexable]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        sizes = [len(ctx.state.get(side.access.table, ())) for side in candidates]
        return candidates[0] if sizes[0] >= sizes[1] else candidates[1]

    def _compute(self, ctx) -> Bag:
        indexed = self._index_side(ctx)
        if indexed is not None:
            return self._probe_join(ctx, indexed)
        return self._hash_join(ctx)

    def _probe_join(self, ctx, indexed: _JoinSide) -> Bag:
        probe = self.right if indexed is self.left else self.left
        probe_bag = probe.node.execute(ctx)
        try:
            base = ctx.state[indexed.access.table]
        except KeyError:
            raise UnknownTableError(
                f"table {indexed.access.table!r} is not present in the database state"
            ) from None
        index = ctx.indexes.get(
            indexed.access.table, indexed.base_key_positions, base, counter=ctx.counter
        )
        probe_positions = probe.key_positions
        probe_filter = probe.side_filter
        indexed_filter = indexed.side_filter
        apply = indexed.access.apply
        residual = self.residual
        left_is_probe = probe is self.left
        counts: dict[Row, int] = {}
        probes = 0
        examined = 0
        for probe_row, probe_count in probe_bag.items():
            if probe_filter is not None and not probe_filter(probe_row):
                continue
            probes += 1
            bucket = index.lookup(tuple(probe_row[position] for position in probe_positions))
            if not bucket:
                continue
            for base_row, base_count in bucket.items():
                examined += 1
                image = apply(base_row)
                if image is None:
                    continue
                if indexed_filter is not None and not indexed_filter(image):
                    continue
                joined = probe_row + image if left_is_probe else image + probe_row
                if residual is not None and not residual(joined):
                    continue
                counts[joined] = counts.get(joined, 0) + probe_count * base_count
        if ctx.counter is not None:
            ctx.counter.record_probes("index_probe", probes)
            ctx.counter.record("index_join", examined)
        return Bag(counts=counts)

    def _hash_join(self, ctx) -> Bag:
        left = self.left.node.execute(ctx)
        right = self.right.node.execute(ctx)
        left_filter = self.left.side_filter
        right_filter = self.right.side_filter
        # Build on the smaller operand for wall-clock; cost charges are
        # symmetric (inputs are charged at the child nodes, the join
        # charges its output — same convention as the interpreted path).
        swap = len(left) < len(right)
        build_bag, build_positions, build_filter = (
            (left, self.left.key_positions, left_filter)
            if swap
            else (right, self.right.key_positions, right_filter)
        )
        probe_bag, probe_positions, probe_filter = (
            (right, self.right.key_positions, right_filter)
            if swap
            else (left, self.left.key_positions, left_filter)
        )
        buckets: dict[tuple, list[tuple[Row, int]]] = {}
        for row, count in build_bag.items():
            if build_filter is not None and not build_filter(row):
                continue
            buckets.setdefault(tuple(row[position] for position in build_positions), []).append((row, count))
        residual = self.residual
        counts: dict[Row, int] = {}
        for row, count in probe_bag.items():
            if probe_filter is not None and not probe_filter(row):
                continue
            bucket = buckets.get(tuple(row[position] for position in probe_positions))
            if not bucket:
                continue
            for other_row, other_count in bucket:
                if swap:
                    joined = other_row + row if probe_bag is right else row + other_row
                else:
                    joined = row + other_row
                if residual is not None and not residual(joined):
                    continue
                counts[joined] = counts.get(joined, 0) + count * other_count
        result = Bag(counts=counts)
        if ctx.counter is not None:
            ctx.counter.record("hash_join", len(result))
        return result


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


def _pad_row(arity: int):
    pad = (None,) * arity
    return pad


class Compiler:
    """Lowers expressions to physical plans, sharing nodes structurally.

    The node table is shared with the owning executor, so structurally
    equal subexpressions — within one plan or across plans for different
    views — compile to the *same* node object and therefore share one
    version-stamped result memo.
    """

    def __init__(self, nodes: dict[Expr, PNode]) -> None:
        self._nodes = nodes

    def compile(self, expr: Expr) -> PNode:
        node = self._nodes.get(expr)
        if node is None:
            node = self._build(expr)
            self._nodes[expr] = node
        return node

    def _build(self, expr: Expr) -> PNode:
        pruned = self._prune(expr)
        if pruned is not None:
            return pruned
        if isinstance(expr, TableRef):
            return PScan(expr.name)
        if isinstance(expr, Literal):
            return PLiteral(expr.bag)
        if isinstance(expr, Select):
            return self._build_select(expr)
        if isinstance(expr, Project):
            return self._build_project(expr)
        if isinstance(expr, MapProject):
            access = source_access(expr)
            if access is not None:
                return PPipeline(access)
            child_schema = expr.child.schema()
            functions = tuple(term.bind(child_schema) for term in expr.terms)
            return PMap(self.compile(expr.child), functions)
        if isinstance(expr, DupElim):
            return PDedup(self.compile(expr.child))
        if isinstance(expr, UnionAll):
            return PUnionAll(self.compile(expr.left), self.compile(expr.right))
        if isinstance(expr, Monus):
            probe_table = expr.right.name if isinstance(expr.right, TableRef) else None
            return PMonus(self.compile(expr.left), self.compile(expr.right), probe_table)
        if isinstance(expr, Product):
            return PProduct(self.compile(expr.left), self.compile(expr.right))
        raise ReproError(f"unknown expression node: {type(expr).__name__}")

    def _prune(self, expr: Expr) -> PNode | None:
        """Statically-derived plan simplifications.

        Uses the conservative property engine
        (:mod:`repro.analysis.properties`): expressions provably empty
        in every state compile to a literal; ∸/⊎ drop provably-empty
        operands; a ``min`` guard the classifier proves redundant
        (:math:`X \\min Y` with :math:`X \\subseteq Y`) collapses to its
        left operand.  The physical plan is memoized under the
        *original* expression, so plan-cache keys are unchanged.
        """
        from repro.analysis.properties import always_empty, redundant_min_guard

        if not isinstance(expr, Literal) and always_empty(expr):
            return PLiteral(Bag.empty())
        if isinstance(expr, (UnionAll, Monus)):
            collapsed = redundant_min_guard(expr)
            if collapsed is not None:
                return self.compile(collapsed)
            if always_empty(expr.right):
                return self.compile(expr.left)
            if isinstance(expr, UnionAll) and always_empty(expr.left):
                return self.compile(expr.right)
        return None

    # -- selections ----------------------------------------------------

    def _build_select(self, expr: Select) -> PNode:
        if isinstance(expr.child, Product):
            join = self._build_equijoin(expr, expr.child)
            if join is not None:
                return join
        index_select = self._build_index_select(expr)
        if index_select is not None:
            return index_select
        access = source_access(expr)
        if access is not None:
            return PPipeline(access)
        predicate = expr.predicate.bind(expr.child.schema())
        return PFilter(self.compile(expr.child), predicate)

    def _build_index_select(self, expr: Select) -> PNode | None:
        """``σ_{attr=const ∧ rest}(chain over R)`` as an index lookup."""
        access = source_access(expr.child)
        if access is None:
            return None
        child_schema = expr.child.schema()
        key_out_positions: list[int] = []
        key_values: list = []
        residual: list[Predicate] = []
        for conjunct in _conjuncts(expr.predicate):
            if isinstance(conjunct, Comparison) and conjunct.op == "=":
                attr_side = const_side = None
                if isinstance(conjunct.left, Attr) and isinstance(conjunct.right, Const):
                    attr_side, const_side = conjunct.left, conjunct.right
                elif isinstance(conjunct.right, Attr) and isinstance(conjunct.left, Const):
                    attr_side, const_side = conjunct.right, conjunct.left
                if attr_side is not None and const_side is not None and const_side.value is not None:
                    key_out_positions.append(child_schema.index_of(attr_side.name))
                    key_values.append(const_side.value)
                    continue
            residual.append(conjunct)
        if not key_out_positions:
            return None
        base_positions = access.base_positions(tuple(key_out_positions))
        if base_positions is None:
            return None
        residual_check = None
        if residual:
            predicate = residual[0]
            for extra in residual[1:]:
                predicate = And(predicate, extra)
            residual_check = predicate.bind(child_schema)
        return PIndexSelect(access, base_positions, tuple(key_values), residual_check)

    # -- equi-joins ----------------------------------------------------

    def _build_equijoin(self, expr: Select, product: Product) -> PNode | None:
        schema = product.schema()
        left_arity = product.left.schema().arity
        keys, residual = _equijoin_keys(expr.predicate, schema, left_arity)
        if not keys:
            return None
        left_only: list[Predicate] = []
        right_only: list[Predicate] = []
        cross: list[Predicate] = []
        for conjunct in residual:
            positions = [schema.index_of(name) for name in conjunct.attributes()]
            if positions and all(position < left_arity for position in positions):
                left_only.append(conjunct)
            elif positions and all(position >= left_arity for position in positions):
                right_only.append(conjunct)
            else:
                cross.append(conjunct)

        def bind_all(conjuncts: list[Predicate]) -> Callable[[Row], bool] | None:
            if not conjuncts:
                return None
            predicate = conjuncts[0]
            for extra in conjuncts[1:]:
                predicate = And(predicate, extra)
            return predicate.bind(schema)

        left_filter = bind_all(left_only)
        right_joint = bind_all(right_only)
        right_filter = None
        if right_joint is not None:
            pad = _pad_row(left_arity)
            right_filter = lambda row, _fn=right_joint, _pad=pad: _fn(_pad + row)  # noqa: E731
        cross_check = bind_all(cross)

        left_side = _JoinSide(
            self.compile(product.left),
            tuple(position for position, __ in keys),
            source_access(product.left),
            left_filter,
        )
        right_side = _JoinSide(
            self.compile(product.right),
            tuple(position for __, position in keys),
            source_access(product.right),
            right_filter,
        )
        return PEquiJoin(left_side, right_side, cross_check)

    # -- projections ---------------------------------------------------

    def _build_project(self, expr: Project) -> PNode:
        access = source_access(expr)
        if access is not None:
            return PPipeline(access)
        # Compose adjacent projections: Π_A(Π_B(E)) = Π_{B∘A}(E).
        positions = expr.positions()
        child: Expr = expr.child
        while isinstance(child, Project):
            inner = child.positions()
            positions = tuple(inner[position] for position in positions)
            child = child.child
        return PProject(self.compile(child), positions)
