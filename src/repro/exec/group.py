"""Group refresh: cross-view delta sharing and a parallel scheduler.

Section 7 of the paper asks how refresh work can be made independent of
the number of installed views.  The shared sequenced log
(:mod:`repro.extensions.sharedlog`) answers the *transaction* half; this
module answers the *refresh* half for a whole group of views brought up
to date in one epoch:

* **Epoch-scoped delta cache** (:class:`EpochDeltaCache`).  During one
  ``refresh_group`` epoch, evaluated view deltas are keyed by
  (canonical subplan fingerprint, log-cursor range, base-table version
  stamps, log-content digests).  Views sharing the same joins and
  selections over the same log slice compute each ``(Del, Add)`` pair
  once; every further view is a ``delta_cache_hits`` counter bump and a
  delta-proportional patch.

* **Dependency-aware scheduler** (:class:`GroupScheduler`).  Views are
  batched so that no view's inputs are written by another view in the
  same batch (per their declared read/write sets — the same resources
  the :class:`~repro.storage.locks.LockLedger` serializes).  Within a
  batch the cache-leader deltas may be evaluated concurrently on a
  thread pool (evaluation is read-only against immutable bags); patch
  application always runs sequentially in registration order, so the
  result state is bag-equal to refreshing every view one at a time —
  sequential execution remains the deterministic oracle, and parallelism
  only changes wall-clock time, never results.

Fingerprints are computed over the canonical JSON serialization of an
expression (:mod:`repro.algebra.serialize`) with per-view table names
(logs, MV) rewritten to group-canonical placeholders, so two views that
differ only in their private auxiliary-table names fingerprint equal.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import obs
from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Expr
from repro.algebra.serialize import expr_to_dict
from repro.robustness.faults import fault_point

__all__ = [
    "bag_digest",
    "subplan_fingerprint",
    "view_fingerprints",
    "evaluate_delta_pair",
    "partition_resource",
    "split_hot_partitions",
    "EpochDeltaCache",
    "GroupTask",
    "GroupScheduler",
]

#: Serialized node kinds that carry no operator structure of their own.
_LEAF_KINDS = frozenset({"table", "literal"})


def bag_digest(bag: Bag) -> str:
    """A content digest of a bag — equal bags digest equal.

    Used to key the delta cache by *log content*: two per-view logs with
    different table names but identical recorded changes (the common
    case when structurally identical views refresh together) share one
    delta evaluation.
    """
    hasher = hashlib.sha256()
    for row, count in sorted(bag.items(), key=lambda item: repr(item[0])):
        hasher.update(repr((row, count)).encode())
    return hasher.hexdigest()[:16]


def _canonicalize(node: object, rename: Mapping[str, str] | None) -> object:
    """Rewrite table names in a serialized expression tree."""
    if isinstance(node, dict):
        out = {key: _canonicalize(value, rename) for key, value in node.items()}
        if rename and out.get("kind") == "table" and out.get("name") in rename:
            out["name"] = rename[out["name"]]
        return out
    if isinstance(node, list):
        return [_canonicalize(item, rename) for item in node]
    return node


def _digest(payload: object) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()[:16]


def subplan_fingerprint(expr: Expr, rename: Mapping[str, str] | None = None) -> str:
    """A structural fingerprint of ``expr``; equal plans fingerprint equal.

    ``rename`` maps concrete (per-view) table names to canonical
    placeholders, so views differing only in their private log/MV table
    names produce the same fingerprint.
    """
    return _digest(_canonicalize(expr_to_dict(expr), rename))


def view_fingerprints(expr: Expr, rename: Mapping[str, str] | None = None) -> frozenset[str]:
    """Fingerprints of the root and every operator subtree of ``expr``.

    Two views "overlap" when these sets intersect — they share at least
    one join/selection subplan (or the whole query), which is exactly
    when a group refresh could serve one view's delta work to the other.
    Trivial one-operator wrappers (e.g. the identity projection the SQL
    front-end places over every table reference) are excluded: sharing a
    bare table scan is not sharing a subplan.
    """
    root = _canonicalize(expr_to_dict(expr), rename)
    found: set[str] = {_digest(root)}

    def is_operator(node: object) -> bool:
        return isinstance(node, dict) and bool(node.get("kind")) and node["kind"] not in _LEAF_KINDS

    def has_operator_child(node: dict) -> bool:
        for value in node.values():
            if is_operator(value):
                return True
            if isinstance(value, list) and any(is_operator(item) for item in value):
                return True
        return False

    def walk(node: object) -> None:
        if isinstance(node, dict):
            if is_operator(node) and has_operator_child(node):
                found.add(_digest(node))
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(root)
    return frozenset(found)


def evaluate_delta_pair(db, delete_expr: Expr, insert_expr: Expr, counter: CostCounter | None = None) -> tuple[Bag, Bag]:
    """Evaluate a view's ``(delete, insert)`` delta pair, sharing subresults.

    In interpreted mode the two expressions share one memo dict — the
    same sharing a single refresh plan gets when it evaluates all
    right-hand sides simultaneously.  In compiled mode the executor's
    cross-call result memo (version-stamp guarded) provides the sharing.
    """
    from repro.exec import INTERPRETED

    if db.exec_mode == INTERPRETED:
        memo: dict[Expr, Bag] = {}
        state = db.state
        return (
            evaluate(delete_expr, state, counter=counter, memo=memo),
            evaluate(insert_expr, state, counter=counter, memo=memo),
        )
    return (
        db.evaluate(delete_expr, counter=counter),
        db.evaluate(insert_expr, counter=counter),
    )


class EpochDeltaCache:
    """Evaluated ``(delete, insert)`` view-delta pairs for one refresh epoch.

    Keys are built by the scenarios from (subplan fingerprint, cursor
    range, version stamps, log digests) — they encode *all* inputs of the
    delta evaluation, so an entry can never be served stale.  A lookup
    that finds an entry another view computed counts one
    ``delta_cache_hits``.
    """

    def __init__(self, counter: CostCounter | None = None) -> None:
        self.counter = counter
        self._entries: dict[object, tuple[Bag, Bag]] = {}

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, key: object, deltas: tuple[Bag, Bag]) -> None:
        # The install seam: a crash here loses only a *cache entry* —
        # followers recompute their deltas, never read a torn pair.
        fault_point("crash-mid-delta-cache")
        self._entries[key] = deltas

    def hit(self, key: object) -> tuple[Bag, Bag]:
        """A shared lookup — counts toward ``delta_cache_hits``."""
        deltas = self._entries[key]
        if self.counter is not None:
            self.counter.delta_cache_hits += 1
        obs.metric_inc("delta_cache_hits_total")
        return deltas


@dataclass
class GroupTask:
    """One view's refresh, split into a shareable compute and an apply.

    ``key`` is evaluated lazily (at batch start, after any conflicting
    earlier batch has applied) and returns either a delta-cache key or
    ``None`` for an uncacheable task.  ``compute`` evaluates the view's
    ``(delete, insert)`` delta bags reading the current state only;
    ``apply`` installs them (and any per-view bookkeeping) under the
    view's lock.  ``reads``/``writes`` drive conflict batching;
    ``prime`` (optional) pre-compiles plans so parallel computes never
    race the compiler.
    """

    name: str
    order: int
    key: Callable[[], object | None]
    compute: Callable[[CostCounter | None], tuple[Bag, Bag]]
    apply: Callable[[tuple[Bag, Bag]], None]
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    prime: Callable[[], None] | None = None
    #: Independently inferred footprint (compiled delta plans + apply-plan
    #: structure), consumed by the concurrency analyzer's RVM604 check of
    #: declared vs. inferred sets.  ``None`` = no inference available.
    inferred_reads: frozenset[str] | None = None
    inferred_writes: frozenset[str] | None = None


def partition_resource(table: str, pid: object) -> str:
    """A partition-granular resource name for conflict batching.

    ``table#p<pid>`` conflicts with the same partition and with the
    whole-table resource ``table``, but not with the table's *other*
    partitions — which is what lets independent partitions of one view
    refresh in the same batch.
    """
    return f"{table}#p{pid}"


def _resource_base(resource: str) -> str:
    return resource.split("#p", 1)[0]


def _overlaps(a: frozenset[str], b: frozenset[str]) -> bool:
    """Resource-set overlap under the partition-granularity hierarchy."""
    if a & b:
        return True
    for resource in a:
        base = _resource_base(resource)
        if base != resource and base in b:
            return True
    for resource in b:
        base = _resource_base(resource)
        if base != resource and base in a:
            return True
    return False


def _conflicts(a: GroupTask, b: GroupTask) -> bool:
    return _overlaps(a.writes, b.writes | b.reads) or _overlaps(b.writes, a.reads)


def split_hot_partitions(
    by_partition: Mapping[object, Sequence], hot_threshold: int
) -> list[tuple[str, tuple]]:
    """Skew-aware chunking of per-partition affected keys.

    Each partition becomes one chunk ``("p<pid>", keys)``; a *hot*
    partition holding more than ``hot_threshold`` keys is sub-split into
    near-equal chunks ``("p<pid>.<i>", keys)`` so one skewed key range
    cannot serialize an epoch behind a single oversized task.  Chunk
    labels and key order are deterministic.
    """
    if hot_threshold < 1:
        raise ValueError(f"hot_threshold must be >= 1, got {hot_threshold}")
    chunks: list[tuple[str, tuple]] = []
    for pid in sorted(by_partition, key=repr):
        keys = tuple(by_partition[pid])
        if not keys:
            continue
        if len(keys) <= hot_threshold:
            chunks.append((f"p{pid}", keys))
            continue
        pieces = -(-len(keys) // hot_threshold)
        size = -(-len(keys) // pieces)
        obs.metric_inc("hot_partition_splits")
        for index in range(pieces):
            piece = keys[index * size : (index + 1) * size]
            if piece:
                chunks.append((f"p{pid}.{index}", piece))
    return chunks


class GroupScheduler:
    """Runs a group of refresh tasks: batch, compute leaders, apply in order."""

    def __init__(
        self,
        *,
        counter: CostCounter | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.counter = counter
        self.parallel = parallel
        self.max_workers = max_workers

    # -- batching ------------------------------------------------------

    def batches(self, tasks: Sequence[GroupTask]) -> list[list[GroupTask]]:
        """Greedy conflict-free batching that preserves registration order.

        Each task lands one batch after the last earlier task it
        conflicts with, so dependent refreshes stay ordered while
        independent ones (the normal case — views write disjoint MV and
        auxiliary tables) share a single batch.
        """
        batches: list[list[GroupTask]] = []
        for task in sorted(tasks, key=lambda t: t.order):
            slot = 0
            for index, batch in enumerate(batches):
                if any(_conflicts(task, other) for other in batch):
                    slot = index + 1
            while len(batches) <= slot:
                batches.append([])
            batches[slot].append(task)
        return batches

    # -- execution -----------------------------------------------------

    def run(self, tasks: Sequence[GroupTask], cache: EpochDeltaCache) -> None:
        for index, batch in enumerate(self.batches(tasks)):
            with obs.span("batch", index=index, tasks=len(batch), counter=self.counter):
                self._run_batch(batch, cache)

    def _run_batch(self, batch: list[GroupTask], cache: EpochDeltaCache) -> None:
        # Keys are computed now — earlier batches have fully applied, so
        # every input a key digests is at its final pre-batch value.
        keys = {task.name: task.key() for task in batch}
        leaders: list[GroupTask] = []
        claimed: set[object] = set()
        for task in batch:
            key = keys[task.name]
            if key is None or (key not in cache and key not in claimed):
                leaders.append(task)
                if key is not None:
                    claimed.add(key)

        results: dict[str, tuple[Bag, Bag]] = {}
        if self.parallel and len(leaders) > 1:
            # Compile once, sequentially, so pool workers only *execute*.
            for task in leaders:
                if task.prime is not None:
                    task.prime()
            counters = [CostCounter() for _ in leaders]
            workers = self.max_workers or min(len(leaders), max(2, (os.cpu_count() or 4) - 1))
            # Thread-local span stacks don't cross into pool workers:
            # hand each worker the batch span as an explicit parent.
            batch_span = obs.current().tracer.active()

            def traced_compute(task: GroupTask, counter: CostCounter) -> tuple[Bag, Bag]:
                with obs.span(
                    "delta_compute", view=task.name, parent=batch_span, counter=counter
                ):
                    return task.compute(counter)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(traced_compute, task, counter)
                    for task, counter in zip(leaders, counters)
                ]
                for task, future in zip(leaders, futures):
                    results[task.name] = future.result()
            if self.counter is not None:
                for counter in counters:
                    self.counter.absorb(counter)
        else:
            for task in leaders:
                with obs.span("delta_compute", view=task.name, counter=self.counter):
                    results[task.name] = task.compute(self.counter)

        for task in leaders:
            key = keys[task.name]
            if key is not None:
                cache.store(key, results[task.name])

        # Applies are strictly sequential in registration order — this is
        # what makes the scheduler's output bag-equal to the sequential
        # oracle regardless of how the compute phase was parallelized.
        for task in batch:
            if task.name in results:
                deltas = results[task.name]
            else:
                deltas = cache.hit(keys[task.name])
            task.apply(deltas)
