"""Incrementally-maintained hash indexes on stored tables.

A :class:`HashIndex` maps a key — the values of a fixed tuple of column
positions — to the bucket of table rows having that key, each with its
multiplicity.  Indexes are built lazily the first time an executor wants
one (a single O(|table|) pass, charged as ``index_build``), and from
then on are maintained *incrementally* by the storage layer: every
``Bag.patch``-driven write forwards its ``(delete, insert)`` delta here,
so keeping an index current costs O(|delta|), never O(|table|).

This is what turns :math:`\\sigma_{attr=const}(R)`, equi-join build
sides, and :math:`E \\dot{-} R` probes from O(|R|) scans into
O(|delta| + |output|) lookups — the *system* half of the paper's
delta-proportionality argument.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter

__all__ = ["HashIndex", "IndexManager"]

_EMPTY_BUCKET: dict[Row, int] = {}


class HashIndex:
    """A hash index over one table keyed by a tuple of column positions."""

    __slots__ = ("positions", "_buckets")

    def __init__(self, positions: tuple[int, ...]) -> None:
        self.positions = positions
        self._buckets: dict[tuple, dict[Row, int]] = {}

    @classmethod
    def build(cls, positions: tuple[int, ...], bag: Bag) -> HashIndex:
        """One full pass over ``bag`` — the only non-incremental step."""
        index = cls(positions)
        for row, count in bag.items():
            index._insert(row, count)
        return index

    def key_of(self, row: Row) -> tuple:
        return tuple(row[position] for position in self.positions)

    def _insert(self, row: Row, count: int) -> None:
        bucket = self._buckets.setdefault(self.key_of(row), {})
        bucket[row] = bucket.get(row, 0) + count

    def _delete(self, row: Row, count: int) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        remaining = bucket.get(row, 0) - count
        if remaining > 0:
            bucket[row] = remaining
        else:
            # Mirrors Bag.patch exactly: deletes floor at zero copies.
            bucket.pop(row, None)
            if not bucket:
                del self._buckets[key]

    def apply_delta(self, delete: Bag, insert: Bag) -> None:
        """Maintain the index through ``(R ∸ delete) ⊎ insert`` in O(|delta|)."""
        for row, count in delete.items():
            self._delete(row, count)
        for row, count in insert.items():
            self._insert(row, count)

    def lookup(self, key: tuple) -> Mapping[Row, int]:
        """The bucket for ``key`` — rows with their multiplicities."""
        return self._buckets.get(key, _EMPTY_BUCKET)

    def bucket_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        """Total copies indexed (should equal ``len(table)``)."""
        return sum(count for bucket in self._buckets.values() for count in bucket.values())


class IndexManager:
    """All hash indexes of one database, maintained through its writes."""

    def __init__(self) -> None:
        self._by_table: dict[str, dict[tuple[int, ...], HashIndex]] = {}

    def get(
        self,
        table: str,
        positions: tuple[int, ...],
        bag: Bag,
        *,
        counter: CostCounter | None = None,
    ) -> HashIndex:
        """The index on ``table`` keyed by ``positions``, built on demand.

        The one-time build scan is charged as ``index_build`` so cost
        comparisons against the interpreted path stay honest.
        """
        indexes = self._by_table.setdefault(table, {})
        index = indexes.get(positions)
        if index is None:
            index = HashIndex.build(positions, bag)
            indexes[positions] = index
            if counter is not None:
                counter.record("index_build", len(bag))
        return index

    def indexes_on(self, table: str) -> tuple[HashIndex, ...]:
        return tuple(self._by_table.get(table, {}).values())

    def on_patch(
        self,
        table: str,
        delete: Bag,
        insert: Bag,
        *,
        counter: CostCounter | None = None,
    ) -> None:
        """Forward a patch-driven write to every index on ``table``."""
        indexes = self._by_table.get(table)
        if not indexes:
            return
        delta = len(delete) + len(insert)
        for index in indexes.values():
            index.apply_delta(delete, insert)
            if counter is not None and delta:
                counter.record("index_maint", delta)

    def on_replace(
        self,
        table: str,
        new_value: Bag | None = None,
        *,
        counter: CostCounter | None = None,
    ) -> None:
        """A wholesale assignment rebuilds the table's indexes in place.

        Rebuilding (rather than dropping) matters for log tables, which
        are cleared by assignment on every refresh: the rebuild from the
        now-empty bag is free, and the index stays alive to absorb the
        next round of patch-driven log appends incrementally.
        """
        indexes = self._by_table.get(table)
        if not indexes:
            return
        if new_value is None:
            self._by_table.pop(table, None)
            return
        for positions in list(indexes):
            indexes[positions] = HashIndex.build(positions, new_value)
            if counter is not None and new_value:
                counter.record("index_build", len(new_value))

    def drop(self, table: str) -> None:
        self._by_table.pop(table, None)
