"""Incrementally-maintained hash indexes on stored tables.

A :class:`HashIndex` maps a key — the values of a fixed tuple of column
positions — to the bucket of table rows having that key, each with its
multiplicity.  Indexes are built lazily the first time an executor wants
one (a single O(|table|) pass, charged as ``index_build``), and from
then on are maintained *incrementally* by the storage layer: every
``Bag.patch``-driven write forwards its ``(delete, insert)`` delta here,
so keeping an index current costs O(|delta|), never O(|table|).

This is what turns :math:`\\sigma_{attr=const}(R)`, equi-join build
sides, and :math:`E \\dot{-} R` probes from O(|R|) scans into
O(|delta| + |output|) lookups — the *system* half of the paper's
delta-proportionality argument.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter

__all__ = ["HashIndex", "IndexManager"]

_EMPTY_BUCKET: dict[Row, int] = {}


class HashIndex:
    """A hash index over one table keyed by a tuple of column positions."""

    __slots__ = ("positions", "_buckets")

    def __init__(self, positions: tuple[int, ...]) -> None:
        self.positions = positions
        self._buckets: dict[tuple, dict[Row, int]] = {}

    @classmethod
    def build(cls, positions: tuple[int, ...], bag: Bag) -> HashIndex:
        """One full pass over ``bag`` — the only non-incremental step."""
        index = cls(positions)
        for row, count in bag.items():
            index._insert(row, count)
        return index

    def key_of(self, row: Row) -> tuple:
        return tuple(row[position] for position in self.positions)

    def _insert(self, row: Row, count: int) -> None:
        bucket = self._buckets.setdefault(self.key_of(row), {})
        bucket[row] = bucket.get(row, 0) + count

    def _delete(self, row: Row, count: int) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        remaining = bucket.get(row, 0) - count
        if remaining > 0:
            bucket[row] = remaining
        else:
            # Mirrors Bag.patch exactly: deletes floor at zero copies.
            bucket.pop(row, None)
            if not bucket:
                del self._buckets[key]

    def apply_delta(self, delete: Bag, insert: Bag) -> None:
        """Maintain the index through ``(R ∸ delete) ⊎ insert`` in O(|delta|)."""
        for row, count in delete.items():
            self._delete(row, count)
        for row, count in insert.items():
            self._insert(row, count)

    def lookup(self, key: tuple) -> Mapping[Row, int]:
        """The bucket for ``key`` — rows with their multiplicities."""
        return self._buckets.get(key, _EMPTY_BUCKET)

    def bucket_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        """Total copies indexed (should equal ``len(table)``)."""
        return sum(count for bucket in self._buckets.values() for count in bucket.values())


def _compose_tail(tail: list[tuple[Bag, Bag]]) -> tuple[dict[Row, int], dict[Row, int]]:
    """Net a run of patch deltas into one ``(deletes, inserts)`` pair.

    Composing an accumulated net ``(D, I)`` with a later patch
    ``(d2, i2)`` per row: ``t = min(I[r], d2[r])`` cancels deletes
    against earlier queued inserts, then ``D[r] += d2[r] - t`` and
    ``I[r] = I[r] - t + i2[r]``.  Applying the net is equivalent to
    applying the queue sequentially (including ``Bag.patch``'s floor at
    zero copies: deletes surviving cancellation target pre-queue rows,
    where the index's own floored delete matches the table's), but its
    size is the *net churn* — an insert-then-delete round trip, or many
    patches touching the same row, collapse before the index is touched.
    """
    deletes: dict[Row, int] = {}
    inserts: dict[Row, int] = {}
    for delete, insert in tail:
        for row, count in delete.items():
            queued = inserts.get(row, 0)
            cancelled = count if count < queued else queued
            if cancelled:
                if cancelled == queued:
                    del inserts[row]
                else:
                    inserts[row] = queued - cancelled
            remaining = count - cancelled
            if remaining:
                deletes[row] = deletes.get(row, 0) + remaining
        for row, count in insert.items():
            inserts[row] = inserts.get(row, 0) + count
    return deletes, inserts


class IndexManager:
    """All hash indexes of one database, maintained through its writes.

    Maintenance is **deferred**: a patch-driven write only enqueues its
    ``(delete, insert)`` delta, and a wholesale assignment only marks the
    table's indexes stale (except assignment of the empty bag — log
    truncation — which clears buckets in place and keeps the index
    current).  The next time an executor actually probes the index, the
    queued run is *netted* first (:func:`_compose_tail` — insert-then-
    delete round trips and repeated touches of one row collapse), then
    either the net is applied or, when the net churn still exceeds the
    table's distinct size, the index is rebuilt wholesale — whichever
    is cheaper.  A table that is written by many transactions but
    probed only at refresh time therefore pays index upkeep once per
    refresh instead of once per transaction, and pays nothing at all
    while it is write-only.

    The invariant callers rely on: any index returned by :meth:`get` is
    exactly consistent with the ``bag`` passed in — provided every
    mutation of the table was routed through :meth:`on_patch` /
    :meth:`on_replace`, which :class:`~repro.storage.database.Database`
    guarantees.  All entry points take an internal lock so concurrent
    probes from the parallel group scheduler drain the queue safely.
    """

    def __init__(self) -> None:
        self._by_table: dict[str, dict[tuple[int, ...], HashIndex]] = {}
        #: Per table: patch deltas enqueued since the last drain/rebuild.
        self._pending: dict[str, list[tuple[Bag, Bag]]] = {}
        #: Per table and key: how much of the pending queue is applied.
        self._synced: dict[str, dict[tuple[int, ...], int]] = {}
        #: Tables whose indexes were invalidated by a wholesale assignment.
        self._stale: set[str] = set()
        self._lock = threading.RLock()

    def _rebuild_all(self, table: str, bag: Bag, counter: CostCounter | None) -> None:
        indexes = self._by_table.get(table, {})
        for positions in list(indexes):
            indexes[positions] = HashIndex.build(positions, bag)
            if counter is not None and bag:
                counter.record("index_build", len(bag))
        self._pending.pop(table, None)
        self._synced[table] = {positions: 0 for positions in indexes}
        self._stale.discard(table)

    def get(
        self,
        table: str,
        positions: tuple[int, ...],
        bag: Bag,
        *,
        counter: CostCounter | None = None,
    ) -> HashIndex:
        """The index on ``table`` keyed by ``positions``, current as of ``bag``.

        Built on demand (one O(|table|) scan, charged as ``index_build``)
        and caught up lazily: deferred patch deltas are applied here,
        charged as ``index_maint`` — or as a wholesale ``index_build``
        when rebuilding from ``bag`` is cheaper than draining the queue.
        """
        with self._lock:
            if table in self._stale:
                self._rebuild_all(table, bag, counter)
            indexes = self._by_table.setdefault(table, {})
            synced = self._synced.setdefault(table, {})
            queue = self._pending.get(table, [])
            index = indexes.get(positions)
            if index is None:
                index = HashIndex.build(positions, bag)
                indexes[positions] = index
                synced[positions] = len(queue)
                if counter is not None:
                    counter.record("index_build", len(bag))
            else:
                start = synced.get(positions, 0)
                tail = queue[start:]
                if tail:
                    # Net the queued run first: the rebuild-vs-drain
                    # decision is then based on net churn, not raw
                    # patch volume, and a tie prefers the drain (it
                    # keeps buckets warm for the next round).
                    net_deletes, net_inserts = _compose_tail(tail)
                    if net_deletes:
                        # Deletes of rows this index never held — e.g.
                        # weak-minimality cancellations against a log
                        # that was empty when they were queued — floor
                        # to no-ops; drop them before costing the drain.
                        net_deletes = {
                            row: count
                            for row, count in net_deletes.items()
                            if row in index.lookup(index.key_of(row))
                        }
                    net_rows = len(net_deletes) + len(net_inserts)
                    with obs.span("index_sync", table=table, delta_rows=net_rows, counter=counter):
                        if net_rows > bag.distinct_count():
                            index = HashIndex.build(positions, bag)
                            indexes[positions] = index
                            if counter is not None:
                                counter.record("index_build", len(bag))
                        else:
                            for row, count in net_deletes.items():
                                index._delete(row, count)
                            for row, count in net_inserts.items():
                                index._insert(row, count)
                            if counter is not None and net_rows:
                                counter.record("index_maint", net_rows)
                    synced[positions] = len(queue)
            if queue and all(synced.get(pos, 0) == len(queue) for pos in indexes):
                self._pending[table] = []
                for pos in indexes:
                    synced[pos] = 0
            return index

    def indexes_on(self, table: str) -> tuple[HashIndex, ...]:
        with self._lock:
            return tuple(self._by_table.get(table, {}).values())

    def verify(self, state: Mapping[str, Bag], *, repair: bool = True) -> list[str]:
        """Audit every registered index against the canonical tables.

        Deferred maintenance means a queued-but-undrained index is
        *by design* behind, so each index is first brought current
        through the normal :meth:`get` drain; only then is it compared
        bucket-for-bucket against a fresh build.  A mismatch after the
        drain is real corruption (for example, a crash that interrupted
        incremental maintenance before the rollback signal arrived) —
        with ``repair`` (the default) the index is rebuilt in place.
        Indexes on tables no longer in ``state`` are dropped.  Returns
        labels of the healed (or, with ``repair=False``, divergent)
        indexes.
        """
        healed: list[str] = []
        with self._lock:
            for table in list(self._by_table):
                bag = state.get(table)
                if bag is None:
                    if repair:
                        self.drop(table)
                    healed.append(table)
                    continue
                for positions in list(self._by_table.get(table, {})):
                    current = self.get(table, positions, bag)
                    fresh = HashIndex.build(positions, bag)
                    if current._buckets != fresh._buckets:
                        if repair:
                            self._by_table[table][positions] = fresh
                        healed.append(f"{table}[{','.join(map(str, positions))}]")
            if healed and repair:
                obs.metric_inc("index_rebuilds", len(healed))
        return healed

    def pending_deltas(self, table: str) -> int:
        """How many patch deltas are queued but not yet drained (testing aid)."""
        with self._lock:
            return len(self._pending.get(table, ()))

    def on_patch(
        self,
        table: str,
        delete: Bag,
        insert: Bag,
        *,
        counter: CostCounter | None = None,
    ) -> None:
        """Record a patch-driven write; maintenance is deferred to the
        next probe of the table, so write-only phases pay nothing here."""
        with self._lock:
            if not self._by_table.get(table):
                return
            if not delete and not insert:
                return
            self._pending.setdefault(table, []).append((delete, insert))

    def on_replace(
        self,
        table: str,
        new_value: Bag | None = None,
        *,
        counter: CostCounter | None = None,
    ) -> None:
        """A wholesale assignment invalidates the table's indexes.

        The indexes stay registered but are marked stale and rebuilt
        lazily on the next probe.  This matters for log tables, which are
        cleared by assignment on every refresh: the eventual rebuild from
        the then-empty bag is free, and the index stays alive to absorb
        the next round of patch-driven log appends.
        """
        with self._lock:
            indexes = self._by_table.get(table)
            if not indexes:
                return
            if new_value is None:
                self._by_table.pop(table, None)
                self._pending.pop(table, None)
                self._synced.pop(table, None)
                self._stale.discard(table)
                return
            if not new_value:
                # Assignment of the *empty* bag — how refresh truncates
                # log tables.  Clearing buckets in place is free and
                # leaves the indexes warm and current, so the next probe
                # after a round of log appends pays an O(|net delta|)
                # drain instead of an O(|log|) rebuild.
                for index in indexes.values():
                    index._buckets.clear()
                self._pending.pop(table, None)
                self._synced[table] = {positions: 0 for positions in indexes}
                self._stale.discard(table)
                return
            self._pending.pop(table, None)
            self._synced.pop(table, None)
            self._stale.add(table)

    def drop(self, table: str) -> None:
        with self._lock:
            self._by_table.pop(table, None)
            self._pending.pop(table, None)
            self._synced.pop(table, None)
            self._stale.discard(table)
