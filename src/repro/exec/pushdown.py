"""Whole-plan SQL pushdown (``exec_mode="sqlite"``).

The :class:`PushdownExecutor` compiles *pushable* bag-algebra subtrees
to single SQLite ``SELECT`` statements (:func:`repro.storage.sqlite_backend.compile_expr`)
and runs them against an incrementally-maintained
:class:`~repro.storage.sqlite_backend.SQLiteMirror` of the database —
joins, grouping, and multiplicity arithmetic then execute in SQLite's
C engine instead of the Python interpreter.

Pushability is *structural* and cached per expression:

* every node in the subtree must produce arity > 0 (SQL has no
  zero-column rows — the paper's boolean-flag bags stay in-process);
* ``Literal`` bags and predicate/term constants must hold only values
  SQLite round-trips faithfully (``None``/bool/int/float/str);
* all seven core operators (and ``MapProject``) are pushable when
  their children are.

A non-pushable node falls back *per subtree*: its maximal pushable
descendants are evaluated in SQL, substituted back into the tree as
``Literal`` results, and the remaining top of the tree runs on the
vectorized kernels this class inherits (the executor IS a
:class:`~repro.exec.vectorized.VectorizedExecutor`, so the fallback
shares its plan cache, batch memos, table batch cache, and maintained
hash indexes).  Tables whose *values* turn out not to mirror raise
:class:`~repro.storage.sqlite_backend.MirrorUnsupported` at scan time
and the whole subtree falls back the same way.

Results are memoized per expression under the same per-table version
stamps the compiled engine uses, so an unchanged expression — the
common case across deferred-refresh rounds — re-evaluates in O(1)
without touching SQLite at all.
"""

from __future__ import annotations

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    Arith,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
)
from repro.errors import ReproError, UnknownTableError
from repro.exec.executor import ExecutionContext
from repro.robustness.faults import fault_point
from repro.exec.vectorized import VectorizedExecutor
from repro.storage.sqlite_backend import (
    MirrorUnsupported,
    SQLiteMirror,
    compile_expr,
    sqlite_supported_value,
)

__all__ = ["PushdownExecutor"]


def _term_consts_supported(term: Term) -> bool:
    if isinstance(term, Const):
        return sqlite_supported_value(term.value)
    if isinstance(term, Arith):
        return _term_consts_supported(term.left) and _term_consts_supported(term.right)
    return True  # Attr


def _predicate_consts_supported(predicate: Predicate) -> bool:
    if isinstance(predicate, Comparison):
        return _term_consts_supported(predicate.left) and _term_consts_supported(predicate.right)
    if isinstance(predicate, (And, Or)):
        return _predicate_consts_supported(predicate.left) and _predicate_consts_supported(predicate.right)
    if isinstance(predicate, Not):
        return _predicate_consts_supported(predicate.operand)
    return True  # TruePredicate


def _rebuild(expr: Expr, children: tuple[Expr, ...]) -> Expr:
    """Reconstruct ``expr`` with new children (same node type/attributes)."""
    if isinstance(expr, Select):
        return Select(expr.predicate, children[0])
    if isinstance(expr, Project):
        return Project(expr.attrs, children[0], expr.names)
    if isinstance(expr, MapProject):
        return MapProject(expr.terms, children[0], expr.names)
    if isinstance(expr, DupElim):
        return DupElim(children[0])
    if isinstance(expr, UnionAll):
        return UnionAll(children[0], children[1])
    if isinstance(expr, Monus):
        return Monus(children[0], children[1])
    if isinstance(expr, Product):
        return Product(children[0], children[1])
    raise ReproError(f"pushdown: cannot rebuild node {type(expr).__name__}")


class PushdownExecutor(VectorizedExecutor):
    """Evaluate expressions by pushing pushable subtrees into SQLite."""

    def __init__(self, database) -> None:
        super().__init__(database)
        self._mirror = SQLiteMirror()
        database.add_write_listener(self._mirror)
        #: table -> PartitionSpec mirrored down via :meth:`declare_partition`.
        self._partitions: dict[str, object] = {}
        #: expr -> structural pushability verdict (content-independent).
        self._pushable_memo: dict[Expr, bool] = {}
        #: expr -> compiled SQL text (table names/arities are stable).
        self._sql_cache: dict[Expr, str] = {}
        #: expr -> [stamp, bag]; stamp spans the expr's table versions.
        self._result_memo: dict[Expr, list] = {}

    @property
    def mirror(self) -> SQLiteMirror:
        """The SQLite shadow database (exposed for tests/diagnostics)."""
        return self._mirror

    # ------------------------------------------------------------------
    # Partition pruning support
    # ------------------------------------------------------------------

    def declare_partition(self, table: str, spec) -> None:
        """Thread a partition layout down into the mirror.

        The mirrored table gains a ``__part`` routing column and a
        ``(__part, key)`` index; :meth:`restricted_lookup` then serves
        affected-key restrictions as indexed C scans.
        """
        self._partitions[table] = spec
        self._mirror.declare_partition(table, spec)

    def restricted_lookup(self, table: str, keys, *, counter: CostCounter | None = None) -> Bag | None:
        """Rows of ``table`` with partition key in ``keys``, from the mirror.

        Returns ``None`` when the table is not mirrored clean or a key
        cannot be matched inside SQLite — the caller (the partitioned
        database's :meth:`restrict`) falls back to the in-memory index.
        """
        spec = self._partitions.get(table)
        if spec is None:
            return None
        keys = list(keys)
        with self._mirror.lock:
            if not self._mirror.is_mirrored(table):
                database = self._database
                try:
                    self._mirror.ensure(table, database.schema_of(table), database.state[table])
                except (MirrorUnsupported, UnknownTableError):
                    return None
            pids = {spec.partition_of(key) for key in keys}
            rows = self._mirror.restricted_rows(table, pids, keys)
        if rows is None:
            return None
        counts: dict[Row, int] = {}
        for *values, mult in rows:
            row = tuple(values)
            counts[row] = counts.get(row, 0) + int(mult)
        if counter is not None:
            counter.record_probes("index_probe", len(keys))
            counter.record("partition_restrict", len(counts))
            counter.record("pushdown", len(rows))
        return Bag.from_counts(counts)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        database = self._database
        stamp = tuple(database.version_of(name) for name in sorted(expr.tables()))
        entry = self._result_memo.get(expr)
        if entry is not None and entry[0] == stamp:
            if counter is not None:
                counter.memo_hits += 1
            return entry[1]
        if len(self._result_memo) > self.MAX_NODES:
            self._result_memo.clear()
        bag = self._eval(expr, counter)
        self._result_memo[expr] = [stamp, bag]
        return bag

    def _eval(self, expr: Expr, counter: CostCounter | None) -> Bag:
        if self._is_pushable(expr):
            try:
                return self._sql_eval(expr, counter)
            except MirrorUnsupported:
                return super().evaluate(expr, counter=counter)
        rewritten = self._push_maximal(expr, counter)
        return super().evaluate(rewritten, counter=counter)

    # ------------------------------------------------------------------
    # Pushability analysis
    # ------------------------------------------------------------------

    def _is_pushable(self, expr: Expr) -> bool:
        cached = self._pushable_memo.get(expr)
        if cached is None:
            cached = self._compute_pushable(expr)
            self._pushable_memo[expr] = cached
        return cached

    def _compute_pushable(self, expr: Expr) -> bool:
        if isinstance(expr, TableRef):
            return expr.table_schema.arity > 0
        if isinstance(expr, Literal):
            return expr.literal_schema.arity > 0 and all(
                sqlite_supported_value(value) for row, _count in expr.bag.items() for value in row
            )
        if isinstance(expr, Select):
            return _predicate_consts_supported(expr.predicate) and self._is_pushable(expr.child)
        if isinstance(expr, MapProject):
            return all(_term_consts_supported(term) for term in expr.terms) and self._is_pushable(
                expr.child
            )
        if isinstance(expr, Project):
            return bool(expr.attrs) and self._is_pushable(expr.child)
        if isinstance(expr, DupElim):
            return self._is_pushable(expr.child)
        if isinstance(expr, (UnionAll, Monus, Product)):
            return self._is_pushable(expr.left) and self._is_pushable(expr.right)
        return False

    # ------------------------------------------------------------------
    # SQL evaluation + per-subtree fallback
    # ------------------------------------------------------------------

    def _sql_eval(self, expr: Expr, counter: CostCounter | None) -> Bag:
        """Evaluate a pushable ``expr`` entirely inside SQLite."""
        mirror = self._mirror
        database = self._database
        state = database.state
        with mirror.lock:
            for name in expr.tables():
                try:
                    bag = state[name]
                except KeyError:
                    raise UnknownTableError(
                        f"table {name!r} is not present in the database state"
                    ) from None
                mirror.ensure(name, database.schema_of(name), bag)
            sql = self._sql_cache.get(expr)
            if sql is None:
                if counter is not None:
                    counter.plan_misses += 1
                if len(self._sql_cache) > self.MAX_NODES:
                    self._sql_cache.clear()
                sql = compile_expr(expr, scan=mirror.scan_sql, net=True)
                self._sql_cache[expr] = sql
            elif counter is not None:
                counter.plan_hits += 1
            fault_point("flaky-pushdown-execute")
            rows = mirror.execute(sql)
        counts: dict[Row, int] = {}
        for *values, mult in rows:
            row = tuple(values)
            counts[row] = counts.get(row, 0) + int(mult)
        if counter is not None:
            counter.record("pushdown", len(rows))
        return Bag.from_counts(counts)

    def _push_maximal(self, expr: Expr, counter: CostCounter | None) -> Expr:
        """Replace each maximal pushable subtree with its SQL result.

        The rewritten tree's remaining operators run on the inherited
        vectorized kernels; a subtree whose tables fail to mirror is
        left in place (the kernels read the in-memory state directly).
        """
        if self._is_pushable(expr):
            try:
                bag = self._sql_eval(expr, counter)
            except MirrorUnsupported:
                return expr
            return Literal(bag, expr.schema())
        children = expr.children()
        if not children:
            return expr
        rewritten = tuple(self._push_maximal(child, counter) for child in children)
        if all(new is old for new, old in zip(rewritten, children)):
            return expr
        return _rebuild(expr, rewritten)

    # ------------------------------------------------------------------
    # Priming
    # ------------------------------------------------------------------

    def _build_index(self, ctx: ExecutionContext, table: str, positions: tuple[int, ...]) -> None:
        # Hash indexes serve the vectorized fallback path; the mirror
        # additionally indexes the same key columns so pushed-down
        # equi-joins use them inside SQLite.
        super()._build_index(ctx, table, positions)
        self._mirror.request_index(table, positions)
