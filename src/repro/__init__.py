"""repro — a full reproduction of *Algorithms for Deferred View Maintenance*
(Colby, Griffin, Libkin, Mumick, Trickey; SIGMOD 1996).

The package layers, bottom-up:

* :mod:`repro.algebra` — the bag algebra :math:`\\mathcal{BA}` (values,
  expressions, predicates, evaluation);
* :mod:`repro.storage` — database states, transaction execution, lock
  ledger (view-downtime accounting), SQLite cross-check backend;
* :mod:`repro.core` — the paper's contribution: differential algorithms
  (Figure 2), the four invariants (Figure 1), the deferred-maintenance
  algorithms (Figure 3), and refresh policies (Section 5.3);
* :mod:`repro.sqlfront` — a small SQL front end (Example 1.1's dialect);
* :mod:`repro.warehouse` — the user-facing :class:`ViewManager` API;
* :mod:`repro.workloads` — synthetic workload generators;
* :mod:`repro.baselines` — comparison algorithms (full recompute, the
  state-bug victim, Hanson-style suspended updates);
* :mod:`repro.bench` — experiment harness and report formatting.

Quickstart::

    from repro import Database, ViewManager

    db = Database()
    manager = ViewManager(db)
    manager.create_table("sales", ["custId", "itemNo", "quantity", "salesPrice"])
    manager.create_table("customer", ["custId", "name", "address", "score"])
    manager.define_view(
        "V",
        '''SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
           FROM customer c, sales s
           WHERE c.custId = s.custId AND s.quantity != 0
             AND c.score = 'High' ''',
        scenario="combined",
    )
    manager.transaction().insert("sales", [(1, 77, 2, 9.99)]).run()
    manager.refresh("V")
    print(manager.query("V"))
"""

from repro.algebra import Bag, CostCounter, Schema, evaluate
from repro.core import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
    Log,
    MaintenanceDriver,
    OnDemandPolicy,
    OnQueryPolicy,
    PeriodicRefresh,
    Policy1,
    Policy2,
    UserTransaction,
    ViewDefinition,
)
from repro.errors import (
    InvariantViolation,
    ParseError,
    PolicyError,
    ReproError,
    SchemaError,
    TransactionError,
    UnknownTableError,
)
from repro.storage import Database, LockLedger

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Bag",
    "Schema",
    "evaluate",
    "CostCounter",
    "Database",
    "LockLedger",
    "ViewDefinition",
    "UserTransaction",
    "Log",
    "ImmediateScenario",
    "BaseLogScenario",
    "DiffTableScenario",
    "CombinedScenario",
    "Policy1",
    "Policy2",
    "PeriodicRefresh",
    "OnDemandPolicy",
    "OnQueryPolicy",
    "MaintenanceDriver",
    "ReproError",
    "SchemaError",
    "UnknownTableError",
    "ParseError",
    "TransactionError",
    "InvariantViolation",
    "PolicyError",
    "ViewManager",
]

from repro.warehouse import ViewManager  # noqa: E402  (depends on the above)
