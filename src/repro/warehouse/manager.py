"""The user-facing view manager.

:class:`ViewManager` is the API a downstream application uses:

* create and load base tables;
* define materialized views from SQL (or a prebuilt
  :class:`~repro.core.views.ViewDefinition`), picking a maintenance
  scenario per view;
* run transactions through a fluent builder — the manager extends each
  transaction with *all* maintenance work required by *all* registered
  views, executed as one simultaneous transaction (the paper's
  ``makesafe`` transformation);
* refresh, propagate, and query views, with downtime and cost
  accounting available on :attr:`ViewManager.ledger` and
  :attr:`ViewManager.counter`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr
from repro.core.plan import MaintenancePlan
from repro.core.policies import MaintenanceDriver, MaintenancePolicy
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
    Scenario,
)
from repro.core.transactions import UserTransaction
from repro.extensions.aggregates import AggregateScenario
from repro.extensions.sharedlog import SharedLogScenario, SharedLogView
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError, UnknownTableError
from repro.exec.group import EpochDeltaCache, GroupScheduler, view_fingerprints
from repro.robustness.faults import fault_point
from repro.sqlfront.compiler import script_to_transaction, sql_to_expr, sql_to_view
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = ["ViewManager", "ManagedTransaction", "SCENARIOS"]

#: Scenario name -> class, for :meth:`ViewManager.define_view`.
SCENARIOS: dict[str, type[Scenario]] = {
    "immediate": ImmediateScenario,
    "base_log": BaseLogScenario,
    "diff_table": DiffTableScenario,
    "combined": CombinedScenario,
}


class ManagedTransaction:
    """Fluent transaction builder bound to a :class:`ViewManager`."""

    def __init__(self, manager: ViewManager) -> None:
        self._manager = manager
        self._txn = UserTransaction(manager.db)

    def insert(self, table: str, rows: Iterable[Row] | Bag) -> ManagedTransaction:
        self._txn.insert(table, rows)
        return self

    def delete(self, table: str, rows: Iterable[Row] | Bag) -> ManagedTransaction:
        self._txn.delete(table, rows)
        return self

    def insert_query(self, table: str, expr: Expr) -> ManagedTransaction:
        self._txn.insert_query(table, expr)
        return self

    def delete_query(self, table: str, expr: Expr) -> ManagedTransaction:
        self._txn.delete_query(table, expr)
        return self

    def run(self) -> None:
        """Execute with all views' maintenance extensions."""
        self._manager.execute(self._txn)


class ViewManager:
    """Manages base tables and materialized views over one database."""

    def __init__(
        self,
        db: Database | None = None,
        *,
        exec_mode: str | None = None,
        governed: bool = False,
        governor_opts: dict | None = None,
    ) -> None:
        """``exec_mode`` picks the query engine for a fresh database —
        ``"compiled"`` (default) or the ``"interpreted"`` oracle; see
        :mod:`repro.exec`.  Ignored when an existing ``db`` is passed.
        ``governed`` routes every evaluation through the engine
        governor's degradation ladder
        (:meth:`~repro.storage.database.Database.enable_governor`,
        which receives ``governor_opts``); this *does* apply to a
        passed-in ``db``."""
        self.db = db if db is not None else Database(exec_mode=exec_mode)
        if governed:
            self.db.enable_governor(**(governor_opts or {}))
        self.counter = CostCounter()
        self.ledger = LockLedger()
        self._scenarios: dict[str, Scenario] = {}
        self._drivers: dict[str, MaintenanceDriver] = {}
        #: Default shared-log group for views defined with scenario="shared_log".
        self._shared_default: SharedLogScenario | None = None

    def exec_stats(self) -> dict[str, int]:
        """Plan-cache, index, and delta-cache counters of the engine so far."""
        return {
            "plan_hits": self.counter.plan_hits,
            "plan_misses": self.counter.plan_misses,
            "memo_hits": self.counter.memo_hits,
            "index_probes": self.counter.index_probes,
            "delta_cache_hits": self.counter.delta_cache_hits,
        }

    # ------------------------------------------------------------------
    # Base tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, attrs: Iterable[str], *, rows: Iterable[Row] = ()) -> None:
        """Create an external base table."""
        self.db.create_table(name, attrs, rows=rows)

    def load(self, name: str, rows: Iterable[Row]) -> None:
        """Bulk-load rows into a base table *before* views are defined.

        Loading bypasses maintenance; to modify data once views exist,
        use :meth:`transaction`.
        """
        if self._scenarios:
            raise PolicyError("bulk load is only allowed before views are defined; use transaction()")
        self.db.load(name, rows)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def define_view(
        self,
        name: str,
        definition: str | ViewDefinition | Expr,
        *,
        scenario: str = "combined",
        policy: MaintenancePolicy | None = None,
        strong_minimality: bool = False,
        strict: bool = False,
    ) -> Scenario:
        """Define and materialize a view under the given scenario.

        ``definition`` may be SQL text (a query, or ``CREATE VIEW``), a
        :class:`ViewDefinition`, or a bag-algebra expression.  When a
        ``policy`` is supplied, a :class:`MaintenanceDriver` is attached
        and can be advanced with :meth:`tick`.

        The static analyzer (:mod:`repro.analysis`) runs at install
        time; findings warn by default, and raise
        :class:`~repro.errors.AnalysisError` with ``strict=True``.
        """
        if name in self._scenarios:
            raise SchemaError(f"view {name!r} is already defined")
        if isinstance(definition, ViewDefinition):
            view = definition if definition.name == name else ViewDefinition(name, definition.query)
        elif isinstance(definition, Expr):
            view = ViewDefinition(name, definition)
        else:
            aggregate = self._maybe_aggregate(name, definition)
            if aggregate is not None:
                if scenario != "combined" or strong_minimality or policy is not None:
                    raise PolicyError(
                        "aggregate views are maintained under the combined scenario "
                        "without extra options"
                    )
                instance = AggregateScenario(self.db, aggregate, counter=self.counter, ledger=self.ledger)
                instance.install()
                self._scenarios[name] = instance
                return instance
            view = sql_to_view(definition, self.db, name=name)
        if scenario == "shared_log":
            if strong_minimality or policy is not None:
                raise PolicyError(
                    "shared_log views support neither strong_minimality nor policies"
                )
            instance = SharedLogView(
                self.db,
                view,
                group=self.shared_group(),
                counter=self.counter,
                ledger=self.ledger,
                strict=strict,
            )
            instance.install()
            self._scenarios[name] = instance
            return instance
        self._lint_group_overlap(view, strict=strict)
        try:
            scenario_cls = SCENARIOS[scenario]
        except KeyError:
            raise PolicyError(
                f"unknown scenario {scenario!r}; pick one of {sorted([*SCENARIOS, 'shared_log'])}"
            ) from None
        kwargs = {"counter": self.counter, "ledger": self.ledger, "strict": strict}
        if scenario_cls in (DiffTableScenario, CombinedScenario):
            kwargs["strong_minimality"] = strong_minimality
        elif strong_minimality:
            raise PolicyError(f"strong_minimality is not applicable to the {scenario!r} scenario")
        instance = scenario_cls(self.db, view, **kwargs)
        instance.install()
        self._scenarios[name] = instance
        if policy is not None:
            self._drivers[name] = MaintenanceDriver(instance, policy)
        return instance

    def shared_group(self) -> SharedLogScenario:
        """The manager's shared-log refresh group (created on first use).

        All views defined with ``scenario="shared_log"`` join this group:
        they share one sequenced log per base table (per-transaction
        logging cost independent of the view count) and refresh together
        through :meth:`refresh_group`.
        """
        if self._shared_default is None:
            self._shared_default = SharedLogScenario(
                self.db, counter=self.counter, ledger=self.ledger
            )
        return self._shared_default

    def _shared_log_groups(self) -> list[SharedLogScenario]:
        seen: dict[int, SharedLogScenario] = {}
        for scenario in self._scenarios.values():
            group = getattr(scenario, "group", None)
            if group is not None:
                seen[id(group)] = group
        return list(seen.values())

    def _lint_group_overlap(self, view: ViewDefinition, *, strict: bool) -> None:
        """RVM501: a non-group view sharing subplans with a refresh group.

        When the new view's query has a subplan fingerprint in common
        with a view already registered in a shared-log group, group
        refresh could have served both from one delta evaluation — but a
        view registered outside the group never benefits.  Warn (or
        raise, under ``strict=True``) so the redundancy is a choice, not
        an accident.
        """
        import warnings

        from repro.analysis.diagnostics import AnalysisReport, AnalysisWarning, Severity

        overlapping: list[str] = []
        fingerprints = None
        for group in self._shared_log_groups():
            for member in group.views():
                if fingerprints is None:
                    fingerprints = view_fingerprints(view.query)
                if fingerprints & view_fingerprints(group.view_definition(member).query):
                    overlapping.append(member)
        if not overlapping:
            return
        report = AnalysisReport()
        report.add(
            "RVM501",
            Severity.WARNING,
            f"view {view.name!r} shares subplan fingerprints with refresh-group "
            f"member(s) {sorted(overlapping)} but is registered outside the group; "
            "define it with scenario='shared_log' so group refresh can share its "
            "delta evaluation",
            path=view.name,
        )
        if strict:
            report.raise_if_failed(context=f"install of view {view.name!r}")
        for diagnostic in report.warnings:
            warnings.warn(diagnostic.format(), AnalysisWarning, stacklevel=3)

    def _lint_group_schedule(self, tasks) -> None:
        """RVM603/RVM604: validate a group epoch's tasks before running it.

        Each task's *declared* read/write sets must cover the footprint
        the effect system infers from its scenario's maintenance
        protocol (RVM604 — an under-declared task can be co-batched with
        a conflicting one), and the batch schedule must respect
        registration order for every conflicting pair (RVM603).  Checked
        once per epoch; warn-by-default like :meth:`_lint_group_overlap`
        — the epoch still runs, because the scheduler's own batching is
        conservative, but the warning means the declared metadata can no
        longer be trusted to prove that.
        """
        import warnings

        from repro.analysis.concurrency_check import check_schedule, check_tasks
        from repro.analysis.diagnostics import AnalysisWarning

        if not tasks:
            return
        report = check_tasks(tasks)
        report.extend(check_schedule(tasks))
        for diagnostic in report:
            warnings.warn(diagnostic.format(), AnalysisWarning, stacklevel=4)

    def scenario(self, name: str) -> Scenario:
        """The scenario object maintaining view ``name``."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise UnknownTableError(f"no such view: {name!r}") from None

    def driver(self, name: str) -> MaintenanceDriver:
        """The maintenance driver for a view defined with a policy."""
        try:
            return self._drivers[name]
        except KeyError:
            raise PolicyError(f"view {name!r} has no maintenance policy attached") from None

    def views(self) -> tuple[str, ...]:
        return tuple(self._scenarios)

    def drop_view(self, name: str) -> None:
        """Stop maintaining a view and drop its internal tables."""
        scenario = self.scenario(name)
        if hasattr(scenario, "uninstall"):
            scenario.uninstall()
        del self._scenarios[name]
        self._drivers.pop(name, None)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _maybe_aggregate(self, name: str, source: str):
        """Parse SQL and, when it is an aggregate query, compile it."""
        from repro.sqlfront.compiler import compile_aggregate_view
        from repro.sqlfront.parser import CreateView as CreateViewStmt
        from repro.sqlfront.parser import SelectCore, parse_statement

        statement = parse_statement(source)
        if isinstance(statement, CreateViewStmt):
            core = statement.query
            if isinstance(core, SelectCore) and core.is_aggregate():
                view_name = statement.name if name is None else name
                return compile_aggregate_view(view_name, core, self.db)
            return None
        if isinstance(statement, SelectCore) and statement.is_aggregate():
            return compile_aggregate_view(name, statement, self.db)
        return None

    def transaction(self) -> ManagedTransaction:
        """Start building a user transaction."""
        return ManagedTransaction(self)

    def execute(self, txn: UserTransaction) -> None:
        """Run a user transaction with every view's ``makesafe`` extension.

        All per-view auxiliary updates and the user updates execute as a
        single simultaneous transaction, sharing one evaluation memo —
        views over the same tables do not recompute shared deltas.
        """
        with obs.span("txn", tables=",".join(sorted(txn.tables)), views=len(self._scenarios), counter=self.counter):
            minimal = txn.weakly_minimal()
            plan = MaintenancePlan(patches=minimal.patches())
            for scenario in self._scenarios.values():
                plan = plan.merge(scenario.make_safe(txn))
            # One shared-log extension per *group*, not per view — this is
            # what keeps per-transaction cost independent of the view count.
            for group in self._shared_log_groups():
                for table, (delete, insert) in group.shared_log.extend_patches(minimal).items():
                    plan.add_patch(table, delete, insert)
            fault_point("crash-mid-execute")
            plan.execute(self.db, counter=self.counter)
            for scenario in self._scenarios.values():
                scenario.post_execute()
        if obs.telemetry_enabled():
            for scenario in self._scenarios.values():
                # AggregateScenario wears the Scenario interface without
                # subclassing it; skip anything without the hook.
                note = getattr(scenario, "_note_stale", None)
                if note is not None:
                    note()

    # ------------------------------------------------------------------
    # Maintenance operations
    # ------------------------------------------------------------------

    def refresh(self, name: str) -> None:
        """Bring one view fully up to date."""
        self.scenario(name).refresh()

    def refresh_all(self) -> None:
        for scenario in self._scenarios.values():
            scenario.refresh()

    def refresh_group(
        self,
        names: Iterable[str] | None = None,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        compact: bool = True,
    ) -> None:
        """Refresh many views as one epoch, sharing work across them.

        Three layers on top of per-view :meth:`refresh`:

        1. logs are compacted to net effects first (``compact=True``), so
           the delta evaluations scale with net change, not raw churn;
        2. views whose refresh deltas fingerprint equal over equal log
           contents share one evaluation through an epoch-scoped delta
           cache (``delta_cache_hits`` on :attr:`counter`);
        3. independent views are batched by their read/write sets and may
           evaluate concurrently (``parallel=True``); patches always
           apply sequentially in registration order, so the final state
           is bag-equal to refreshing each view in turn.

        Views whose scenario has no group task (immediate, diff-table,
        aggregate) fall back to their own ``refresh`` after the group.
        """
        members = list(names) if names is not None else list(self._scenarios)
        with obs.span(
            "group_epoch",
            views=len(members),
            parallel=parallel,
            compact=compact,
            counter=self.counter,
        ):
            self._refresh_group(members, parallel=parallel, max_workers=max_workers, compact=compact)
        if obs.telemetry_enabled():
            obs.metric_inc("group_epochs")
            obs.current().metrics.absorb_counter(self.counter)

    def _refresh_group(
        self,
        members: list[str],
        *,
        parallel: bool,
        max_workers: int | None,
        compact: bool,
    ) -> None:
        cache = EpochDeltaCache(self.counter)
        tasks = []
        fallback: list[str] = []
        shared: dict[int, tuple[SharedLogScenario, list[tuple[int, str]]]] = {}
        for order, name in enumerate(members):
            scenario = self.scenario(name)
            group = getattr(scenario, "group", None)
            if group is not None:
                shared.setdefault(id(group), (group, []))[1].append((order, name))
            elif hasattr(scenario, "group_refresh_task"):
                if compact and hasattr(scenario, "compact_log"):
                    scenario.compact_log()
                chunked = (
                    scenario.partitioned_group_tasks(order=order)
                    if hasattr(scenario, "partitioned_group_tasks")
                    else None
                )
                if chunked is not None:
                    # Partitioned database + chunk-safe plan: the view's
                    # epoch splits into per-partition compute tasks that
                    # batch at partition granularity.
                    tasks.extend(chunked)
                else:
                    tasks.append(scenario.group_refresh_task(order=order))
            else:
                fallback.append(name)
        for group, group_members in shared.values():
            if compact:
                group.compact()
            tasks.extend(group.group_tasks(group_members))
        self._lint_group_schedule(tasks)
        scheduler = GroupScheduler(
            counter=self.counter, parallel=parallel, max_workers=max_workers
        )
        scheduler.run(tasks, cache)
        for group, _ in shared.values():
            # Consumed entries drop now on plain databases; journaled
            # ones defer to the committed watermark (crash recovery may
            # still replay this very epoch from the previous checkpoint).
            group._maybe_prune()
        for name in fallback:
            self.scenario(name).refresh()

    def commit_log_watermarks(self) -> None:
        """Advance shared-log prune floors after a durable commit.

        Called by :class:`~repro.robustness.DurableWarehouse` once a
        journaled operation's checkpoint has committed: entries below
        every cursor in that checkpoint can no longer be needed by crash
        recovery and are pruned.
        """
        for group in self._shared_log_groups():
            group.commit_watermark()

    def propagate(self, name: str) -> None:
        """Run ``propagate_C`` for a combined-scenario (or aggregate) view."""
        scenario = self.scenario(name)
        if not hasattr(scenario, "propagate"):
            raise PolicyError(f"view {name!r} is not maintained under the combined scenario")
        scenario.propagate()

    def partial_refresh(self, name: str) -> None:
        """Run ``partial_refresh_C`` for a combined-scenario (or aggregate) view."""
        scenario = self.scenario(name)
        if not hasattr(scenario, "partial_refresh"):
            raise PolicyError(f"view {name!r} is not maintained under the combined scenario")
        scenario.partial_refresh()

    def tick(self, txns: Iterable[UserTransaction] = ()) -> None:
        """Advance all attached maintenance drivers by one time unit."""
        txns = tuple(txns)
        for driver in self._drivers.values():
            driver.tick(txns)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, name: str) -> Bag:
        """Read a view's materialized table (possibly stale)."""
        return self.scenario(name).read_view()

    def query_fresh(self, name: str) -> Bag:
        """Refresh, then read — never returns stale data."""
        scenario = self.scenario(name)
        scenario.refresh()
        return scenario.read_view()

    def sql(self, query: str) -> Bag:
        """Evaluate an ad-hoc SQL query against the current state."""
        return self.db.evaluate(sql_to_expr(query, self.db), counter=self.counter)

    def execute_sql(self, script: str) -> None:
        """Run a ``;``-separated INSERT/DELETE script as ONE transaction.

        All statements share the paper's simultaneous semantics — every
        delta reads the pre-transaction state — and every registered
        view's maintenance extension is applied, exactly as with
        :meth:`transaction`.
        """
        txn = UserTransaction(self.db)
        script_to_transaction(script, self.db, txn)
        self.execute(txn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_stale(self, name: str) -> bool:
        """Whether the view table currently differs from its definition."""
        return not self.scenario(name).is_consistent()

    def check_invariants(self) -> None:
        """Assert every view's scenario invariant (testing/debugging aid)."""
        for scenario in self._scenarios.values():
            scenario.check_invariant()

    def downtime_seconds(self, name: str) -> float:
        """Total wall-clock downtime of a view so far."""
        return self.ledger.downtime_seconds(self.scenario(name).view.mv_table)

    def obs_snapshot(self) -> dict:
        """One combined observability snapshot (requires ``obs.enable()``).

        Mirrors the engine's :class:`CostCounter` cache counters into the
        metrics registry first, then returns metrics + per-view
        downtime/staleness clocks.  Empty sections when observability is
        disabled.
        """
        stack = obs.current()
        stack.metrics.absorb_counter(self.counter)
        return {
            "metrics": stack.metrics.snapshot(),
            "views": stack.accounting.snapshot(),
        }
