"""User-facing warehouse API: the view manager."""

from repro.warehouse.manager import SCENARIOS, ManagedTransaction, ViewManager

__all__ = ["ViewManager", "ManagedTransaction", "SCENARIOS"]
