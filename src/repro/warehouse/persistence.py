"""Whole-warehouse persistence: database state *plus* view registrations.

:func:`repro.storage.persistence.save_database` persists table contents;
this module adds a view catalog so a restarted process can reattach the
maintenance machinery exactly where it left off — materialized tables,
logs, and differential tables all resume mid-deferral:

.. code:: python

    save_warehouse(manager, "warehouse.db")
    # … restart …
    manager = load_warehouse("warehouse.db")
    manager.refresh_all()   # catches up on everything logged pre-restart

The catalog is stored inside the same SQLite file as a normal internal
table (``__viewdefs__``) holding each view's name, scenario, options,
and JSON-serialized defining query.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algebra.serialize import expr_from_dict, expr_to_dict
from repro.core.scenarios import CombinedScenario, DiffTableScenario
from repro.core.views import ViewDefinition
from repro.errors import ReproError
from repro.extensions.aggregates import AggregateScenario, AggregateSpec, AggregateView
from repro.extensions.sharedlog import SharedLogView
from repro.storage.persistence import load_database, save_database
from repro.warehouse.manager import SCENARIOS, ViewManager

__all__ = ["save_warehouse", "load_warehouse", "VIEWDEFS_TABLE"]

VIEWDEFS_TABLE = "__viewdefs__"
_TAG_TO_NAME = {cls.tag: name for name, cls in SCENARIOS.items()}


def _describe(scenario) -> dict:
    """A JSON-safe description of one view's maintenance setup."""
    if isinstance(scenario, AggregateScenario):
        view = scenario.view
        return {
            "type": "aggregate",
            "name": view.name,
            "base_query": expr_to_dict(view.base.query),
            "base_name": view.base.name,
            "group_by": list(view.group_by),
            "aggregates": [
                {"function": spec.function, "attribute": spec.attribute, "alias": spec.alias}
                for spec in view.aggregates
            ],
        }
    if isinstance(scenario, SharedLogView):
        view = scenario.view
        return {
            "type": "shared_log",
            "name": view.name,
            "query": expr_to_dict(view.query),
            "cursor": scenario.group.cursor(view.name),
            "seq": scenario.group.shared_log.current_seq,
        }
    description = {
        "type": "plain",
        "name": scenario.view.name,
        "scenario": _TAG_TO_NAME.get(scenario.tag),
        "query": expr_to_dict(scenario.view.query),
        "strong_minimality": bool(getattr(scenario, "strong_minimality", False)),
    }
    if description["scenario"] is None:
        raise ReproError(f"cannot persist views of scenario type {type(scenario).__name__}")
    return description


def save_warehouse(manager: ViewManager, path: str | Path) -> None:
    """Persist the database and every registered view's definition."""
    db = manager.db
    descriptions = [_describe(manager.scenario(name)) for name in manager.views()]
    created = not db.has_table(VIEWDEFS_TABLE)
    if created:
        db.create_table(VIEWDEFS_TABLE, ["name", "definition"], internal=True)
    from repro.algebra.bag import Bag

    db.set_table(
        VIEWDEFS_TABLE,
        Bag((description["name"], json.dumps(description, sort_keys=True)) for description in descriptions),
    )
    try:
        save_database(db, path)
    finally:
        if created:
            db.drop_table(VIEWDEFS_TABLE)
        else:
            db.set_table(VIEWDEFS_TABLE, Bag())


def load_warehouse(
    path: str | Path,
    *,
    exec_mode: str | None = None,
    governed: bool = False,
    governor_opts: dict | None = None,
) -> ViewManager:
    """Load a warehouse saved with :func:`save_warehouse`.

    Views are reattached to their existing materialized/auxiliary tables
    (nothing is recomputed); pending logs and differentials survive, so
    a subsequent refresh applies everything recorded before the save.
    ``exec_mode`` picks the reloaded database's engine (snapshots store
    no engine choice) and ``governed`` arms the engine-degradation
    ladder on it (``governor_opts`` are forwarded to
    :meth:`~repro.storage.database.Database.enable_governor`).
    """
    db = load_database(path, exec_mode=exec_mode)
    if governed:
        db.enable_governor(**(governor_opts or {}))
    manager = ViewManager(db)
    if not db.has_table(VIEWDEFS_TABLE):
        return manager
    descriptions = [json.loads(row[1]) for row in sorted(db[VIEWDEFS_TABLE].support)]
    db.drop_table(VIEWDEFS_TABLE)
    for description in descriptions:
        _attach(manager, description)
    return manager


def _attach(manager: ViewManager, description: dict) -> None:
    name = description["name"]
    if description["type"] == "aggregate":
        view = AggregateView(
            name,
            ViewDefinition(description["base_name"], expr_from_dict(description["base_query"])),
            tuple(description["group_by"]),
            tuple(
                AggregateSpec(spec["function"], spec["attribute"], spec["alias"])
                for spec in description["aggregates"]
            ),
        )
        scenario = AggregateScenario(manager.db, view, counter=manager.counter, ledger=manager.ledger)
        scenario._installed = True
        scenario.base._installed = True
    elif description["type"] == "shared_log":
        view = ViewDefinition(name, expr_from_dict(description["query"]))
        group = manager.shared_group()
        group.shared_log.restore_seq(description["seq"])
        scenario = SharedLogView(
            manager.db, view, group=group, counter=manager.counter, ledger=manager.ledger
        )
        # Reattach to the persisted log tables and MV at the saved cursor.
        scenario.attach(description["cursor"])
    else:
        scenario_cls = SCENARIOS[description["scenario"]]
        view = ViewDefinition(name, expr_from_dict(description["query"]))
        kwargs = {"counter": manager.counter, "ledger": manager.ledger}
        if scenario_cls in (DiffTableScenario, CombinedScenario):
            kwargs["strong_minimality"] = description["strong_minimality"]
        scenario = scenario_cls(manager.db, view, **kwargs)
        scenario._installed = True
    _verify_attached(manager, scenario)
    manager._scenarios[name] = scenario


def _verify_attached(manager: ViewManager, scenario) -> None:
    """The saved file must actually contain the view's internal tables."""
    mv_table = scenario.view.mv_table
    if not manager.db.has_table(mv_table):
        raise ReproError(f"saved warehouse lacks materialized table {mv_table!r}")
