"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the
layer that produced the error: algebra (schema/typing), parsing, storage,
and view-maintenance policy misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A query or operation is inconsistent with the schemas involved.

    Raised for unknown attributes, arity mismatches in bag operations,
    ambiguous attribute references, and incompatible operand schemas.

    Structured context for diagnostics (all optional):

    * ``attribute`` — the offending attribute name, when one exists;
    * ``expression`` — a short rendering of the expression node that was
      being validated when the error was raised;
    * ``position`` — character offset into SQL source text, when the
      expression came from the SQL front end.
    """

    def __init__(
        self,
        message: str,
        *,
        attribute: str | None = None,
        expression: str | None = None,
        position: int | None = None,
    ) -> None:
        super().__init__(message)
        self.attribute = attribute
        self.expression = expression
        self.position = position

    def with_context(
        self,
        *,
        attribute: str | None = None,
        expression: str | None = None,
        position: int | None = None,
    ) -> SchemaError:
        """A copy of this error with missing context fields filled in."""
        return SchemaError(
            str(self),
            attribute=self.attribute if self.attribute is not None else attribute,
            expression=self.expression if self.expression is not None else expression,
            position=self.position if self.position is not None else position,
        )


class UnknownTableError(ReproError):
    """A query references a table that the database does not contain."""


class ParseError(ReproError):
    """The SQL front end could not parse the given statement."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        #: Character offset into the source text, when known.
        self.position = position


class TransactionError(ReproError):
    """A transaction is malformed or touches tables it must not touch.

    User transactions may only update *external* tables; internal tables
    (materialized views, logs, differential tables) are reserved for the
    maintenance machinery.
    """


class InvariantViolation(ReproError):
    """A database invariant required by a maintenance scenario is broken."""


class PolicyError(ReproError):
    """A maintenance policy was configured or driven incorrectly."""


class RecoveryError(ReproError):
    """The crash-safety layer was misused or found unrecoverable state.

    Raised by the intent journal (e.g. starting a new operation while a
    crashed operation's intent is still pending) and by the recovery
    runner (e.g. a snapshot whose contents match neither the pre- nor a
    consistent post-operation state).
    """


class AnalysisError(ReproError):
    """Static analysis rejected an expression or maintenance plan.

    Raised by the :mod:`repro.analysis` lint driver in ``strict`` mode;
    carries the list of :class:`~repro.analysis.diagnostics.Diagnostic`
    objects that caused the failure.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        #: The diagnostics (errors and warnings) behind the failure.
        self.diagnostics = tuple(diagnostics)
