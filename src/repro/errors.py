"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the
layer that produced the error: algebra (schema/typing), parsing, storage,
and view-maintenance policy misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A query or operation is inconsistent with the schemas involved.

    Raised for unknown attributes, arity mismatches in bag operations,
    ambiguous attribute references, and incompatible operand schemas.
    """


class UnknownTableError(ReproError):
    """A query references a table that the database does not contain."""


class ParseError(ReproError):
    """The SQL front end could not parse the given statement."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        #: Character offset into the source text, when known.
        self.position = position


class TransactionError(ReproError):
    """A transaction is malformed or touches tables it must not touch.

    User transactions may only update *external* tables; internal tables
    (materialized views, logs, differential tables) are reserved for the
    maintenance machinery.
    """


class InvariantViolation(ReproError):
    """A database invariant required by a maintenance scenario is broken."""


class PolicyError(ReproError):
    """A maintenance policy was configured or driven incorrectly."""
