"""Online view serving: snapshot-isolated reads, background maintenance.

The paper's Section 5.3 measures view *downtime* — the exclusive-lock
window refresh holds on ``MV`` while readers wait.  This package cashes
in the deferred-maintenance argument by removing readers from that
window entirely: reads are served from immutable
:class:`~repro.serve.snapshots.SnapshotHandle` cuts pinned through a
refcounted :class:`~repro.serve.snapshots.SnapshotRegistry`, while a
:class:`~repro.serve.server.ViewServer` runs Policy 2's propagate /
partial_refresh cadence behind a write mutex — synchronously, or on a
background :class:`~repro.serve.workers.WorkerPool`.

See ``docs/serving.md`` for the snapshot lifecycle, the worker pool's
crash semantics, and the E22 methodology
(``python -m repro.bench.serve_bench``).
"""

from repro.serve.server import ServeConfig, ViewServer
from repro.serve.snapshots import SnapshotHandle, SnapshotRegistry
from repro.serve.workers import MaintenanceWorker, WorkerPool

__all__ = [
    "ServeConfig",
    "ViewServer",
    "SnapshotHandle",
    "SnapshotRegistry",
    "MaintenanceWorker",
    "WorkerPool",
]
