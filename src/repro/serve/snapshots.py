"""Immutable snapshot handles and the pin registry (MVCC for readers).

The storage layer already stores every table as an immutable
:class:`~repro.algebra.bag.Bag`, so a *snapshot* of the whole database
is nothing more than a dict of references plus the version stamps it was
cut at — O(#tables), never O(data).  What the serving layer adds is the
discipline around that copy:

* :meth:`~repro.storage.database.Database.consistent_cut` takes the copy
  under the commit mutex, so a pin can never observe half of a
  simultaneous transaction's install loop (no torn reads);
* :class:`SnapshotHandle` freezes the cut and answers reads and ad-hoc
  queries against it forever, no matter what the live database does
  next;
* :class:`SnapshotRegistry` refcounts pins and collects superseded
  snapshots the moment their last reader releases them, so memory held
  by old versions is bounded by the number of *live* readers, not by
  write traffic.

Handles evaluate ad-hoc expressions with the **interpreted oracle**
against their own frozen tables.  The compiled engines' plan caches and
indexes are keyed to the live database's version stamps; consulting them
with a pinned state would be exactly the plan-cache staleness bug the
exec-layer tests guard against, so pinned evaluation never goes near an
executor.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Expr
from repro.errors import UnknownTableError
from repro.robustness.journal import bag_digest

__all__ = ["SnapshotHandle", "SnapshotRegistry"]


class SnapshotHandle:
    """One immutable ``(tables, versions, clock)`` cut of a database.

    Handles are created by :meth:`SnapshotRegistry.pin` and stay readable
    until every pin is :meth:`release`-d — and, since the tables are
    plain references to immutable bags, they stay readable even then; the
    registry merely stops *retaining* them.  Use as a context manager to
    release on exit.
    """

    __slots__ = ("snapshot_id", "clock", "tick", "reflects", "_tables", "_versions", "_registry")

    def __init__(
        self,
        snapshot_id: int,
        tables: Mapping[str, Bag],
        versions: Mapping[str, int],
        clock: int,
        *,
        tick: int = 0,
        reflects: int = 0,
        registry: SnapshotRegistry | None = None,
    ) -> None:
        #: Monotonic pin identifier (registry-scoped).
        self.snapshot_id = snapshot_id
        #: The database's global write clock at the cut.
        self.clock = clock
        #: Simulated time the server published this snapshot at.
        self.tick = tick
        #: Simulated time of the database state the view tables in this
        #: snapshot reflect (Policy 2's ``mv_reflects`` at publish).
        self.reflects = reflects
        self._tables = dict(tables)
        self._versions = dict(versions)
        self._registry = registry

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def table(self, name: str) -> Bag:
        """The pinned contents of ``name`` (never reflects later writes)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no such table in snapshot: {name!r}") from None

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def version_of(self, name: str) -> int:
        """The pinned version stamp of ``name``."""
        return self._versions.get(name, -1)

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        """Evaluate an ad-hoc query against the pinned state.

        Always runs the interpreted evaluator over the frozen tables:
        engine plan caches and indexes are stamped against the *live*
        database and must never serve a pinned read.
        """
        return evaluate(expr, self._tables, counter=counter)

    def digest(self, name: str) -> str:
        """Order-insensitive content digest of a pinned table."""
        return bag_digest(self.table(name))

    def total_rows(self) -> int:
        return sum(len(bag) for bag in self._tables.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def release(self) -> None:
        """Drop one pin; idempotent once the registry forgot the handle."""
        if self._registry is not None:
            self._registry.release(self)

    def __enter__(self) -> SnapshotHandle:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"SnapshotHandle(id={self.snapshot_id}, clock={self.clock}, "
            f"tick={self.tick}, tables={len(self._tables)})"
        )


class SnapshotRegistry:
    """Refcounted pin registry with GC of superseded snapshots.

    Thread-safe: readers pin/release concurrently with the writer
    publishing new cuts.  A snapshot is *live* while any pin holds it;
    when the last pin releases a snapshot that is no longer the newest,
    the registry drops its reference (``collected_total``) and Python's
    own refcounting reclaims the dict — the bags themselves are shared
    with the live database and every other snapshot that references
    them, so collection is O(#tables) too.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pins: dict[int, int] = {}
        self._handles: dict[int, SnapshotHandle] = {}
        self._next_id = 0
        self._newest_id = -1
        self.pins_total = 0
        self.releases_total = 0
        self.collected_total = 0

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------

    def pin(self, db, *, tick: int = 0, reflects: int = 0) -> SnapshotHandle:
        """Cut and pin a fresh snapshot of ``db`` (O(#tables))."""
        tables, versions, clock = db.consistent_cut()
        with self._lock:
            self._next_id += 1
            handle = SnapshotHandle(
                self._next_id, tables, versions, clock,
                tick=tick, reflects=reflects, registry=self,
            )
            self._pins[handle.snapshot_id] = 1
            self._handles[handle.snapshot_id] = handle
            self._newest_id = handle.snapshot_id
            self.pins_total += 1
            return handle

    def repin(self, handle: SnapshotHandle) -> SnapshotHandle:
        """Add one pin to an existing live handle (a reader joining it)."""
        with self._lock:
            if handle.snapshot_id not in self._pins:
                raise ValueError(f"snapshot {handle.snapshot_id} is no longer retained")
            self._pins[handle.snapshot_id] += 1
            self.pins_total += 1
            return handle

    def release(self, handle: SnapshotHandle) -> None:
        """Drop one pin; collect the snapshot when superseded and unpinned."""
        with self._lock:
            count = self._pins.get(handle.snapshot_id)
            if count is None:
                return
            self.releases_total += 1
            if count > 1:
                self._pins[handle.snapshot_id] = count - 1
                return
            del self._pins[handle.snapshot_id]
            del self._handles[handle.snapshot_id]
            self.collected_total += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_count(self) -> int:
        """Snapshots currently retained (pinned by at least one reader)."""
        with self._lock:
            return len(self._pins)

    def pin_count(self, handle: SnapshotHandle) -> int:
        with self._lock:
            return self._pins.get(handle.snapshot_id, 0)

    def retained_rows(self) -> int:
        """Total rows referenced across live snapshots (shared, not copied)."""
        with self._lock:
            handles = list(self._handles.values())
        return sum(handle.total_rows() for handle in handles)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "live": len(self._pins),
                "pins_total": self.pins_total,
                "releases_total": self.releases_total,
                "collected_total": self.collected_total,
            }
