"""Background maintenance workers for the view server.

A :class:`MaintenanceWorker` is a daemon thread that drains the server's
maintenance queue — propagate / partial_refresh / refresh actions queued
by :meth:`~repro.serve.server.ViewServer.tick` — off the read *and*
write paths.  Workers contend on the server's single write mutex (the
view manager underneath is not thread-safe), so a pool of ``n`` workers
buys responsiveness (the queue is picked up as soon as any worker
wakes), not parallel maintenance throughput.

Crash semantics mirror the rest of the robustness layer: an
:class:`~repro.robustness.faults.InjectedCrash` mid-action kills that
worker only.  The storage layer's all-or-nothing install has already
rolled the in-flight operation back, the action returns to the queue for
a retry (refresh-family operations are idempotent), and the published
snapshot — plus every pinned one — is untouched.
"""

from __future__ import annotations

import threading

from repro.robustness.faults import InjectedCrash

__all__ = ["MaintenanceWorker", "WorkerPool"]


class MaintenanceWorker(threading.Thread):
    """One queue-draining maintenance thread."""

    def __init__(self, server, index: int = 0, *, poll_interval_s: float = 0.005) -> None:
        super().__init__(name=f"maintenance-worker-{index}", daemon=True)
        self._server = server
        self._poll_interval_s = poll_interval_s
        self._wake = threading.Event()
        self._stopping = threading.Event()
        #: The InjectedCrash that killed this worker, if any.
        self.crashed: InjectedCrash | None = None
        self.actions_run = 0

    def run(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(self._poll_interval_s)
            self._wake.clear()
            try:
                self.actions_run += len(self._server.drain_maintenance())
            except InjectedCrash as crash:
                self.crashed = crash
                return

    def kick(self) -> None:
        """Wake the worker now instead of at its next poll."""
        self._wake.set()

    def stop(self, *, timeout_s: float = 5.0) -> None:
        self._stopping.set()
        self._wake.set()
        self.join(timeout=timeout_s)


class WorkerPool:
    """A fixed set of maintenance workers over one server."""

    def __init__(self, server, count: int = 1, *, poll_interval_s: float = 0.005) -> None:
        if count < 1:
            raise ValueError("worker pools need at least one worker")
        self.workers = [
            MaintenanceWorker(server, index, poll_interval_s=poll_interval_s)
            for index in range(count)
        ]

    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def kick(self) -> None:
        for worker in self.workers:
            worker.kick()

    def alive(self) -> int:
        return sum(1 for worker in self.workers if worker.is_alive())

    def crashes(self) -> list[InjectedCrash]:
        """Crashes that have killed workers so far."""
        return [worker.crashed for worker in self.workers if worker.crashed is not None]

    def actions_run(self) -> int:
        return sum(worker.actions_run for worker in self.workers)

    def stop(self, *, timeout_s: float = 5.0) -> None:
        for worker in self.workers:
            worker.stop(timeout_s=timeout_s)
