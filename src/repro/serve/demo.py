"""``python -m repro serve --demo`` — a live view-serving walkthrough.

Spins up a :class:`~repro.serve.ViewServer` over the seeded retail
workload with a background worker pool, runs a few writer epochs while
reader threads hammer the snapshot path, and prints what Section 5.3's
downtime argument looks like from the serving side: reads never wait on
the maintenance lock, staleness stays within Policy 2's ``(k, m)``, and
superseded snapshots are collected as readers move on.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.serve.server import ServeConfig, ViewServer

__all__ = ["main"]


def _build_retail_server(*, k: int, m: int, seed: int):
    from repro.storage.database import Database
    from repro.warehouse.manager import ViewManager
    from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

    workload = RetailWorkload(
        RetailConfig(customers=60, initial_sales=300, txn_inserts=6, seed=seed)
    )
    db = Database()
    workload.setup_database(db)
    server = ViewServer(ServeConfig(k=k, m=m), manager=ViewManager(db))
    server.define_view("V", VIEW_SQL, scenario="combined")
    return server, workload


def _run_demo(
    *, ticks: int, readers: int, workers: int, k: int, m: int, seed: int, out
) -> int:
    server, workload = _build_retail_server(k=k, m=m, seed=seed)
    print(
        f"serving demo: retail workload, Policy 2 (k={k}, m={m}), "
        f"{workers} maintenance worker(s), {readers} reader thread(s)",
        file=out,
    )
    server.start_workers(workers)
    stop = threading.Event()
    reads = {"count": 0}

    def _reader(index: int) -> None:
        mine = 0
        while not stop.is_set():
            server.read("V")
            mine += 1
            time.sleep(0.001)
        with server._write_mutex:  # only to total the counter safely
            reads["count"] += mine

    threads = [
        threading.Thread(target=_reader, args=(i,), name=f"reader-{i}", daemon=True)
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()

    try:
        for _ in range(ticks):
            txns = [workload.next_transaction(server.db) for _ in range(3)]
            ran = server.tick(txns)
            server.wait_idle()
            snapshot = server.current
            rows = len(server.read("V"))
            actions = ",".join(action for _, action in ran) or "-"
            print(
                f"tick {server.now:>3} | V: {rows} rows | staleness "
                f"{server.staleness_ticks('V')} tick(s) | maintenance: {actions} "
                f"| snapshot #{snapshot.snapshot_id}",
                file=out,
            )
            time.sleep(0.005)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=2.0)
        server.stop_workers()

    registry = server.registry.stats()
    sections = server.reader_lock_sections()
    print(
        f"\n{reads['count']} reads served from pinned snapshots; "
        f"reader-held exclusive lock sections: {sections}",
        file=out,
    )
    print(
        f"snapshots: {registry['pins_total']} pinned, "
        f"{registry['collected_total']} collected, {registry['live']} live",
        file=out,
    )
    print(
        "reader-observable downtime is zero by construction: reads resolve "
        "against immutable snapshot cuts, never the maintenance lock.",
        file=out,
    )
    return 0 if sections == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--demo", action="store_true", help="run the scripted serving walkthrough"
    )
    parser.add_argument("--ticks", type=int, default=14, help="writer epochs to run")
    parser.add_argument("--readers", type=int, default=4, help="concurrent reader threads")
    parser.add_argument("--workers", type=int, default=2, help="maintenance workers")
    parser.add_argument("--k", type=int, default=2, help="propagate every k ticks")
    parser.add_argument("--m", type=int, default=7, help="partial_refresh every m ticks")
    parser.add_argument("--seed", type=int, default=96, help="workload seed")
    args = parser.parse_args(argv)
    if not args.demo:
        parser.print_help()
        print("\nuse --demo to run the serving walkthrough", file=sys.stderr)
        return 2
    return _run_demo(
        ticks=args.ticks,
        readers=args.readers,
        workers=args.workers,
        k=args.k,
        m=args.m,
        seed=args.seed,
        out=sys.stdout,
    )


if __name__ == "__main__":
    raise SystemExit(main())
