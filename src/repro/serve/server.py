"""The online view server: snapshot-isolated reads over background maintenance.

:class:`ViewServer` turns the library into a serving system shaped by the
paper's Section 5.3 argument.  Writers and maintenance serialize on one
write mutex (the :class:`~repro.warehouse.ViewManager` underneath is not
thread-safe); readers never touch it.  Every committed write republishes
an immutable :class:`~repro.serve.snapshots.SnapshotHandle`, and a read
is one volatile attribute load plus a dict lookup against that handle —
so the exclusive lock every refresh-family operation takes on ``MV``
(the paper's downtime) is simply *never on the read path*:

* **Policy 2 online.**  The server schedules the configured
  :class:`~repro.core.policies.MaintenancePolicy` (default
  ``Policy2(k, m)``) itself: :meth:`tick` advances simulated time,
  applies user transactions, and queues the due propagate /
  partial_refresh / refresh actions.  With no worker pool the queue
  drains synchronously (deterministic for tests and benchmarks); with
  :meth:`start_workers` a background pool drains it off the caller's
  thread.
* **Staleness is bounded, measured, and visible.**  The server tracks
  ``mv_reflects`` / ``dt_reflects`` exactly like the simulation driver,
  stamps every published snapshot with them, and samples per-read
  staleness into the metrics registry; under Policy 2 a view is at most
  ``k`` ticks stale at each partial refresh.
* **Durability and degradation compose.**  Pass ``durable_path`` to run
  every mutation through the :class:`~repro.robustness.DurableWarehouse`
  write-ahead journal, and ``governed=True`` to keep the engine
  governor's degradation ladder under the whole stack.
* **Crash containment.**  A maintenance action that dies mid-epoch
  (:class:`~repro.robustness.faults.InjectedCrash`) leaves the database
  rolled back by the storage layer's all-or-nothing install and the
  published snapshot untouched — pinned readers never notice.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.core.policies import MaintenancePolicy, Policy2
from repro.core.transactions import UserTransaction
from repro.errors import PolicyError, UnknownTableError
from repro.serve.snapshots import SnapshotHandle, SnapshotRegistry

__all__ = ["ServeConfig", "ViewServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for a :class:`ViewServer`."""

    #: Policy-2 cadence: propagate every ``k`` ticks, partial refresh
    #: every ``m`` (``0 < k < m``); ignored when ``policy`` is given.
    k: int = 2
    m: int = 7
    policy: MaintenancePolicy | None = None
    #: Execution engine for a fresh database (None = session default).
    exec_mode: str | None = None
    #: Route evaluations through the engine governor's ladder.
    governed: bool = False
    #: When set, all mutations run through the write-ahead journal of a
    #: :class:`~repro.robustness.DurableWarehouse` at this path.
    durable_path: str | None = None

    def resolved_policy(self) -> MaintenancePolicy:
        return self.policy if self.policy is not None else Policy2(k=self.k, m=self.m)


class ViewServer:
    """Serves concurrent readers from pinned snapshots; maintains off-path."""

    def __init__(self, config: ServeConfig | None = None, *, manager=None) -> None:
        self.config = config if config is not None else ServeConfig()
        if manager is None:
            if self.config.durable_path is not None:
                from repro.robustness.durable import DurableWarehouse

                manager = DurableWarehouse(
                    self.config.durable_path,
                    exec_mode=self.config.exec_mode,
                    governed=self.config.governed,
                )
            else:
                from repro.warehouse.manager import ViewManager

                manager = ViewManager(
                    exec_mode=self.config.exec_mode, governed=self.config.governed
                )
        self.manager = manager
        # DurableWarehouse wraps a ViewManager on .manager; plain managers
        # are their own inner manager.  Ledger/counter live on the inner.
        inner = getattr(manager, "manager", manager)
        self.db = inner.db
        self.ledger = inner.ledger
        self.counter = inner.counter
        self.policy = self.config.resolved_policy()
        self.registry = SnapshotRegistry()
        self._write_mutex = threading.RLock()
        self._due: deque[tuple[int, str, str]] = deque()
        self._mv_tables: dict[str, str] = {}
        self._mv_reflects: dict[str, int] = {}
        self._dt_reflects: dict[str, int] = {}
        self.now = 0
        self.reads_served = 0
        self.actions_run = 0
        self._pool = None
        self._current: SnapshotHandle = self.registry.pin(self.db)

    # ------------------------------------------------------------------
    # Catalog (writer path)
    # ------------------------------------------------------------------

    def create_table(self, name: str, attrs: Iterable[str], *, rows: Iterable[Row] = ()) -> None:
        with self._write_mutex:
            self.manager.create_table(name, attrs, rows=rows)
            self._publish()

    def load(self, name: str, rows: Iterable[Row]) -> None:
        with self._write_mutex:
            self.manager.load(name, rows)
            self._publish()

    def define_view(self, name: str, definition, **options) -> None:
        """Define a maintained view (scenario options as on the manager)."""
        with self._write_mutex:
            self.manager.define_view(name, definition, **options)
            self._mv_tables[name] = self.manager.scenario(name).view.mv_table
            self._mv_reflects[name] = self.now
            self._dt_reflects[name] = self.now
            self._publish()

    def views(self) -> tuple[str, ...]:
        return tuple(self._mv_tables)

    # ------------------------------------------------------------------
    # Writes and simulated time (writer path)
    # ------------------------------------------------------------------

    def execute(self, txn: UserTransaction, **options) -> None:
        """Run one user transaction (all views' makesafe extensions) now."""
        with self._write_mutex:
            self.manager.execute(txn, **options)
            self._publish()

    def execute_sql(self, script: str, **options) -> None:
        with self._write_mutex:
            self.manager.execute_sql(script, **options)
            self._publish()

    def tick(self, txns: Iterable[UserTransaction] = ()) -> list[tuple[str, str]]:
        """Advance one simulated time unit: apply ``txns``, queue policy work.

        Returns the queued ``(view, action)`` pairs.  Without a worker
        pool the queue drains synchronously before returning; with one,
        the workers are kicked and drain it in the background.
        """
        queued: list[tuple[str, str]] = []
        with self._write_mutex:
            self.now += 1
            for txn in txns:
                self.manager.execute(txn)
            for name in self._mv_tables:
                scenario = self.manager.scenario(name)
                for action in self.policy.actions_for(self.now, scenario):
                    self._due.append((self.now, name, action))
                    queued.append((name, action))
            self._publish()
        if self._pool is not None:
            self._pool.kick()
        else:
            self.drain_maintenance()
        return queued

    def run(self, horizon: int, schedule=None) -> None:
        """Tick to ``horizon``; ``schedule`` maps tick -> transactions."""
        pending = dict(schedule) if schedule is not None else {}
        for _ in range(horizon):
            self.tick(pending.get(self.now + 1, ()))

    # ------------------------------------------------------------------
    # Maintenance (worker path)
    # ------------------------------------------------------------------

    def pending_maintenance(self) -> int:
        with self._write_mutex:
            return len(self._due)

    def drain_maintenance(self, max_actions: int | None = None) -> list[tuple[str, str]]:
        """Run queued maintenance actions until the queue is empty.

        Each action commits and republishes individually, so readers see
        propagate and refresh results as distinct snapshot versions and
        are never gated on the whole epoch.  An
        :class:`~repro.robustness.faults.InjectedCrash` propagates to the
        caller (the worker thread) with the queue retaining the
        remaining actions and the published snapshot unchanged.
        """
        ran: list[tuple[str, str]] = []
        while max_actions is None or len(ran) < max_actions:
            with self._write_mutex:
                if not self._due:
                    break
                queued_tick, name, action = self._due.popleft()
                try:
                    self._run_action(name, action)
                except BaseException:
                    # Put the failed action back: a restarted worker (or a
                    # recovery pass) retries it; refresh-family operations
                    # are idempotent, which is what makes retry safe.
                    self._due.appendleft((queued_tick, name, action))
                    raise
                self._publish()
            ran.append((name, action))
            if obs.telemetry_enabled():
                obs.metric_inc("maintenance_actions")
                obs.metric_observe("maintenance_queue_lag_ticks", self.now - queued_tick)
        return ran

    def _run_action(self, name: str, action: str) -> None:
        """One maintenance action, with driver-equivalent clock tracking.

        ``propagate`` absorbs the log as of *run* time (not queue time),
        so the residual clocks advance to ``self.now`` — Policy 2's
        residual handling holds across snapshot boundaries because the
        reflects stamps describe what the operation actually absorbed.
        """
        if action == "propagate":
            self.manager.propagate(name)
            self._dt_reflects[name] = self.now
        elif action == "partial_refresh":
            self.manager.partial_refresh(name)
            self._mv_reflects[name] = self._dt_reflects[name]
        elif action == "refresh":
            self.manager.refresh(name)
            self._mv_reflects[name] = self.now
            self._dt_reflects[name] = self.now
        else:
            raise PolicyError(f"unknown maintenance action {action!r}")
        self.actions_run += 1

    def start_workers(self, count: int = 1, *, poll_interval_s: float = 0.005):
        """Attach a background worker pool draining the maintenance queue."""
        from repro.serve.workers import WorkerPool

        if self._pool is not None:
            raise PolicyError("worker pool already started")
        self._pool = WorkerPool(self, count, poll_interval_s=poll_interval_s)
        self._pool.start()
        return self._pool

    def stop_workers(self, *, drain: bool = True) -> None:
        """Stop the pool; optionally drain remaining work synchronously."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        pool.stop()
        if drain and not pool.crashes():
            self.drain_maintenance()

    def wait_idle(self, timeout_s: float = 5.0) -> bool:
        """Block until the maintenance queue is empty (or a worker died)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._pool is not None and self._pool.crashes():
                return False
            if self.pending_maintenance() == 0:
                return True
            time.sleep(0.001)
        return self.pending_maintenance() == 0

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def _publish(self) -> None:
        """Pin a fresh cut and atomically swap it in as the served state."""
        reflects = min(self._mv_reflects.values(), default=self.now)
        handle = self.registry.pin(self.db, tick=self.now, reflects=reflects)
        previous, self._current = self._current, handle
        previous.release()

    @property
    def current(self) -> SnapshotHandle:
        """The currently served snapshot (do not release; use :meth:`pin`)."""
        return self._current

    def pin(self) -> SnapshotHandle:
        """Pin the served snapshot for a multi-read consistent session."""
        while True:
            handle = self._current
            try:
                return self.registry.repin(handle)
            except ValueError:
                # Lost the race with a concurrent republish that released
                # the handle's last pin; the fresh current is pinnable.
                continue

    # ------------------------------------------------------------------
    # Reads (never acquire the write mutex or any exclusive lock)
    # ------------------------------------------------------------------

    def _mv_table(self, name: str) -> str:
        try:
            return self._mv_tables[name]
        except KeyError:
            raise UnknownTableError(f"no such view: {name!r}") from None

    def read(self, name: str) -> Bag:
        """Read a view from the served snapshot (lock-free, maybe stale)."""
        started = time.perf_counter()
        snapshot = self._current
        value = snapshot.table(self._mv_table(name))
        self.reads_served += 1
        if obs.telemetry_enabled():
            obs.metric_inc("reads_served")
            obs.metric_observe(
                "read_latency_s", time.perf_counter() - started, buckets=obs.LATENCY_BUCKETS_S
            )
            obs.metric_observe("read_staleness_ticks", self.now - snapshot.reflects)
            obs.metric_set("snapshots_live", self.registry.live_count())
        return value

    def read_at(self, handle: SnapshotHandle, name: str) -> Bag:
        """Read a view from an explicitly pinned snapshot."""
        return handle.table(self._mv_table(name))

    def read_fresh(self, name: str) -> Bag:
        """The synchronous comparison path: refresh under the lock, then read.

        This is what serving *without* deferred maintenance looks like —
        the reader's own thread takes the exclusive ``MV`` section, so
        reader-observable downtime is nonzero.  E22 benchmarks this arm
        against :meth:`read`.
        """
        with self._write_mutex:
            value = self.manager.query_fresh(name)
            self._mv_reflects[name] = self.now
            self._dt_reflects[name] = self.now
            self._publish()
        self.reads_served += 1
        return value

    async def read_async(self, name: str) -> Bag:
        """Async facade over :meth:`read` for event-loop front ends."""
        return await asyncio.to_thread(self.read, name)

    # ------------------------------------------------------------------
    # SLO introspection
    # ------------------------------------------------------------------

    def staleness_ticks(self, name: str) -> int:
        """How many ticks behind the served snapshot of ``name`` is."""
        self._mv_table(name)
        return self.now - self._mv_reflects[name]

    def reader_lock_sections(self, prefix: str = "reader") -> int:
        """Exclusive sections attributed to reader threads (must stay 0)."""
        return len(self.ledger.sections_for_thread(prefix))

    def stats(self) -> dict:
        return {
            "now": self.now,
            "reads_served": self.reads_served,
            "actions_run": self.actions_run,
            "pending_maintenance": self.pending_maintenance(),
            "staleness_ticks": {name: self.staleness_ticks(name) for name in self._mv_tables},
            "snapshots": self.registry.stats(),
        }
