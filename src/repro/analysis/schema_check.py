"""Schema/type checker over the bag-algebra AST.

The ``Expr`` constructors already reject most ill-typed trees eagerly
(:mod:`repro.algebra.expr` raises :class:`~repro.errors.SchemaError`
from ``__post_init__``).  The checker here complements that in three
ways:

* it produces *all* findings as structured diagnostics instead of
  stopping at the first exception, with the expression **path** of every
  offending node;
* it validates table references against a **catalog** (a
  :class:`~repro.storage.database.Database` or a plain name → schema
  mapping) — unknown tables and schema drift are *not* checked by the
  constructors and today surface as deep ``KeyError`` at evaluation
  time;
* it flags name-level style problems constructors deliberately allow
  (duplicate result-attribute names, operand name mismatches under
  ⊎ / ∸ / min).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Protocol

from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.schema import Schema
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.errors import SchemaError

__all__ = ["Catalog", "check_expr"]


class Catalog(Protocol):
    """Anything that can answer "does table X exist, with what schema"."""

    def has_table(self, name: str) -> bool: ...

    def schema_of(self, name: str) -> Schema: ...


class _MappingCatalog:
    """Adapt a plain ``{name: Schema}`` mapping to the Catalog protocol."""

    def __init__(self, schemas: Mapping[str, Schema]) -> None:
        self._schemas = dict(schemas)

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def schema_of(self, name: str) -> Schema:
        return self._schemas[name]


def _child_roles(expr: Expr) -> tuple[tuple[str, Expr], ...]:
    if isinstance(expr, (UnionAll, Monus, Product)):
        return (("left", expr.left), ("right", expr.right))
    children = expr.children()
    if len(children) == 1:
        return (("child", children[0]),)
    return tuple((f"child{i}", child) for i, child in enumerate(children))


def check_expr(
    expr: Expr,
    catalog: Catalog | Mapping[str, Schema] | None = None,
    *,
    root: str = "Q",
    position: int | None = None,
) -> AnalysisReport:
    """Check ``expr`` and every subexpression, returning all findings.

    ``catalog`` enables table-existence and schema-drift checks; pass the
    database the expression will be evaluated against.  ``position`` is
    attached to every diagnostic when the expression came from a known
    span of SQL source.
    """
    if catalog is not None and not hasattr(catalog, "has_table"):
        catalog = _MappingCatalog(catalog)
    report = AnalysisReport()
    _check_node(expr, catalog, root, position, report)
    _check_root_schema(expr, root, position, report)
    return report


def _check_root_schema(expr: Expr, path: str, position: int | None, report: AnalysisReport) -> None:
    """Duplicate names in the *result* schema make the output ambiguous."""
    try:
        schema = expr.schema()
    except SchemaError:
        return  # already reported by the node walk
    seen: set[str] = set()
    duplicates: list[str] = []
    for attr in schema:
        if attr in seen and attr not in duplicates:
            duplicates.append(attr)
        seen.add(attr)
    if duplicates:
        report.add(
            "RVM106",
            Severity.WARNING,
            f"result schema has duplicate attribute names {duplicates}; "
            "downstream name resolution will be ambiguous (project or rename first)",
            path=path,
            position=position,
        )


def _check_node(
    expr: Expr,
    catalog: Catalog | None,
    path: str,
    position: int | None,
    report: AnalysisReport,
) -> None:
    if isinstance(expr, TableRef):
        _check_table_ref(expr, catalog, path, position, report)
    elif isinstance(expr, Select):
        _check_attribute_refs(expr.predicate.attributes(), expr.child, f"sigma[{expr.predicate}]", path, position, report)
    elif isinstance(expr, MapProject):
        for term in expr.terms:
            _check_attribute_refs(term.attributes(), expr.child, f"map[{term}]", path, position, report)
    elif isinstance(expr, Project):
        _check_project(expr, path, position, report)
    elif isinstance(expr, (UnionAll, Monus)):
        _check_union_like(expr, path, position, report)
    elif isinstance(expr, (Literal, DupElim, Product)):
        pass  # no node-local conditions beyond what constructors enforce
    for role, child in _child_roles(expr):
        _check_node(child, catalog, f"{path}.{role}", position, report)


def _check_table_ref(
    expr: TableRef,
    catalog: Catalog | None,
    path: str,
    position: int | None,
    report: AnalysisReport,
) -> None:
    if catalog is None:
        return
    if not catalog.has_table(expr.name):
        report.add(
            "RVM107",
            Severity.ERROR,
            f"table {expr.name!r} does not exist in the catalog",
            path=path,
            position=position,
        )
        return
    actual = catalog.schema_of(expr.name)
    if actual != expr.table_schema:
        report.add(
            "RVM108",
            Severity.ERROR,
            f"reference to {expr.name!r} carries schema {list(expr.table_schema)} "
            f"but the catalog has {list(actual)} (stale expression?)",
            path=path,
            position=position,
        )


def _check_attribute_refs(
    attrs,
    child: Expr,
    what: str,
    path: str,
    position: int | None,
    report: AnalysisReport,
) -> None:
    try:
        child_schema = child.schema()
    except SchemaError:
        return  # the child's own walk reports the cause
    for name in attrs:
        if name not in child_schema:
            report.add(
                "RVM101",
                Severity.ERROR,
                f"{what} references unknown attribute {name!r}; "
                f"input schema has {list(child_schema)}",
                path=path,
                position=position,
            )
            continue
        try:
            child_schema.index_of(name)
        except SchemaError:
            report.add(
                "RVM102",
                Severity.ERROR,
                f"{what} references ambiguous attribute {name!r} "
                f"in schema {list(child_schema)}",
                path=path,
                position=position,
            )


def _check_project(expr: Project, path: str, position: int | None, report: AnalysisReport) -> None:
    try:
        child_schema = expr.child.schema()
    except SchemaError:
        return
    for item in expr.attrs:
        if isinstance(item, int):
            if not 0 <= item < child_schema.arity:
                report.add(
                    "RVM105",
                    Severity.ERROR,
                    f"projection position {item} out of range for arity {child_schema.arity}",
                    path=path,
                    position=position,
                )
        else:
            _check_attribute_refs((item,), expr.child, "pi", path, position, report)


def _check_union_like(expr: UnionAll | Monus, path: str, position: int | None, report: AnalysisReport) -> None:
    op = "union_all" if isinstance(expr, UnionAll) else "monus"
    try:
        left_schema = expr.left.schema()
        right_schema = expr.right.schema()
    except SchemaError:
        return
    if left_schema.arity != right_schema.arity:
        report.add(
            "RVM103",
            Severity.ERROR,
            f"{op}: operand arities differ ({left_schema.arity} vs {right_schema.arity})",
            path=path,
            position=position,
        )
        return
    if left_schema.attributes != right_schema.attributes:
        report.add(
            "RVM104",
            Severity.INFO,
            f"{op}: operand attribute names differ "
            f"({list(left_schema)} vs {list(right_schema)}); "
            "positional combination is used (rename to silence)",
            path=path,
            position=position,
        )
