"""Static analysis for bag-algebra expressions and maintenance plans.

Three pillars (see ``docs/analysis.md``):

* **schema checking** (:mod:`repro.analysis.schema_check`) — structured
  ``RVM1xx`` diagnostics with expression paths and SQL positions;
* **property derivation** (:mod:`repro.analysis.properties`) —
  duplicate-freeness, emptiness, per-table linearity, and the
  weak-minimality classifier behind the Lemma 2 simplification
  :math:`Q \\min \\mathrm{Del}(\\widehat{L},Q) \\to
  \\mathrm{Del}(\\widehat{L},Q)`;
* **state-bug detection** (:mod:`repro.analysis.statebug`) —
  ``RVM3xx`` findings for refresh machinery that mixes pre- and
  post-update state (Section 1.2);
* **concurrency effects** (:mod:`repro.analysis.effects` +
  :mod:`repro.analysis.concurrency_check`) — inferred read/write/lock
  footprints of the maintenance protocols checked against the Section
  5.3 lock discipline (``RVM6xx``), with a dynamic lockset sanitizer
  counterpart in :mod:`repro.obs.sanitizer`.

The :mod:`repro.analysis.lint` driver ties them together behind
``python -m repro lint``.
"""

from repro.analysis.concurrency_check import (
    check_journal_coverage,
    check_scenario,
    check_schedule,
    check_stack,
    check_tasks,
    demo_stack_report,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    AnalysisWarning,
    Diagnostic,
    Severity,
)
from repro.analysis.properties import (
    Minimality,
    always_empty,
    classify_substitution,
    degrees,
    duplicate_free,
    empty_when_empty,
    is_linear,
    redundant_min_guard,
    subsumed_by,
)
from repro.analysis.effects import EffectSet, OpEffects, Step, plan_effects, read_footprint
from repro.analysis.schema_check import check_expr
from repro.analysis.statebug import audit_plan, audit_refresh_pair, check_log_polarity

__all__ = [
    "EffectSet",
    "OpEffects",
    "Step",
    "plan_effects",
    "read_footprint",
    "check_journal_coverage",
    "check_scenario",
    "check_schedule",
    "check_stack",
    "check_tasks",
    "demo_stack_report",
    "CODES",
    "AnalysisReport",
    "AnalysisWarning",
    "Diagnostic",
    "Severity",
    "Minimality",
    "always_empty",
    "classify_substitution",
    "degrees",
    "duplicate_free",
    "empty_when_empty",
    "is_linear",
    "redundant_min_guard",
    "subsumed_by",
    "check_expr",
    "audit_plan",
    "audit_refresh_pair",
    "check_log_polarity",
]
