"""Seeded concurrency mutations: the analyzer's regression harness.

A static analyzer is only as credible as the bugs it provably catches.
This module seeds six concrete faults into the maintenance stack — each
one a realistic way the Section 5.3 lock discipline or its supporting
machinery can rot — and runs the concurrency suite
(:mod:`repro.analysis.concurrency_check` + the dynamic lockset
sanitizer) against the canonical demo stack under each fault:

============================ ==========================================
mutation                     caught by
============================ ==========================================
``dropped_lock``             RVM601 + RVM602 (static) and the lockset
                             sanitizer (dynamic)
``swapped_batch_order``      RVM603 (static schedule check)
``narrowed_write_set``       RVM604 (declared vs. inferred footprints)
``stale_polarity``           RVM301 + companion RVM601 (static)
``omitted_journal_table``    RVM605 (static coverage + dynamic
                             version-stamp diff)
``overlapping_view``         RVM501 (group-membership lint)
============================ ==========================================

Each mutation is a context manager that monkeypatches exactly the seam
the real code runs through (``Scenario._refresh_lock``,
``GroupScheduler.batches``, ``Log.substitution``,
``intent_payload_tables``, …) — so a caught mutation demonstrates the
checks see the *executed* protocol, not a parallel model.  The clean
stack (:func:`run_clean`) must produce zero findings; the CI lint gate
and :mod:`tests.analysis.test_mutations` pin both directions.
"""

from __future__ import annotations

import contextlib
import warnings
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.analysis.diagnostics import AnalysisReport, Severity

__all__ = ["MUTATIONS", "apply_mutation", "run_mutation", "run_clean"]

_DEMO_SQL = "CREATE VIEW {name} (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b"


# ----------------------------------------------------------------------
# The mutations (context managers patching one seam each)
# ----------------------------------------------------------------------


@contextmanager
def _dropped_lock() -> Iterator[None]:
    """Refresh runs without the view's exclusive lock (both seams)."""
    from repro.core.scenarios import Scenario

    orig_lock = Scenario._refresh_lock
    orig_resources = Scenario._refresh_lock_resources
    Scenario._refresh_lock = lambda self, label: contextlib.nullcontext()
    Scenario._refresh_lock_resources = lambda self: frozenset()
    try:
        yield
    finally:
        Scenario._refresh_lock = orig_lock
        Scenario._refresh_lock_resources = orig_resources


@contextmanager
def _swapped_batch_order() -> Iterator[None]:
    """The scheduler emits its conflict-ordered batches reversed."""
    from repro.exec.group import GroupScheduler

    orig = GroupScheduler.batches

    def reversed_batches(self, tasks):
        return list(reversed(orig(self, tasks)))

    GroupScheduler.batches = reversed_batches
    try:
        yield
    finally:
        GroupScheduler.batches = orig


@contextmanager
def _narrowed_write_set() -> Iterator[None]:
    """A group task declares its log writes but forgets the MV table."""
    from repro.core.scenarios import BaseLogScenario

    orig = BaseLogScenario._group_writes
    BaseLogScenario._group_writes = lambda self: frozenset(self.log.table_names())
    try:
        yield
    finally:
        BaseLogScenario._group_writes = orig


@contextmanager
def _stale_polarity() -> Iterator[None]:
    """The log substitution reads with pre-update polarity (Section 1.2)."""
    from repro.core.logs import Log
    from repro.core.substitution import FactoredSubstitution

    orig = Log.substitution

    def swapped(self):
        eta = orig(self)
        return FactoredSubstitution(
            {name: (eta.insert_of(name), eta.delete_of(name)) for name in eta},
            {name: eta.schema_of(name) for name in eta},
        )

    Log.substitution = swapped
    try:
        yield
    finally:
        Log.substitution = orig


@contextmanager
def _omitted_journal_table() -> Iterator[None]:
    """Journal intents stop digesting the reader-visible MV tables."""
    import repro.robustness.durable as durable
    from repro.core.naming import is_mv_table

    orig = durable.intent_payload_tables
    durable.intent_payload_tables = lambda db: frozenset(
        name for name in db.table_names() if not is_mv_table(name)
    )
    try:
        yield
    finally:
        durable.intent_payload_tables = orig


@contextmanager
def _overlapping_view() -> Iterator[None]:
    """No patch: the runner registers an overlapping non-group view."""
    yield


MUTATIONS: dict[str, Callable[[], contextlib.AbstractContextManager]] = {
    "dropped_lock": _dropped_lock,
    "swapped_batch_order": _swapped_batch_order,
    "narrowed_write_set": _narrowed_write_set,
    "stale_polarity": _stale_polarity,
    "omitted_journal_table": _omitted_journal_table,
    "overlapping_view": _overlapping_view,
}


def apply_mutation(name: str) -> contextlib.AbstractContextManager:
    """The named mutation as a context manager (raises on unknown names)."""
    try:
        factory = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown concurrency mutation {name!r}; pick one of {sorted(MUTATIONS)}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# Runners: build the demo stack under a mutation, collect findings
# ----------------------------------------------------------------------


def _demo_scenario(exec_mode: str):
    from repro.core.scenarios import BaseLogScenario
    from repro.sqlfront import sql_to_view
    from repro.storage.database import Database

    db = Database(exec_mode=exec_mode)
    db.create_table("R", ["a", "b"], rows=[(1, 1), (1, 2), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20)])
    view = sql_to_view(_DEMO_SQL.format(name="V"), db)
    scenario = BaseLogScenario(db, view)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        scenario.install()
    return scenario


def _sanitized_cycle(scenario) -> AnalysisReport:
    """One transaction + refresh under the lockset sanitizer."""
    from repro import obs
    from repro.core.transactions import UserTransaction

    with obs.observed(sanitizer=True) as stack:
        scenario.execute(UserTransaction(scenario.db).insert("R", [(5, 1)]))
        scenario.refresh()
    return stack.sanitizer.report()


def _run_dropped_lock(exec_mode: str) -> AnalysisReport:
    from repro.analysis.concurrency_check import check_scenario

    scenario = _demo_scenario(exec_mode)
    report = check_scenario(scenario)
    report.extend(_sanitized_cycle(scenario))
    return report


def _run_stale_polarity(exec_mode: str) -> AnalysisReport:
    from repro.analysis.concurrency_check import check_scenario

    return check_scenario(_demo_scenario(exec_mode))


def _conflict_tasks():
    """A dependent refresh pair: downstream reads what upstream writes.

    Models a stacked materialization (a view maintained over another
    view's MV table) — the case conflict batching exists for.
    """
    from repro.algebra.bag import Bag
    from repro.exec.group import GroupTask

    empty = (Bag.empty(), Bag.empty())
    upstream = GroupTask(
        name="upstream",
        order=0,
        key=lambda: None,
        compute=lambda counter: empty,
        apply=lambda deltas: None,
        reads=frozenset({"R"}),
        writes=frozenset({"__mv__upstream"}),
    )
    downstream = GroupTask(
        name="downstream",
        order=1,
        key=lambda: None,
        compute=lambda counter: empty,
        apply=lambda deltas: None,
        reads=frozenset({"__mv__upstream"}),
        writes=frozenset({"__mv__downstream"}),
    )
    return [upstream, downstream]


def _run_swapped_batch_order(exec_mode: str) -> AnalysisReport:
    from repro.analysis.concurrency_check import check_schedule

    return check_schedule(_conflict_tasks())


def _run_narrowed_write_set(exec_mode: str) -> AnalysisReport:
    from repro.analysis.concurrency_check import check_tasks

    scenario = _demo_scenario(exec_mode)
    return check_tasks([scenario.group_refresh_task(order=0)])


def _run_omitted_journal_table(exec_mode: str) -> AnalysisReport:
    import tempfile
    from pathlib import Path

    from repro import obs
    from repro.analysis.concurrency_check import check_journal_coverage
    from repro.robustness.durable import DurableWarehouse

    scenario = _demo_scenario(exec_mode)
    report = check_journal_coverage(scenario.db, scenario.maintenance_protocol())
    with obs.observed(sanitizer=True) as stack:
        with tempfile.TemporaryDirectory() as tmp:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                warehouse = DurableWarehouse(Path(tmp) / "wh.json", exec_mode=exec_mode)
                warehouse.create_table("R", ["a", "b"], rows=[(1, 1)])
                warehouse.create_table("S", ["b", "c"], rows=[(1, 10)])
                warehouse.define_view("V", _DEMO_SQL.format(name="V"), scenario="base_log")
                warehouse.transaction().insert("R", [(2, 1)]).run()
                warehouse.refresh("V")
                warehouse.close()
    return report.extend(stack.sanitizer.report())


def _run_overlapping_view(exec_mode: str) -> AnalysisReport:
    from repro.warehouse.manager import ViewManager

    manager = ViewManager(exec_mode=exec_mode)
    manager.create_table("R", ["a", "b"], rows=[(1, 1)])
    manager.create_table("S", ["b", "c"], rows=[(1, 10)])
    report = AnalysisReport()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        manager.define_view("grouped", _DEMO_SQL.format(name="grouped"), scenario="shared_log")
        manager.define_view("solo", _DEMO_SQL.format(name="solo"), scenario="base_log")
    for entry in caught:
        message = str(entry.message)
        if message.startswith("RVM501"):
            report.add("RVM501", Severity.WARNING, message, path="solo")
    return report


_RUNNERS: dict[str, Callable[[str], AnalysisReport]] = {
    "dropped_lock": _run_dropped_lock,
    "swapped_batch_order": _run_swapped_batch_order,
    "narrowed_write_set": _run_narrowed_write_set,
    "stale_polarity": _run_stale_polarity,
    "omitted_journal_table": _run_omitted_journal_table,
    "overlapping_view": _run_overlapping_view,
}


def run_mutation(name: str, *, exec_mode: str = "compiled") -> AnalysisReport:
    """Seed one mutation and run its static + dynamic probes.

    Returns the combined report; a healthy analyzer returns a non-empty
    report for every registered mutation, and :func:`run_clean` (same
    probes, no mutation) returns an empty one.
    """
    runner = _RUNNERS[name] if name in _RUNNERS else None
    if runner is None:
        raise ValueError(
            f"unknown concurrency mutation {name!r}; pick one of {sorted(MUTATIONS)}"
        )
    with apply_mutation(name):
        return runner(exec_mode)


def run_clean(*, exec_mode: str = "compiled") -> AnalysisReport:
    """Run every mutation's probes with *no* mutation seeded.

    The union of all probe paths over the healthy stack — the
    zero-findings baseline the mutation results are judged against.
    """
    report = AnalysisReport()
    for name, runner in _RUNNERS.items():
        if name == "overlapping_view":
            # The probe itself registers the overlapping view; its
            # healthy counterpart is two disjoint registrations, which
            # every other runner's stack already covers.
            continue
        report.extend(runner(exec_mode))
    return report
