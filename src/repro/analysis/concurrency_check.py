"""Concurrency checks: the Section 5.3 lock discipline, statically.

The paper's downtime analysis (Section 5.3) rests on a lock discipline
it never states as a checkable rule: reader-visible ``MV`` state may
only be read or written by a refresh-family operation while that view's
exclusive lock is held; ``propagate`` stays lock-free precisely because
it touches only maintenance-private log and differential tables.  This
module checks that discipline — and three adjacent safety properties —
against the *inferred* effects of :mod:`repro.analysis.effects`, not
against what the code claims about itself:

* **RVM601** — a refresh-family step reads an ``MV`` table outside any
  lock section (a reader could observe a half-applied state).
* **RVM602** — a write to an ``MV`` table is not covered by an
  exclusive lock.
* **RVM603** — a group schedule orders conflicting refreshes against
  registration order, or co-batches them: the lock sections of the two
  views would interleave (a lock-order cycle in the two-phase reading
  of the batch sequence).
* **RVM604** — a scheduler task *declares* a narrower read/write set
  than its inferred footprint: conflict batching would under-serialize.
  Coverage is asymmetric on purpose — a declared **write** covers
  inferred reads of the same table, because :func:`~repro.exec.group._conflicts`
  serializes writer-vs-anything; only a table in *neither* declared set
  is invisible to the scheduler.
* **RVM605** — a maintenance operation writes a table the journal's
  intent payload does not digest, so crash recovery could neither
  verify nor roll that table back.

All checks consume the same objects the runtime uses (scenario
protocols built from real delta expressions, live
:class:`~repro.exec.group.GroupTask` instances, the journal's actual
payload-coverage seam), so a seeded fault in the runtime shows up here
without any parallel model to keep in sync.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.effects import REFRESH_OPS, OpEffects
from repro.analysis.statebug import check_log_polarity

__all__ = [
    "check_scenario",
    "check_tasks",
    "check_schedule",
    "check_journal_coverage",
    "check_stack",
    "demo_stack_report",
]


# ----------------------------------------------------------------------
# RVM601 / RVM602: lock coverage of refresh-family effects
# ----------------------------------------------------------------------


def check_protocol(ops: Iterable[OpEffects]) -> AnalysisReport:
    """Check a maintenance protocol's refresh-family steps for lock coverage."""
    report = AnalysisReport()
    for op in ops:
        if op.op not in REFRESH_OPS:
            # makesafe runs inside the user transaction's atomicity and
            # propagate is lock-free by design (no MV effects) — but a
            # propagate that *does* touch MV state has lost that excuse.
            if op.op == "propagate":
                for step in op.steps:
                    _check_step_locks(report, op, step)
            continue
        for step in op.steps:
            _check_step_locks(report, op, step)
    return report


def _check_step_locks(report: AnalysisReport, op: OpEffects, step) -> None:
    location = f"{op.view}.{op.op}.{step.name}"
    for table in sorted(step.effects.mv_reads() - step.locks):
        report.add(
            "RVM601",
            Severity.ERROR,
            f"{op.describe()} reads reader-visible table {table!r} in step "
            f"{step.name!r} outside any lock section; Section 5.3 requires "
            "the view's exclusive lock around MV access during refresh",
            path=location,
        )
    for table in sorted(step.effects.mv_writes() - step.locks):
        report.add(
            "RVM602",
            Severity.ERROR,
            f"{op.describe()} writes reader-visible table {table!r} in step "
            f"{step.name!r} without holding its exclusive lock; a concurrent "
            "reader could observe a half-applied refresh",
            path=location,
        )


def check_scenario(scenario) -> AnalysisReport:
    """All concurrency checks that apply to one installed scenario.

    Lock coverage of the scenario's inferred protocol (RVM601/RVM602),
    plus the Lemma 1 polarity cross-check on its log substitution: a
    stale-polarity read (RVM301) makes the locked apply install deltas
    computed against the pre-update image, which the lock never
    protected — reported as a companion RVM601.
    """
    report = check_protocol(scenario.maintenance_protocol())
    log = getattr(scenario, "log", None)
    if log is not None:
        polarity = check_log_polarity(log.substitution(), log)
        report.extend(polarity)
        if polarity.errors:
            report.add(
                "RVM601",
                Severity.ERROR,
                f"refresh of view {scenario.view.name!r} derives its MV patch "
                "from a stale-polarity log read: the exclusive section applies "
                "deltas computed against a pre-update image the lock never "
                "covered",
                path=f"{scenario.view.name}.refresh",
            )
    return report


# ----------------------------------------------------------------------
# RVM604: declared vs. inferred group-task footprints
# ----------------------------------------------------------------------


def check_tasks(tasks: Iterable) -> AnalysisReport:
    """Check each group task's declared read/write sets against inference."""
    report = AnalysisReport()
    for task in tasks:
        declared_writes = task.writes
        declared_cover = task.reads | task.writes
        if task.inferred_writes is not None:
            missing = sorted(task.inferred_writes - declared_writes)
            if missing:
                report.add(
                    "RVM604",
                    Severity.ERROR,
                    f"group task {task.name!r} writes {missing} per its "
                    "inferred footprint but does not declare them; conflict "
                    "batching would let another task read or write these "
                    "tables concurrently",
                    path=task.name,
                )
        if task.inferred_reads is not None:
            missing = sorted(task.inferred_reads - declared_cover)
            if missing:
                report.add(
                    "RVM604",
                    Severity.ERROR,
                    f"group task {task.name!r} reads {missing} per its "
                    "inferred footprint but declares them in neither its read "
                    "nor its write set; a same-batch writer would not be "
                    "serialized against it",
                    path=task.name,
                )
    return report


# ----------------------------------------------------------------------
# RVM603: schedule/lock-order consistency
# ----------------------------------------------------------------------


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """First cycle in a digraph, as a node path ``[a, b, ..., a]``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    path: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GREY
        path.append(node)
        for succ in sorted(edges.get(node, ())):
            if color.get(succ, WHITE) == GREY:
                return path[path.index(succ):] + [succ]
            if color.get(succ, WHITE) == WHITE:
                found = visit(succ)
                if found:
                    return found
        path.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return None


def check_schedule(tasks: Sequence, *, batches: Sequence[Sequence] | None = None) -> AnalysisReport:
    """Check a group schedule for conflicting co-batched or mis-ordered tasks.

    The batch sequence is a two-phase schedule: every task's lock
    section must come after those of all earlier conflicting tasks.
    Two violations are possible — a batch containing a conflicting pair
    (their apply sections interleave inside one barrier), and a batch
    order that contradicts registration order for a conflicting pair
    (a lock-order cycle between the schedule edge and the registration
    edge).  Sequential applies make registration order the serialization
    oracle, so both are schedule-construction bugs, not data races.
    """
    from repro.exec.group import GroupScheduler, _conflicts

    report = AnalysisReport()
    tasks = list(tasks)
    if batches is None:
        batches = GroupScheduler().batches(tasks)
    batch_of: dict[str, int] = {}
    for index, batch in enumerate(batches):
        for task in batch:
            batch_of[task.name] = index

    for index, batch in enumerate(batches):
        ordered = list(batch)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1:]:
                if _conflicts(left, right):
                    shared = sorted(
                        (left.writes & (right.writes | right.reads))
                        | (right.writes & left.reads)
                    )
                    report.add(
                        "RVM603",
                        Severity.ERROR,
                        f"tasks {left.name!r} and {right.name!r} conflict on "
                        f"{shared} but share batch {index}; their lock "
                        "sections would interleave within one barrier",
                        path=f"batch[{index}]",
                    )

    edges: dict[str, set[str]] = {task.name: set() for task in tasks}
    for i, left in enumerate(tasks):
        for right in tasks[i + 1:]:
            if not _conflicts(left, right):
                continue
            first, second = (left, right) if left.order <= right.order else (right, left)
            edges[first.name].add(second.name)
            left_batch = batch_of.get(left.name)
            right_batch = batch_of.get(right.name)
            if left_batch is None or right_batch is None or left_batch == right_batch:
                continue
            if left_batch < right_batch:
                edges[left.name].add(right.name)
            else:
                edges[right.name].add(left.name)
    cycle = _find_cycle(edges)
    if cycle:
        report.add(
            "RVM603",
            Severity.ERROR,
            "schedule orders conflicting refreshes against registration "
            f"order, closing a lock-order cycle: {' -> '.join(cycle)}",
            path="schedule",
        )
    return report


# ----------------------------------------------------------------------
# RVM605: journal intent payload coverage
# ----------------------------------------------------------------------


def check_journal_coverage(
    db, ops: Iterable[OpEffects], *, payload_tables: frozenset[str] | None = None
) -> AnalysisReport:
    """Check that every op's written tables are digested by the journal.

    ``payload_tables`` defaults to the live payload seam
    (:func:`repro.robustness.durable.intent_payload_tables`), so the
    static picture tracks exactly what recovery will see.
    """
    report = AnalysisReport()
    if payload_tables is None:
        from repro.robustness.durable import intent_payload_tables

        payload_tables = intent_payload_tables(db)
    for op in ops:
        missing = sorted(op.writes - payload_tables)
        if missing:
            report.add(
                "RVM605",
                Severity.ERROR,
                f"{op.describe()} writes {missing} but the journal intent "
                "payload does not digest them; crash recovery could neither "
                "verify nor roll those tables back",
                path=f"{op.view}.{op.op}",
            )
    return report


# ----------------------------------------------------------------------
# Whole-stack entry points
# ----------------------------------------------------------------------


def check_stack(
    scenarios: Sequence = (),
    *,
    tasks: Sequence = (),
    db=None,
    journal: bool = True,
) -> AnalysisReport:
    """Run every concurrency check over a set of scenarios and group tasks."""
    report = AnalysisReport()
    for scenario in scenarios:
        report.extend(check_scenario(scenario))
    if tasks:
        tasks = list(tasks)
        report.extend(check_tasks(tasks))
        report.extend(check_schedule(tasks))
    if journal and db is not None and scenarios:
        ops = [op for scenario in scenarios for op in scenario.maintenance_protocol()]
        report.extend(check_journal_coverage(db, ops))
    return report


def demo_stack_report(*, exec_mode: str = "compiled") -> AnalysisReport:
    """Lint a canonical in-memory maintenance stack (used by ``repro lint``).

    Installs all four Figure 3 scenarios plus a two-view group over a
    small join schema and runs the full concurrency suite — with no
    seeded mutation this reports zero RVM6xx findings.
    """
    from repro.core.scenarios import (
        BaseLogScenario,
        CombinedScenario,
        DiffTableScenario,
        ImmediateScenario,
    )
    from repro.sqlfront import sql_to_view
    from repro.storage.database import Database

    db = Database(exec_mode=exec_mode)
    db.create_table("R", ["a", "b"], rows=[(1, 1), (1, 2), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20), (2, 20)])

    def view(name: str) -> object:
        return sql_to_view(
            f"CREATE VIEW {name} (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b",
            db,
        )

    scenarios = [
        ImmediateScenario(db, view("v_im")),
        BaseLogScenario(db, view("v_bl")),
        DiffTableScenario(db, view("v_dt")),
        CombinedScenario(db, view("v_c")),
    ]
    for scenario in scenarios:
        scenario.install()
    tasks = [
        scenario.group_refresh_task(order=order)
        for order, scenario in enumerate(s for s in scenarios if hasattr(s, "group_refresh_task"))
    ]
    return check_stack(scenarios, tasks=tasks, db=db)
