"""Structured diagnostics for the bag-algebra static analyzer.

Every finding the analyzer produces is a :class:`Diagnostic` carrying a
stable ``RVM###`` code, a severity, a human-readable message, the *path*
of the offending node inside the analyzed expression (``Q.left.child``
style), and — when the expression came from the SQL front end — the
character offset into the source text.

Code ranges:

* ``RVM0xx`` — front-end (parse) problems surfaced through the linter;
* ``RVM1xx`` — schema/typing problems (Section 2.1 well-formedness);
* ``RVM2xx`` — derived-property and minimality findings (Lemmas 2–4);
* ``RVM3xx`` — state-bug findings (Section 1.2 / Lemma 1 duality);
* ``RVM4xx`` — robustness/durability findings (crash safety of the
  maintenance state; see :mod:`repro.robustness`);
* ``RVM5xx`` — group-refresh configuration findings;
* ``RVM6xx`` — concurrency/effect findings (Section 5.3 lock discipline;
  see :mod:`repro.analysis.concurrency_check`);
* ``RVM7xx`` — partitioned-maintenance findings (pruning fallbacks and
  partition-layout drift; see :mod:`repro.analysis.partitioning`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "AnalysisWarning",
    "CODES",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


#: Registry of every diagnostic code the analyzer can emit.
CODES: dict[str, str] = {
    "RVM001": "SQL statement does not parse",
    "RVM002": "statement kind not allowed here",
    "RVM101": "unknown attribute reference",
    "RVM102": "ambiguous attribute reference",
    "RVM103": "union/monus/min operands have different arities",
    "RVM104": "union/monus/min operands have different attribute names",
    "RVM105": "projection position out of range",
    "RVM106": "duplicate attribute names in result schema",
    "RVM107": "unknown table reference",
    "RVM108": "table reference schema disagrees with catalog",
    "RVM109": "malformed expression node",
    "RVM201": "substitution not provably weakly minimal; min-guard retained",
    "RVM202": "min-guard provably redundant; simplified per Lemma 2",
    "RVM203": "subexpression provably empty",
    "RVM204": "derived properties",
    "RVM301": "state bug: log substitution has pre-update polarity",
    "RVM302": "state bug: refresh pair disagrees with PAST-state oracle",
    "RVM401": "scenario installed on persistent database without journaling",
    "RVM501": "view overlaps a refresh group but is registered outside it",
    "RVM601": "table read during refresh outside any lock section",
    "RVM602": "write effect not covered by exclusive lock",
    "RVM603": "potential lock-order cycle across group batches",
    "RVM604": "scheduler task declares narrower read/write set than its inferred footprint",
    "RVM605": "journal intent payload omits a written table",
    "RVM701": "partition-key drift: maintenance plan falls back to whole-table scans",
    "RVM702": "same-domain tables have drifted partition layouts (not co-partitioned)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    #: Dotted path of the offending node inside the analyzed expression
    #: (root is ``Q``), or a symbolic location such as a table name.
    path: str | None = None
    #: Character offset into the originating SQL source, when known.
    position: int | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        where = []
        if self.path:
            where.append(f"at {self.path}")
        if self.position is not None:
            where.append(f"offset {self.position}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"{self.code} {self.severity.label()}{location}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form (``repro lint --json``, CI gates)."""
        return {
            "code": self.code,
            "severity": self.severity.label(),
            "message": self.message,
            "path": self.path,
            "position": self.position,
        }

    def __str__(self) -> str:
        return self.format()


class AnalysisWarning(UserWarning):
    """Category used when install-time lint runs in warn-by-default mode."""


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics with convenience accessors.

    Identical ``(code, path, message)`` findings are reported once per
    report: re-traversals of shared subtrees (plan caches, repeated
    property queries) collapse onto the first occurrence instead of
    repeating it per visit.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def _seen(self, diagnostic: Diagnostic) -> bool:
        key = (diagnostic.code, diagnostic.path, diagnostic.message)
        return any((d.code, d.path, d.message) == key for d in self.diagnostics)

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        *,
        path: str | None = None,
        position: int | None = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, severity, message, path=path, position=position)
        if not self._seen(diagnostic):
            self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: AnalysisReport) -> AnalysisReport:
        for diagnostic in other.diagnostics:
            if not self._seen(diagnostic):
                self.diagnostics.append(diagnostic)
        return self

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    def ok(self) -> bool:
        """True when the report carries no errors and no warnings."""
        return not self.errors and not self.warnings

    def raise_if_failed(self, *, context: str = "analysis") -> None:
        """Raise :class:`~repro.errors.AnalysisError` on errors/warnings."""
        flagged = self.errors + self.warnings
        if flagged:
            summary = "; ".join(d.format() for d in flagged)
            raise AnalysisError(f"{context} failed: {summary}", diagnostics=flagged)

    def format(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.format() for d in self.diagnostics)

    def to_dict(self) -> dict:
        """JSON-ready form: diagnostics plus severity tallies."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
