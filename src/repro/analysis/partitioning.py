"""Partition pruning for maintenance plans (RVM7xx).

Given the partition layout of the base tables
(:class:`~repro.storage.partition.PartitionSpec`) and the maintenance
logs' affected-key sets, this module rewrites a delta expression so
that every reference to a partitioned base table whose partition-key
column is *bounded* by the pending delta is replaced by a restricted
literal — the rows of the affected partitions only.  The maintenance
epoch then touches work proportional to the delta, not the database.

The analysis is static and conservative, the same stance as the
property engine (:mod:`repro.analysis.properties`):

* a position is **bounded** when every value it can take lies in the
  affected-key set of some partition domain.  The key columns of the
  maintenance-log leaves are bounded by construction (the log *is* the
  delta); equality conjuncts of an enclosing selection spread
  boundedness across their equivalence class, positionally remapped
  through projections and products;
* a reference to partitioned table ``R`` whose key column feeds a
  bounded position may be replaced by :math:`\\sigma_{key \\in K}(R)`.
  The substitution is *per occurrence*; every operator on the path
  (σ, Π positional, map over attributes, ε, ⊎ both sides, ∸ left
  side, ×) preserves row-level values, so rows dropped by the
  restriction could never have survived the bounding equality above;
* any occurrence the rewrite cannot restrict leaves the plan on the
  whole-table **fallback** path — reported, never guessed at.

The same pass computes **chunk safety**: whether evaluating the delta
per affected-key chunk (logs filtered to the chunk) and summing the
per-chunk results reproduces the whole delta, which is what lets the
group scheduler refresh independent partitions of one view in
parallel.  The criterion is a degree computation: log leaves are
linear (degree 1), base tables constant (degree 0); linear combines
additively through ⊎, bilinear products of two delta terms are safe
only under a selection equating their partition keys, and the
non-linear operators (∸, ε) are chunk-local only while a key-carrying
column survives to witness that both operands chunk identically.

Diagnostics:

* **RVM701** — a maintenance plan for a view over partitioned tables
  falls back to whole-table scans (partition-key drift: the view's
  predicates/joins do not bound the declared key);
* **RVM702** — tables declared in the same partition domain have
  drifted layouts (scheme/parts/bounds differ), so co-partitioned
  per-partition maintenance is unsound for them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, _conjuncts
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import Attr, Comparison
from repro.errors import SchemaError

__all__ = [
    "PartitionPlan",
    "RewriteResult",
    "analyze_deltas",
    "key_positions",
    "prune_expr",
    "partition_lint",
]

# Chunk-safety lattice.  Per affected-key chunk ``c`` the logs are
# filtered to ``c``; each subexpression's per-chunk value falls in one
# of these classes:
#
# * EMPTY    — phi, identical in every chunk (bottom; combines freely);
# * CONST    — no log references: identical and correct in every chunk;
# * ANCHORED — supported only on rows whose key is in ``c``, and equal
#              there to the whole computation (per-chunk values sum,
#              ⊎ over chunks, to the whole — this is what makes a root
#              chunk-safe);
# * STABLE   — correct on rows whose key (at a ``keyed`` position) is
#              in ``c``, garbage elsewhere: e.g. PAST(S) = S ∸ ▲S|c.
#              Usable only under a selection equating its key with an
#              anchored operand's key, which filters the garbage;
# * PENDING  — a product of two delta-dependent terms, awaiting the
#              key-equating selection that discharges it to ANCHORED;
# * UNSAFE   — poison: per-chunk evaluation provably may not sum.
_EMPTY = 0
_CONST = 1
_STABLE = 2
_ANCHORED = 3
_PENDING = 4
_UNSAFE = 5


@dataclass
class _Info:
    """Per-node analysis state threaded through the rewrite."""

    expr: Expr
    #: position -> domain whose affected-key set bounds the values there.
    bounded: dict[int, str] = field(default_factory=dict)
    #: position -> domain whose partition key the column carries verbatim.
    keyed: dict[int, str] = field(default_factory=dict)
    degree: int = _CONST
    #: for _BILINEAR: arity of the product's left operand.
    boundary: int = 0


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of pruning one delta expression."""

    expr: Expr
    #: partitioned-table references replaced by restricted literals.
    prunes: int
    #: partitioned tables still referenced whole (fallback scans).
    fallbacks: tuple[str, ...]
    #: True when per-chunk evaluation sums to the whole delta.
    chunk_safe: bool

    @property
    def prunable(self) -> bool:
        return not self.fallbacks


@dataclass(frozen=True)
class PartitionPlan:
    """Static install-time verdict for one view's maintenance deltas."""

    prunable: bool
    fallbacks: tuple[str, ...]
    domains: tuple[str, ...]
    chunkable: bool
    #: pairs of same-domain tables whose layouts drifted apart.
    mismatched: tuple[tuple[str, str], ...]


def _restricted_literal(bag: Bag, ref: TableRef) -> Literal:
    return Literal(bag, ref.table_schema)


class _Rewriter:
    def __init__(
        self,
        specs: Mapping[str, object],
        log_map: Mapping[str, str],
        restrict: Callable[[str, str], Bag],
        *,
        chunk_keys: frozenset | None = None,
        log_bags: Mapping[str, Bag] | None = None,
        counter: CostCounter | None = None,
    ) -> None:
        self.specs = specs
        self.log_map = log_map
        self.restrict = restrict
        self.chunk_keys = chunk_keys
        self.log_bags = log_bags or {}
        self.counter = counter
        self.prunes = 0
        self._restricted: dict[tuple[str, str], Literal] = {}

    # -- entry ----------------------------------------------------------

    def rewrite(self, expr: Expr) -> _Info:
        return self._rewrite(expr, ())

    # -- recursive walk -------------------------------------------------

    def _rewrite(self, expr: Expr, ambient: tuple[frozenset[int], ...]) -> _Info:
        """Rewrite ``expr``; ``ambient`` holds equality classes (in this
        node's coordinates) contributed by enclosing selections — used to
        discharge bilinear delta products."""
        if isinstance(expr, TableRef):
            return self._rewrite_leaf(expr)
        if isinstance(expr, Literal):
            degree = _EMPTY if not expr.bag else _CONST
            return _Info(expr, degree=degree)
        if isinstance(expr, Select):
            return self._rewrite_select(expr, ambient)
        if isinstance(expr, Project):
            return self._rewrite_project(expr, ambient)
        if isinstance(expr, MapProject):
            return self._rewrite_map(expr, ambient)
        if isinstance(expr, DupElim):
            info = self._rewrite(expr.child, ambient)
            degree = info.degree
            if degree == _ANCHORED and not info.keyed:
                # Chunks could split the duplicates of one projected row.
                degree = _UNSAFE
            elif degree == _PENDING:
                degree = _UNSAFE
            return _Info(DupElim(info.expr), info.bounded, info.keyed, degree)
        if isinstance(expr, UnionAll):
            return self._rewrite_union(expr, ambient)
        if isinstance(expr, Monus):
            return self._rewrite_monus(expr, ambient)
        if isinstance(expr, Product):
            return self._rewrite_product(expr, ambient)
        return _Info(expr, degree=_UNSAFE)

    # -- leaves ---------------------------------------------------------

    def _rewrite_leaf(self, ref: TableRef) -> _Info:
        base = self.log_map.get(ref.name)
        if base is not None:
            spec = self.specs.get(base)
            if spec is None:
                # A delta over an unpartitioned base: cannot be chunked
                # (it would be replicated into every chunk).
                return _Info(ref, degree=_UNSAFE)
            node: Expr = ref
            if self.chunk_keys is not None:
                bag = self.log_bags.get(ref.name)
                if bag is not None:
                    position = spec.position
                    keys = self.chunk_keys
                    counts = {
                        row: count for row, count in bag.items() if row[position] in keys
                    }
                    node = Literal(
                        Bag._from_clean(counts, ref.table_schema.arity if counts else None),
                        ref.table_schema,
                    )
            marks = {spec.position: spec.domain}
            return _Info(node, dict(marks), dict(marks), _ANCHORED)
        spec = self.specs.get(ref.name)
        if spec is not None:
            return _Info(ref, {}, {spec.position: spec.domain}, _CONST)
        return _Info(ref)

    # -- selections -----------------------------------------------------

    def _rewrite_select(self, node: Select, ambient: tuple[frozenset[int], ...]) -> _Info:
        schema = node.child.schema()
        classes = _equality_classes(node.predicate, schema)
        merged = _merge_classes(ambient, classes)
        info = self._rewrite(node.child, merged)
        bounded = dict(info.bounded)
        keyed = dict(info.keyed)
        # Saturate: equality spreads both bounds and key-carrying.
        for group in merged:
            domains = {bounded[p] for p in group if p in bounded}
            for domain in domains:
                for position in group:
                    bounded.setdefault(position, domain)
            key_domains = {keyed[p] for p in group if p in keyed}
            for domain in key_domains:
                for position in group:
                    keyed.setdefault(position, domain)
        child = info.expr
        for position, domain in bounded.items():
            child = self._push(child, position, domain)
        degree = info.degree
        if degree == _PENDING:
            degree = _ANCHORED if _discharges(merged, info) else _UNSAFE
        return _Info(Select(node.predicate, child), bounded, keyed, degree)

    # -- structure-preserving nodes -------------------------------------

    def _rewrite_project(self, node: Project, ambient: tuple[frozenset[int], ...]) -> _Info:
        positions = node.positions()
        child_ambient = tuple(
            frozenset(positions[p] for p in group) for group in ambient
        )
        info = self._rewrite(node.child, child_ambient)
        bounded = {
            out: info.bounded[src]
            for out, src in enumerate(positions)
            if src in info.bounded
        }
        keyed = {
            out: info.keyed[src]
            for out, src in enumerate(positions)
            if src in info.keyed
        }
        degree = _through_projection(info.degree, keyed)
        return _Info(Project(node.attrs, info.expr, node.names), bounded, keyed, degree)

    def _rewrite_map(self, node: MapProject, ambient: tuple[frozenset[int], ...]) -> _Info:
        child_schema = node.child.schema()
        # Output position -> child position, for identity (Attr) terms only.
        out_to_child: dict[int, int] = {}
        for out, term in enumerate(node.terms):
            if isinstance(term, Attr):
                try:
                    out_to_child[out] = child_schema.index_of(term.name)
                except SchemaError:
                    continue
        child_ambient = tuple(
            frozenset(out_to_child[p] for p in group if p in out_to_child)
            for group in ambient
        )
        info = self._rewrite(node.child, child_ambient)
        bounded = {
            out: info.bounded[src]
            for out, src in out_to_child.items()
            if src in info.bounded
        }
        keyed = {
            out: info.keyed[src]
            for out, src in out_to_child.items()
            if src in info.keyed
        }
        degree = _through_projection(info.degree, keyed)
        return _Info(MapProject(node.terms, info.expr, node.names), bounded, keyed, degree)

    # -- binary nodes ---------------------------------------------------

    def _rewrite_union(self, node: UnionAll, ambient: tuple[frozenset[int], ...]) -> _Info:
        left = self._rewrite(node.left, ambient)
        right = self._rewrite(node.right, ambient)
        bounded = _positional_meet(left.bounded, right.bounded)
        ld, rd = left.degree, right.degree
        if ld == _EMPTY:
            degree, keyed = rd, dict(right.keyed)
        elif rd == _EMPTY:
            degree, keyed = ld, dict(left.keyed)
        elif ld in (_PENDING, _UNSAFE) or rd in (_PENDING, _UNSAFE):
            degree, keyed = _UNSAFE, {}
        elif ld == rd and ld in (_CONST, _ANCHORED):
            degree, keyed = ld, _positional_meet(left.keyed, right.keyed)
        else:
            # A mix of CONST/STABLE/ANCHORED: correct on chunk keys,
            # garbage elsewhere — the witness is the non-constant sides'
            # shared key column.
            if ld == _CONST:
                keyed = dict(right.keyed)
            elif rd == _CONST:
                keyed = dict(left.keyed)
            else:
                keyed = _positional_meet(left.keyed, right.keyed)
            degree = _STABLE if keyed else _UNSAFE
        return _Info(UnionAll(left.expr, right.expr), bounded, keyed, degree)

    def _rewrite_monus(self, node: Monus, ambient: tuple[frozenset[int], ...]) -> _Info:
        left = self._rewrite(node.left, ambient)
        right = self._rewrite(node.right, ambient)
        keyed = dict(left.keyed)
        ld, rd = left.degree, right.degree
        shared = _positional_meet(left.keyed, right.keyed)
        if ld == _EMPTY:
            degree = _EMPTY
        elif rd == _EMPTY:
            degree = ld
        elif ld in (_PENDING, _UNSAFE) or rd in (_PENDING, _UNSAFE):
            degree = _UNSAFE
        elif ld == _CONST:
            if rd == _CONST:
                degree = _CONST
            else:
                # S ∸ ▲S|c: correct exactly on rows whose key is in the
                # chunk (monus matches whole rows, and the chunk filter
                # is by that key column).
                degree = _STABLE if shared else _UNSAFE
                keyed = shared
        elif ld == _ANCHORED:
            if rd == _CONST:
                degree = _ANCHORED
            else:
                degree = _ANCHORED if shared else _UNSAFE
        else:  # ld == _STABLE
            if rd == _CONST:
                degree = _STABLE
            else:
                degree = _STABLE if shared else _UNSAFE
                keyed = shared
        # Result rows are a subbag of the left operand's rows.
        return _Info(Monus(left.expr, right.expr), dict(left.bounded), keyed, degree)

    def _rewrite_product(self, node: Product, ambient: tuple[frozenset[int], ...]) -> _Info:
        left_arity = node.left.schema().arity
        left_ambient = tuple(
            frozenset(p for p in group if p < left_arity) for group in ambient
        )
        right_ambient = tuple(
            frozenset(p - left_arity for p in group if p >= left_arity)
            for group in ambient
        )
        left = self._rewrite(node.left, left_ambient)
        right = self._rewrite(node.right, right_ambient)
        bounded = dict(left.bounded)
        keyed = dict(left.keyed)
        for position, domain in right.bounded.items():
            bounded[position + left_arity] = domain
        for position, domain in right.keyed.items():
            keyed[position + left_arity] = domain
        boundary = 0
        ld, rd = left.degree, right.degree
        if ld == _EMPTY or rd == _EMPTY:
            degree = _EMPTY
        elif ld in (_PENDING, _UNSAFE) or rd in (_PENDING, _UNSAFE):
            degree = _UNSAFE
        elif ld == _CONST and rd == _CONST:
            degree = _CONST
        elif {ld, rd} == {_CONST, _ANCHORED}:
            degree = _ANCHORED
        elif {ld, rd} == {_CONST, _STABLE}:
            degree = _STABLE
        elif _ANCHORED in (ld, rd):
            # delta x delta (or delta x past-state): sound only under a
            # selection equating the two sides' partition keys, which
            # confines the pairing to one chunk and filters the stable
            # side's out-of-chunk garbage.  Check the ambient equalities
            # here; otherwise leave PENDING for an enclosing Select.
            degree = _PENDING
            boundary = left_arity
            info = _Info(Product(left.expr, right.expr), bounded, keyed, degree, boundary)
            if _discharges(ambient, info):
                degree = _ANCHORED
                boundary = 0
        else:  # STABLE x STABLE: no single-column witness survives
            degree = _UNSAFE
        return _Info(Product(left.expr, right.expr), bounded, keyed, degree, boundary)

    # -- restriction push-down ------------------------------------------

    def _push(self, expr: Expr, position: int, domain: str) -> Expr:
        """Replace partitioned-table references feeding ``position`` with
        key-restricted literals.  Non-matching shapes return unchanged."""
        if isinstance(expr, TableRef):
            if expr.name in self.log_map:
                return expr
            spec = self.specs.get(expr.name)
            if spec is not None and spec.position == position:
                cached = self._restricted.get((expr.name, domain))
                if cached is None:
                    cached = _restricted_literal(self.restrict(expr.name, domain), expr)
                    self._restricted[(expr.name, domain)] = cached
                self.prunes += 1
                if self.counter is not None:
                    self.counter.record_prune()
                return cached
            return expr
        if isinstance(expr, Select):
            child = self._push(expr.child, position, domain)
            return expr if child is expr.child else Select(expr.predicate, child)
        if isinstance(expr, Project):
            source = expr.positions()[position]
            child = self._push(expr.child, source, domain)
            return expr if child is expr.child else Project(expr.attrs, child, expr.names)
        if isinstance(expr, MapProject):
            term = expr.terms[position]
            if not isinstance(term, Attr):
                return expr
            try:
                source = expr.child.schema().index_of(term.name)
            except SchemaError:
                return expr
            child = self._push(expr.child, source, domain)
            return expr if child is expr.child else MapProject(expr.terms, child, expr.names)
        if isinstance(expr, DupElim):
            child = self._push(expr.child, position, domain)
            return expr if child is expr.child else DupElim(child)
        if isinstance(expr, UnionAll):
            left = self._push(expr.left, position, domain)
            right = self._push(expr.right, position, domain)
            if left is expr.left and right is expr.right:
                return expr
            return UnionAll(left, right)
        if isinstance(expr, Monus):
            # sigma_K(A - B) = sigma_K(A) - B: monus matches whole rows,
            # so restricting only the left side is sound.
            left = self._push(expr.left, position, domain)
            return expr if left is expr.left else Monus(left, expr.right)
        if isinstance(expr, Product):
            left_arity = expr.left.schema().arity
            if position < left_arity:
                left = self._push(expr.left, position, domain)
                return expr if left is expr.left else Product(left, expr.right)
            right = self._push(expr.right, position - left_arity, domain)
            return expr if right is expr.right else Product(expr.left, right)
        return expr


def _equality_classes(predicate, schema) -> tuple[frozenset[int], ...]:
    """Equivalence classes of positions under the predicate's top-level
    attribute equalities (conjuncts that fail to resolve are skipped)."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for conjunct in _conjuncts(predicate):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        ):
            try:
                left = schema.index_of(conjunct.left.name)
                right = schema.index_of(conjunct.right.name)
            except SchemaError:
                continue
            parent.setdefault(left, left)
            parent.setdefault(right, right)
            union(left, right)
    groups: dict[int, set[int]] = {}
    for position in parent:
        groups.setdefault(find(position), set()).add(position)
    return tuple(frozenset(group) for group in groups.values() if len(group) > 1)


def _merge_classes(
    first: tuple[frozenset[int], ...], second: tuple[frozenset[int], ...]
) -> tuple[frozenset[int], ...]:
    """Union-merge two collections of equivalence classes."""
    merged: list[set[int]] = []
    for group in (*first, *second):
        if not group:
            continue
        hits = [existing for existing in merged if existing & group]
        for hit in hits:
            merged.remove(hit)
        combined = set(group)
        for hit in hits:
            combined |= hit
        merged.append(combined)
    return tuple(frozenset(group) for group in merged)


def _discharges(classes: tuple[frozenset[int], ...], info: _Info) -> bool:
    """Whether an equality class equates a left-side and right-side
    partition-key column (same domain) across a bilinear product."""
    boundary = info.boundary
    for group in classes:
        lefts = {info.keyed[p] for p in group if p < boundary and p in info.keyed}
        rights = {info.keyed[p] for p in group if p >= boundary and p in info.keyed}
        if lefts & rights:
            return True
    return False


def _through_projection(degree: int, keyed: dict[int, str]) -> int:
    """Degree after a (map-)projection remapped ``keyed``.

    ANCHORED survives losing its key column (projection is linear and
    chunks partition the input rows); STABLE does not — its correctness
    region is defined by that column.
    """
    if degree == _PENDING:
        return _UNSAFE
    if degree == _STABLE and not keyed:
        return _UNSAFE
    return degree


def _positional_meet(left: dict[int, str], right: dict[int, str]) -> dict[int, str]:
    return {
        position: domain
        for position, domain in left.items()
        if right.get(position) == domain
    }


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def prune_expr(
    expr: Expr,
    specs: Mapping[str, object],
    log_map: Mapping[str, str],
    restrict: Callable[[str, str], Bag],
    *,
    chunk_keys: frozenset | None = None,
    log_bags: Mapping[str, Bag] | None = None,
    counter: CostCounter | None = None,
) -> RewriteResult:
    """Rewrite one delta expression with partition pruning.

    ``specs`` maps base-table names to their partition specs; ``log_map``
    maps maintenance-log table names to the base table they record;
    ``restrict(table, domain)`` returns the affected rows of a
    partitioned table (``PartitionedDatabase.restrict`` bound to the
    epoch's affected keys).  With ``chunk_keys``/``log_bags`` the log
    leaves are additionally narrowed to one key chunk, for per-chunk
    parallel refresh (sound only when the result reports ``chunk_safe``).
    """
    rewriter = _Rewriter(
        specs,
        log_map,
        restrict,
        chunk_keys=chunk_keys,
        log_bags=log_bags,
        counter=counter,
    )
    info = rewriter.rewrite(expr)
    fallbacks = tuple(sorted(info.expr.tables() & set(specs)))
    if counter is not None and fallbacks:
        counter.record_prune(fallback=True)
    return RewriteResult(
        info.expr,
        rewriter.prunes,
        fallbacks,
        info.degree in (_ANCHORED, _EMPTY),
    )


def key_positions(expr: Expr, specs: Mapping[str, object]) -> dict[int, str]:
    """Output positions of ``expr`` that carry a partition key, by domain.

    Used to locate the materialized view's own partition-key column, so
    the MV can be co-declared and patched partition-by-partition.
    """
    rewriter = _Rewriter(specs, {}, lambda table, domain: Bag.empty())
    return dict(rewriter.rewrite(expr).keyed)


def analyze_deltas(
    deltas: Iterable[Expr],
    specs: Mapping[str, object],
    log_map: Mapping[str, str],
) -> PartitionPlan:
    """Static install-time verdict over a view's maintenance deltas.

    Runs the same rewrite the epoch path uses, with empty key sets, and
    reports whether every partitioned reference prunes, which domains
    are involved, whether per-chunk refresh is sound, and any layout
    drift among same-domain tables.
    """

    def empty_restrict(table: str, domain: str) -> Bag:
        return Bag.empty()

    fallbacks: set[str] = set()
    chunkable = True
    for delta in deltas:
        result = prune_expr(delta, specs, log_map, empty_restrict)
        fallbacks.update(result.fallbacks)
        chunkable = chunkable and result.chunk_safe
    domains = tuple(sorted({spec.domain for spec in specs.values()}))
    mismatched: list[tuple[str, str]] = []
    by_domain: dict[str, list] = {}
    for name in sorted(specs):
        by_domain.setdefault(specs[name].domain, []).append(name)
    for names in by_domain.values():
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                if not specs[first].co_partitioned(specs[second]):
                    mismatched.append((first, second))
    # Every specced reference either prunes or lands in ``fallbacks``,
    # so no fallbacks means the rewrite is complete — including
    # vacuously, when the deltas never reference a partitioned table
    # whole (single-table views: the deltas are log-only and already
    # delta-proportional, so partition-at-a-time apply is sound).
    prunable = not fallbacks
    return PartitionPlan(
        prunable,
        tuple(sorted(fallbacks)),
        domains,
        chunkable and prunable and len(domains) == 1,
        tuple(mismatched),
    )


def partition_lint(view, db, report) -> None:
    """Append RVM701/RVM702 findings for a view on a partitioned database.

    No-op unless ``db`` declares partition specs covering at least one
    base table of the view.  Builds the view's deferred-maintenance
    deltas (the same ones the scenarios evaluate) and runs the static
    pruning analysis on them.
    """
    specs_of = getattr(db, "partition_spec", None)
    if specs_of is None:
        return
    base_tables = sorted(view.query.tables())
    specs = {}
    for name in base_tables:
        spec = specs_of(name)
        if spec is not None:
            specs[name] = spec
    if not specs:
        return
    from repro.core.differential import post_update_delta
    from repro.core.logs import Log

    # Install the probe log on a scratch clone so linting never mutates
    # the live catalog (bags are shared, so the clone is cheap).
    scratch = db.clone()
    log = Log(scratch, base_tables, owner=f"__lint__{view.name}")
    log.install()
    log_map = {log.delete_ref(name).name: name for name in base_tables}
    log_map.update({log.insert_ref(name).name: name for name in base_tables})
    delete, insert = post_update_delta(log, view.query, assume_weakly_minimal_log=True)
    plan = analyze_deltas((delete, insert), specs, log_map)
    for first, second in plan.mismatched:
        from repro.analysis.diagnostics import Severity

        report.add(
            "RVM702",
            Severity.WARNING,
            f"tables {first!r} and {second!r} declare partition domain "
            f"{specs[first].domain!r} but their layouts drifted apart "
            "(scheme/parts/bounds differ) — co-partitioned maintenance "
            "is disabled for them",
            path=view.name,
        )
    if not plan.prunable:
        from repro.analysis.diagnostics import Severity

        drifted = ", ".join(plan.fallbacks) if plan.fallbacks else ", ".join(specs)
        report.add(
            "RVM701",
            Severity.WARNING,
            f"partition-key drift: maintenance of {view.name!r} cannot "
            f"prune partitions of [{drifted}] — the view's predicates/"
            "joins do not bound the declared partition key, so refresh "
            "falls back to whole-table scans",
            path=view.name,
        )
