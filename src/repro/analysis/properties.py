"""Property derivation over bag-algebra expressions (Lemmas 2–4 support).

All judgements here are *conservative*: ``True`` means *provable from
the expression's structure alone*, ``False`` means *unknown* — never
"provably false".  The derived properties power

* the **weak-minimality classifier** (:func:`classify_substitution`):
  decides statically whether a factored substitution satisfies
  :math:`D_i \\subseteq R_i` in every state, which is the side condition
  of the Figure 2 differential rules and lets
  :math:`\\blacktriangle = Q \\min \\mathrm{Del}(\\widehat{L},Q)`
  simplify to :math:`\\mathrm{Del}(\\widehat{L},Q)` (Lemma 2);
* compile-time pruning in :mod:`repro.exec.compiler`
  (:func:`always_empty`, :func:`redundant_min_guard`).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)

__all__ = [
    "Minimality",
    "always_empty",
    "empty_when_empty",
    "duplicate_free",
    "degrees",
    "is_linear",
    "subsumed_by",
    "match_min",
    "redundant_min_guard",
    "classify_substitution",
]


# ----------------------------------------------------------------------
# Emptiness
# ----------------------------------------------------------------------


def always_empty(expr: Expr) -> bool:
    """Provably :math:`\\phi` in **every** database state.

    Structural rules: the empty literal; any unary operator over an
    empty input; ⊎ of two empty operands; ∸ with an empty (or
    self-cancelling, :math:`E \\dot{-} E`) left side; × with an empty
    factor.
    """
    return empty_when_empty(expr, frozenset())


def empty_when_empty(expr: Expr, empty_tables: Iterable[str]) -> bool:
    """Provably empty whenever every table in ``empty_tables`` is empty.

    This is the "emptiness under empty logs" judgement: a refresh delta
    is dead code exactly when it is empty under empty log tables.
    """
    empty = frozenset(empty_tables)

    def walk(node: Expr) -> bool:
        if isinstance(node, Literal):
            return not node.bag
        if isinstance(node, TableRef):
            return node.name in empty
        if isinstance(node, (Select, Project, MapProject, DupElim)):
            return walk(node.child)
        if isinstance(node, UnionAll):
            return walk(node.left) and walk(node.right)
        if isinstance(node, Monus):
            # E ∸ F is empty when E is, and when E ≡ F syntactically.
            return walk(node.left) or node.left == node.right
        if isinstance(node, Product):
            return walk(node.left) or walk(node.right)
        return False

    return walk(expr)


# ----------------------------------------------------------------------
# Duplicate-freeness
# ----------------------------------------------------------------------


def duplicate_free(expr: Expr) -> bool:
    """Provably a *set* (every multiplicity ≤ 1) in every state."""
    if isinstance(expr, DupElim):
        return True
    if isinstance(expr, Literal):
        return all(count <= 1 for count in expr.bag.counts().values())
    if isinstance(expr, Select):
        return duplicate_free(expr.child)
    if isinstance(expr, Project):
        # A projection keeping *all* input columns (a permutation) is a
        # bijection on rows; narrowing projections can merge rows.
        positions = expr.positions()
        child_arity = expr.child.schema().arity
        is_permutation = sorted(positions) == list(range(child_arity))
        return is_permutation and duplicate_free(expr.child)
    if isinstance(expr, Monus):
        # Multiplicities only decrease from the left operand.
        return duplicate_free(expr.left)
    if isinstance(expr, Product):
        # Pairs of distinct rows are distinct.
        return duplicate_free(expr.left) and duplicate_free(expr.right)
    if isinstance(expr, UnionAll):
        # ⊎ adds multiplicities; only safe if one side is provably empty.
        if always_empty(expr.left):
            return duplicate_free(expr.right)
        if always_empty(expr.right):
            return duplicate_free(expr.left)
        return False
    return False  # TableRef, MapProject: unknown


# ----------------------------------------------------------------------
# Per-table degree / linearity
# ----------------------------------------------------------------------


def degrees(expr: Expr) -> dict[str, int]:
    """Maximum join degree of each base table in ``expr``.

    Degree 1 means the table occurs linearly (no self-join through a
    product); differential deltas of linear occurrences stay
    delta-proportional, quadratic and higher degrees multiply delta
    terms (the cross products in Figure 2's × rule).
    """
    if isinstance(expr, TableRef):
        return {expr.name: 1}
    if isinstance(expr, Literal):
        return {}
    if isinstance(expr, (Select, Project, MapProject, DupElim)):
        return degrees(expr.child)
    if isinstance(expr, Product):
        left, right = degrees(expr.left), degrees(expr.right)
        return {name: left.get(name, 0) + right.get(name, 0) for name in left.keys() | right.keys()}
    if isinstance(expr, (UnionAll, Monus)):
        left, right = degrees(expr.left), degrees(expr.right)
        return {name: max(left.get(name, 0), right.get(name, 0)) for name in left.keys() | right.keys()}
    return {}


def is_linear(expr: Expr, table: str) -> bool:
    """Whether ``table`` occurs with join degree ≤ 1 in ``expr``."""
    return degrees(expr).get(table, 0) <= 1


# ----------------------------------------------------------------------
# Containment (the heart of the weak-minimality classifier)
# ----------------------------------------------------------------------


def match_min(expr: Expr) -> tuple[Expr, Expr] | None:
    """Recognize the derived operator :math:`X \\min Y`.

    ``min_expr`` expands to :math:`X \\dot{-} (X \\dot{-} Y)`; return
    ``(X, Y)`` when ``expr`` has exactly that shape.
    """
    if (
        isinstance(expr, Monus)
        and isinstance(expr.right, Monus)
        and expr.left == expr.right.left
    ):
        return expr.left, expr.right.right
    return None


def subsumed_by(sub: Expr, sup: Expr) -> bool:
    """Provably :math:`sub \\subseteq sup` (as bags) in every state.

    Conservative structural containment:

    * anything provably empty is contained in anything;
    * :math:`E \\subseteq E`;
    * :math:`\\sigma_p(E) \\subseteq E` and :math:`E \\dot{-} F \\subseteq E`;
    * :math:`X \\min Y \\subseteq X` and :math:`X \\min Y \\subseteq Y`;
    * :math:`E \\subseteq E \\uplus F` (either side).
    """
    if always_empty(sub):
        return True
    if sub == sup:
        return True
    minimum = match_min(sub)
    if minimum is not None:
        x, y = minimum
        if subsumed_by(x, sup) or subsumed_by(y, sup):
            return True
    elif isinstance(sub, Monus):
        if subsumed_by(sub.left, sup):
            return True
    if isinstance(sub, Select) and subsumed_by(sub.child, sup):
        return True
    if isinstance(sup, UnionAll) and (subsumed_by(sub, sup.left) or subsumed_by(sub, sup.right)):
        return True
    return False


def redundant_min_guard(expr: Expr) -> Expr | None:
    """When ``expr`` is :math:`X \\min Y` with :math:`X \\subseteq Y`
    provable, the guard is a no-op — return the simplified ``X``.
    """
    minimum = match_min(expr)
    if minimum is None:
        return None
    x, y = minimum
    if subsumed_by(x, y):
        return x
    return None


# ----------------------------------------------------------------------
# Weak-minimality classification
# ----------------------------------------------------------------------


class Minimality(enum.Enum):
    """Outcome of the static weak-minimality judgement."""

    WEAKLY_MINIMAL = "weakly_minimal"
    UNKNOWN = "unknown"


def classify_substitution(eta) -> Minimality:
    """Decide statically whether a factored substitution is weakly minimal.

    A :class:`~repro.core.substitution.FactoredSubstitution` is weakly
    minimal when :math:`D_i \\subseteq R_i` in every state (Section 4.1).
    Two sources of proof:

    * **provenance** — substitutions built by machinery that maintains
      the invariant by construction carry
      ``claims_weak_minimality`` (``Log.substitution`` under Lemma 4's
      ``makesafe`` discipline, and the result of
      :meth:`~repro.core.substitution.FactoredSubstitution.weakly_minimal`);
    * **structure** — :math:`D_i` is provably empty, or provably
      contained in :math:`R_i` by :func:`subsumed_by` (e.g. the
      :math:`D \\min R` normal form).
    """
    if getattr(eta, "claims_weak_minimality", False):
        return Minimality.WEAKLY_MINIMAL
    for name in eta:
        delete = eta.delete_of(name)
        ref = TableRef(name, eta.schema_of(name))
        if not subsumed_by(delete, ref):
            return Minimality.UNKNOWN
    return Minimality.WEAKLY_MINIMAL
