"""Effect-set inference for maintenance operations (Section 5.3).

The paper's deferred-maintenance protocols are, implicitly, *effect
typed*: each phase of ``makesafe`` / ``propagate`` / ``refresh`` may
read and write a specific slice of the state (base tables, logs,
differential tables, the ``MV`` table) under a specific lock.  This
module makes those effects explicit:

* an :class:`EffectSet` is a read set plus a write set over table names;
* a :class:`Step` is one phase of an operation — its effects plus the
  exclusive locks held while it runs;
* an :class:`OpEffects` is a whole maintenance operation (``refresh``,
  ``propagate``, …) for one view, as a sequence of steps.

Footprints are **inferred, not declared**: read sets come from the
compiled plans of the very delta expressions the operation will
evaluate (:meth:`repro.exec.executor.Executor.footprint`, falling back
to ``Expr.tables()`` under the interpreted oracle), and write sets from
the structure of the :class:`~repro.core.plan.MaintenancePlan` the
operation builds.  Each scenario exposes its protocol through
``Scenario.maintenance_protocol()``, which builds these objects from
the same expressions and plan constructors its runtime code uses — so
the static picture and the executed code share one source of truth,
and :mod:`repro.analysis.concurrency_check` can hold the picture
against the Section 5.3 lock discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expr import Expr
from repro.core.naming import is_mv_table
from repro.core.plan import MaintenancePlan

__all__ = [
    "EffectSet",
    "Step",
    "OpEffects",
    "REFRESH_OPS",
    "read_footprint",
    "plan_effects",
]

#: Operations that touch reader-visible ``MV`` state outside a user
#: transaction — the ops the Section 5.3 lock discipline applies to.
#: (``makesafe`` runs inside the user transaction's own atomicity and
#: ``propagate`` is lock-free *by design*: it only touches
#: maintenance-private log/differential tables.)
REFRESH_OPS = frozenset({"refresh", "partial_refresh"})


@dataclass(frozen=True)
class EffectSet:
    """A read set and a write set over table names."""

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()

    def __or__(self, other: EffectSet) -> EffectSet:
        return EffectSet(self.reads | other.reads, self.writes | other.writes)

    def covers(self, other: EffectSet) -> bool:
        """Whether this effect set is at least as wide as ``other``."""
        return self.reads >= other.reads and self.writes >= other.writes

    def mv_reads(self) -> frozenset[str]:
        """The reader-visible (``MV``) tables in the read set."""
        return frozenset(t for t in self.reads if is_mv_table(t))

    def mv_writes(self) -> frozenset[str]:
        """The reader-visible (``MV``) tables in the write set."""
        return frozenset(t for t in self.writes if is_mv_table(t))


@dataclass(frozen=True)
class Step:
    """One phase of a maintenance operation.

    ``locks`` is the set of resources whose exclusive lock the runtime
    code holds while this step executes (from the scenario's lock
    seam, :meth:`~repro.core.scenarios.Scenario._refresh_lock_resources`).
    """

    name: str
    effects: EffectSet
    locks: frozenset[str] = frozenset()


@dataclass(frozen=True)
class OpEffects:
    """The inferred effects of one maintenance operation on one view."""

    op: str
    view: str
    scenario: str
    steps: tuple[Step, ...] = ()

    @property
    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for step in self.steps:
            out |= step.effects.reads
        return out

    @property
    def writes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for step in self.steps:
            out |= step.effects.writes
        return out

    @property
    def locks(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for step in self.steps:
            out |= step.locks
        return out

    def describe(self) -> str:
        return f"{self.op}[{self.scenario}] of view {self.view!r}"


# ----------------------------------------------------------------------
# Inference
# ----------------------------------------------------------------------


def read_footprint(db, *exprs: Expr) -> frozenset[str]:
    """The tables the compiled plans of ``exprs`` read.

    Uses the executor's plan footprint when the database runs a
    compiled-family engine (the plan may read *fewer* tables than the
    source expression mentions, e.g. after provably-empty subtree
    folding); falls back to the syntactic ``Expr.tables()`` under the
    interpreted oracle or when no database is at hand.
    """
    tables: set[str] = set()
    for expr in exprs:
        footprint = None
        if db is not None and getattr(db, "exec_mode", "interpreted") != "interpreted":
            plan_footprint = getattr(db.executor, "footprint", None)
            if plan_footprint is not None:
                footprint = plan_footprint(expr)
        tables |= footprint if footprint is not None else expr.tables()
    return frozenset(tables)


def plan_effects(db, plan: MaintenancePlan) -> EffectSet:
    """The effect set of executing a maintenance plan.

    Reads: the footprints of every right-hand side, plus every *patch
    target* — ``R := (R ∸ delete) ⊎ insert`` is a read-modify-write of
    ``R``.  Writes: every assigned or patched table.
    """
    exprs: list[Expr] = list(plan.assignments.values())
    for delete, insert in plan.patches.values():
        exprs.append(delete)
        exprs.append(insert)
    reads = set(read_footprint(db, *exprs))
    reads.update(plan.patches)
    return EffectSet(reads=frozenset(reads), writes=plan.tables())
