"""Static + semantic detection of the paper's *state bug* (Section 1.2).

A deferred refresh is only correct when its incremental queries are
derived for the **post-update** state.  The duality of Section 4 (Lemma
1) dictates the log substitution's polarity: past states are recovered
by :math:`\\widehat{\\mathcal{L}} : R \\mapsto (R \\dot{-}
\\blacktriangle R) \\uplus \\blacktriangledown R`, i.e. the *delete*
component of the factored substitution is the log's **insert** table and
vice versa.  Pre-update rules misread the log as a pending transaction
(:math:`D = \\blacktriangledown R, A = \\blacktriangle R`) — evaluated
post-update this yields wrong multiplicities (Example 1.2) and wrong
tuples (Example 1.3).

Two detectors:

* :func:`check_log_polarity` — purely static: inspects which log tables
  a substitution's ``(D, A)`` components read (**RVM301**);
* :func:`audit_refresh_pair` / :func:`audit_plan` — a randomized
  semantic oracle: replays the refresh on sampled weakly-minimal log
  states and compares against the PAST-state ground truth (**RVM302**).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.algebra.bag import Bag
from repro.algebra.expr import Expr, Monus, TableRef, UnionAll
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.core.logs import Log
from repro.core.plan import MaintenancePlan
from repro.core.substitution import FactoredSubstitution
from repro.storage.database import Database

__all__ = [
    "check_log_polarity",
    "audit_refresh_pair",
    "audit_plan",
]


# ----------------------------------------------------------------------
# Static polarity check (RVM301)
# ----------------------------------------------------------------------


def check_log_polarity(eta: FactoredSubstitution, log: Log) -> AnalysisReport:
    """Flag substitutions that read the log with pre-update polarity.

    For every tracked table the correct :math:`\\widehat{\\mathcal{L}}`
    entry has :math:`D` reading :math:`\\blacktriangle R` and :math:`A`
    reading :math:`\\blacktriangledown R`.  An entry with the roles
    swapped is the state-bug signature.
    """
    report = AnalysisReport()
    for name in log.tables:
        if name not in eta:
            continue
        del_table = log.delete_ref(name).name  # ▼R
        ins_table = log.insert_ref(name).name  # ▲R
        d_tables = eta.delete_of(name).tables()
        a_tables = eta.insert_of(name).tables()
        swapped = (
            del_table in d_tables
            and ins_table in a_tables
            and ins_table not in d_tables
            and del_table not in a_tables
        )
        if swapped:
            report.add(
                "RVM301",
                Severity.ERROR,
                f"substitution entry for {name!r} reads the log with pre-update "
                f"polarity (D = {del_table}, A = {ins_table}); post-update "
                f"evaluation requires the Lemma 1 duality (D = {ins_table}, "
                f"A = {del_table})",
                path=name,
            )
    return report


# ----------------------------------------------------------------------
# Randomized semantic oracle (RVM302)
# ----------------------------------------------------------------------


def _random_bag(rng: random.Random, arity: int, *, max_rows: int = 3, domain: int = 3) -> Bag:
    rows = [
        tuple(rng.randrange(domain) for _ in range(arity))
        for _ in range(rng.randint(0, max_rows))
    ]
    counts: dict[tuple, int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + rng.randint(1, 2)
    return Bag.from_counts(counts)


def _sub_bag(rng: random.Random, bag: Bag) -> Bag:
    """A random sub-bag (the weakly-minimal ▲R ⊆ R invariant)."""
    return Bag.from_counts({row: rng.randint(0, count) for row, count in bag.items()})


def _referenced_tables(exprs: Iterable[Expr]) -> dict[str, "TableRef"]:
    refs: dict[str, TableRef] = {}
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, TableRef):
                refs[node.name] = node
    return refs


def _sample_state(
    rng: random.Random,
    log: Log,
    exprs: Iterable[Expr],
) -> Database:
    """A fresh database with random contents satisfying Lemma 4's invariant."""
    scratch = Database(exec_mode="interpreted")
    refs = _referenced_tables(exprs)
    tracked = set(log.tables)
    log_tables = {log.delete_ref(name).name for name in log.tables}
    log_tables |= {log.insert_ref(name).name for name in log.tables}
    # Base tables first (tracked ones drive their logs' insert sides).
    for name, ref in refs.items():
        if name in log_tables:
            continue
        scratch.create_table(name, ref.table_schema, rows=())
        scratch.set_table(name, _random_bag(rng, ref.table_schema.arity))
    for name in sorted(tracked):
        if name not in scratch.table_names():
            schema = log.delete_ref(name).table_schema
            scratch.create_table(name, schema, rows=())
            scratch.set_table(name, _random_bag(rng, schema.arity))
    for name in sorted(tracked):
        schema = scratch.schema_of(name)
        ins_name = log.insert_ref(name).name
        del_name = log.delete_ref(name).name
        scratch.create_table(ins_name, schema, internal=True)
        scratch.create_table(del_name, schema, internal=True)
        # ▲R ⊆ R keeps the sampled log weakly minimal.
        scratch.set_table(ins_name, _sub_bag(rng, scratch[name]))
        scratch.set_table(del_name, _random_bag(rng, schema.arity))
    return scratch


def audit_refresh_pair(
    log: Log,
    query: Expr,
    view_delete: Expr,
    view_insert: Expr,
    *,
    samples: int = 12,
    seed: int = 1996,
) -> AnalysisReport:
    """Semantic oracle: does ``(MV ∸ view_delete) ⊎ view_insert`` refresh?

    Ground truth: by Section 2.3 the past view contents are
    :math:`Q(\\widehat{\\mathcal{L}})` evaluated in the current state,
    and a correct refresh pair must turn exactly that into :math:`Q` —
    on **every** weakly-minimal log state.  We replay the pair on
    ``samples`` randomized states; any disagreement is a state bug.
    """
    report = AnalysisReport()
    eta = log.substitution()
    past_query = eta.apply(query)
    rng = random.Random(seed)
    for sample in range(samples):
        scratch = _sample_state(rng, log, (query, view_delete, view_insert, past_query))
        past_mv = scratch.evaluate(past_query)
        current = scratch.evaluate(query)
        candidate = past_mv.monus(scratch.evaluate(view_delete)).union_all(
            scratch.evaluate(view_insert)
        )
        if candidate != current:
            report.add(
                "RVM302",
                Severity.ERROR,
                f"refresh pair fails the PAST-state oracle on sampled state "
                f"#{sample}: refreshed view {candidate.counts()} != "
                f"Q(current) {current.counts()} — the deltas were derived "
                f"for the wrong state (Section 1.2 state bug)",
                path="refresh",
            )
            break
    return report


def _extract_patch(plan: MaintenancePlan, mv_table: str) -> tuple[Expr, Expr] | None:
    """The ``(delete, insert)`` pair a plan applies to the view table.

    Accepts both patch form and the assignment form
    ``MV := (MV ∸ D) ⊎ A``.
    """
    if mv_table in plan.patches:
        return plan.patches[mv_table]
    assignment = plan.assignments.get(mv_table)
    if (
        isinstance(assignment, UnionAll)
        and isinstance(assignment.left, Monus)
        and isinstance(assignment.left.left, TableRef)
        and assignment.left.left.name == mv_table
    ):
        return assignment.left.right, assignment.right
    return None


def audit_plan(
    plan: MaintenancePlan,
    log: Log,
    query: Expr,
    mv_table: str,
    *,
    samples: int = 12,
    seed: int = 1996,
) -> AnalysisReport:
    """Audit a maintenance plan's view patch against the state oracle."""
    report = AnalysisReport()
    pair = _extract_patch(plan, mv_table)
    if pair is None:
        return report
    view_delete, view_insert = pair
    return report.extend(
        audit_refresh_pair(
            log, query, view_delete, view_insert, samples=samples, seed=seed
        )
    )
