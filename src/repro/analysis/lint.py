"""The ``repro lint`` driver.

Entry points used by the CLI (``python -m repro lint``), by scenario /
view installation (warn-by-default, ``strict=True`` raises), and by CI:

* :func:`lint_expr` — schema check + derived-property notes for one
  bag-algebra expression;
* :func:`lint_sql` — lint a SQL statement or ``;``-separated script
  (CREATE TABLE statements build up the catalog; every query / view /
  DML statement is compiled and checked, with source positions);
* :func:`lint_view` — install-time hook for a view definition;
* :func:`lint_example` — lint an ``examples/*.py`` file: its declared
  ``LINT_SCHEMA`` / ``LINT_QUERIES`` manifest plus state-bug detection
  (verified against the canonical Example 1.2/1.3 fixtures);
* :func:`lint_experiments` — the named E1–E16 experiment queries;
* :func:`lint_concurrency` — the RVM6xx concurrency/effect suite: the
  clean demo stack (must lint empty) or, for a target file declaring
  ``CONCURRENCY_MUTATION``, the seeded-mutation probes (must lint
  non-empty);
* :func:`main` — the command-line front end.

Exit-code contract (stable; CI gates depend on it): **0** clean, **1**
warnings promoted by ``--strict``, **2** errors (or usage problems).
"""

from __future__ import annotations

import importlib.util
import os

from repro.algebra.expr import Expr
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.properties import degrees, duplicate_free
from repro.analysis.schema_check import check_expr
from repro.analysis.statebug import audit_refresh_pair, check_log_polarity
from repro.errors import ParseError, ReproError, SchemaError
from repro.sqlfront.parser import (
    CreateTable,
    CreateView,
    DeleteStatement,
    InsertStatement,
    SelectCore,
    SetOp,
    UpdateStatement,
    parse_script,
)
from repro.storage.database import Database

__all__ = [
    "lint_expr",
    "lint_sql",
    "lint_view",
    "lint_example",
    "lint_experiments",
    "lint_concurrency",
    "experiment_queries",
    "main",
]


# ----------------------------------------------------------------------
# Expressions and views
# ----------------------------------------------------------------------


def lint_expr(
    expr: Expr,
    db: Database | None = None,
    *,
    root: str = "Q",
    properties: bool = False,
) -> AnalysisReport:
    """Schema-check an expression; optionally add derived-property notes."""
    report = check_expr(expr, db, root=root)
    if properties and not report.errors:
        notes = []
        if duplicate_free(expr):
            notes.append("duplicate-free")
        table_degrees = degrees(expr)
        nonlinear = sorted(name for name, degree in table_degrees.items() if degree > 1)
        if nonlinear:
            notes.append(f"non-linear in {nonlinear} (delta terms multiply)")
        else:
            notes.append("linear in every base table")
        report.add("RVM204", Severity.INFO, "; ".join(notes), path=root)
    return report


def lint_view(view, db: Database, *, properties: bool = True) -> AnalysisReport:
    """Install-time lint of a view definition against its database."""
    report = lint_expr(view.query, db, root=view.name, properties=properties)
    if properties and not report.errors:
        # The deferred scenarios keep their logs weakly minimal by
        # construction (Lemma 4), so the refresh insert simplifies from
        # Q min Del(L̂,Q) to Del(L̂,Q) — record that the simplification
        # is analysis-backed.
        report.add(
            "RVM202",
            Severity.INFO,
            "deferred refresh will use the simplified insert Del(L̂,Q): "
            "the maintained log is weakly minimal by construction (Lemma 4)",
            path=view.name,
        )
    if not report.errors:
        # RVM7xx: on a partitioned database, warn when the declared
        # partition keys cannot prune the view's maintenance plan.
        from repro.analysis.partitioning import partition_lint

        partition_lint(view, db, report)
    return report


# ----------------------------------------------------------------------
# SQL scripts
# ----------------------------------------------------------------------


def _schema_error_diagnostic(report: AnalysisReport, exc: SchemaError, *, path: str) -> None:
    message = str(exc)
    if exc.attribute is not None and "ambiguous" in message:
        code = "RVM102"
    elif exc.attribute is not None or "column" in message or "attribute" in message:
        code = "RVM101"
    elif "table" in message or "range variable" in message:
        code = "RVM107"
    elif "arit" in message:
        code = "RVM103"
    else:
        code = "RVM109"
    if exc.expression is not None:
        message = f"{message} (in {exc.expression})"
    report.add(code, Severity.ERROR, message, path=path, position=exc.position)


def lint_sql(source: str, db: Database | None = None, *, engine: str | None = None) -> AnalysisReport:
    """Lint a SQL statement or script.

    ``CREATE TABLE`` statements extend a scratch catalog (seeded from
    ``db`` when given) so later statements resolve against them; every
    query, view, and DML statement is compiled and schema-checked.
    Diagnostics carry source positions wherever the front end provides
    them.

    ``engine`` selects the scratch catalog's execution mode (compiled /
    interpreted / vectorized / sqlite).  All diagnostics are *static* —
    schema checks and derived properties over the algebra tree — so the
    engine must never change what fires; the flag exists so CI can
    assert exactly that (and so linting never instantiates an engine
    the caller isn't running).
    """
    from repro.sqlfront.compiler import (
        compile_delete,
        compile_insert,
        compile_query,
        compile_update,
        compile_view,
    )
    from repro.core.transactions import UserTransaction

    report = AnalysisReport()
    catalog = db.clone() if db is not None else Database(exec_mode=engine)
    try:
        statements = parse_script(source)
    except ParseError as exc:
        report.add("RVM001", Severity.ERROR, str(exc), position=exc.position)
        return report
    for index, statement in enumerate(statements):
        path = f"stmt{index}" if len(statements) > 1 else "Q"
        try:
            if isinstance(statement, CreateTable):
                catalog.create_table(statement.name, statement.columns)
            elif isinstance(statement, CreateView):
                if isinstance(statement.query, SelectCore) and statement.query.is_aggregate():
                    continue  # aggregate views are checked by their own compiler
                view = compile_view(statement, catalog)
                report.extend(check_expr(view.query, catalog, root=statement.name))
                if not catalog.has_table(statement.name):
                    catalog.create_table(statement.name, view.query.schema())
            elif isinstance(statement, (SelectCore, SetOp)):
                if isinstance(statement, SelectCore) and statement.is_aggregate():
                    continue  # aggregate queries are checked by their own compiler
                expr = compile_query(statement, catalog)
                report.extend(check_expr(expr, catalog, root=path))
            elif isinstance(statement, InsertStatement):
                compile_insert(statement, catalog, UserTransaction(catalog))
            elif isinstance(statement, DeleteStatement):
                compile_delete(statement, catalog, UserTransaction(catalog))
            elif isinstance(statement, UpdateStatement):
                compile_update(statement, catalog, UserTransaction(catalog))
        except SchemaError as exc:
            _schema_error_diagnostic(report, exc, path=path)
        except ParseError as exc:
            report.add("RVM001", Severity.ERROR, str(exc), path=path, position=exc.position)
        except ReproError as exc:
            report.add("RVM109", Severity.ERROR, str(exc), path=path)
    return report


# ----------------------------------------------------------------------
# Example files
# ----------------------------------------------------------------------


def _load_module(path: str):
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(f"repro_lint_target_{name}", path)
    if spec is None or spec.loader is None:
        raise ReproError(f"cannot load {path!r} for linting")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _state_bug_fixture_report() -> AnalysisReport:
    """Run both state-bug detectors on the canonical Example 1.3 fixture.

    Used to *verify* a static hit on ``baselines.preupdate_bug`` before
    flagging a file that reaches it: the misread substitution must fail
    the polarity check and the buggy refresh pair must fail the
    PAST-state oracle.
    """
    from repro.algebra.expr import Monus
    from repro.baselines.preupdate_bug import (
        _log_as_transaction_substitution,
        buggy_post_update_delta,
    )
    from repro.core.logs import Log

    db = Database()
    r = db.create_table("R", ("A",), rows=[("a",), ("b",), ("c",)])
    s = db.create_table("S", ("A",), rows=[("c",), ("d",)])
    log = Log(db, ("R", "S"), owner="lint_fixture")
    log.install()
    query = Monus(r, s)
    report = AnalysisReport()
    report.extend(check_log_polarity(_log_as_transaction_substitution(log, db), log))
    delete, insert = buggy_post_update_delta(log, db, query)
    report.extend(audit_refresh_pair(log, query, delete, insert))
    return report


def lint_example(path: str, *, engine: str | None = None) -> AnalysisReport:
    """Lint one ``examples/*.py`` file.

    The file declares the SQL it runs via module-level ``LINT_SCHEMA``
    (CREATE TABLE statements) and ``LINT_QUERIES`` (named queries /
    views); each query is linted against the declared schema.  Files
    that reach :mod:`repro.baselines.preupdate_bug` are additionally run
    through the state-bug detectors on the canonical fixture.
    """
    report = AnalysisReport()
    with open(path) as handle:
        source_text = handle.read()
    try:
        module = _load_module(path)
    except Exception as exc:  # pragma: no cover - defensive
        report.add("RVM109", Severity.ERROR, f"cannot import {path!r}: {exc}")
        return report
    schema_sql = getattr(module, "LINT_SCHEMA", "")
    queries = getattr(module, "LINT_QUERIES", {})
    for name, sql in queries.items():
        script = f"{schema_sql};\n{sql}" if schema_sql else sql
        sub_report = lint_sql(script, engine=engine)
        for diagnostic in sub_report:
            report.add(
                diagnostic.code,
                diagnostic.severity,
                diagnostic.message,
                path=f"{name}" if diagnostic.path in (None, "Q") else f"{name}.{diagnostic.path}",
                position=diagnostic.position,
            )
    if "preupdate_bug" in source_text:
        fixture = _state_bug_fixture_report()
        if fixture.errors:
            for diagnostic in fixture.errors:
                report.add(
                    diagnostic.code,
                    diagnostic.severity,
                    f"{os.path.basename(path)} exercises the pre-update baseline: {diagnostic.message}",
                    path=diagnostic.path,
                )
    return report


# ----------------------------------------------------------------------
# Experiment queries (E1–E16)
# ----------------------------------------------------------------------


def experiment_queries() -> dict[str, tuple[str, str]]:
    """Named ``(schema_sql, query_sql)`` pairs behind the E1–E16 experiments."""
    from repro.workloads.orders import (
        EMPTY_ORDERS_SQL,
        LINEITEMS_ATTRS,
        OPEN_ORDER_LINES_SQL,
        ORDER_IDS_SQL,
        ORDERS_ATTRS,
    )
    from repro.workloads.retail import CUSTOMER_ATTRS, SALES_ATTRS, VIEW_SQL

    retail_schema = (
        f"CREATE TABLE customer ({', '.join(CUSTOMER_ATTRS)});\n"
        f"CREATE TABLE sales ({', '.join(SALES_ATTRS)})"
    )
    orders_schema = (
        f"CREATE TABLE orders ({', '.join(ORDERS_ATTRS)});\n"
        f"CREATE TABLE lineitems ({', '.join(LINEITEMS_ATTRS)})"
    )
    return {
        "retail.V": (retail_schema, VIEW_SQL),
        "orders.open_order_lines": (orders_schema, OPEN_ORDER_LINES_SQL),
        "orders.order_ids": (orders_schema, ORDER_IDS_SQL),
        "orders.empty_orders": (orders_schema, EMPTY_ORDERS_SQL),
    }


def lint_experiments(*, engine: str | None = None) -> AnalysisReport:
    """Lint every named experiment query; all must come back clean."""
    report = AnalysisReport()
    for name, (schema_sql, query_sql) in experiment_queries().items():
        sub_report = lint_sql(f"{schema_sql};\n{query_sql}", engine=engine)
        for diagnostic in sub_report:
            report.add(
                diagnostic.code,
                diagnostic.severity,
                diagnostic.message,
                path=f"{name}" if diagnostic.path in (None, "Q") else f"{name}.{diagnostic.path}",
                position=diagnostic.position,
            )
    return report


# ----------------------------------------------------------------------
# Concurrency / effect suite (RVM6xx)
# ----------------------------------------------------------------------


def lint_concurrency(path: str | None = None, *, engine: str | None = None) -> AnalysisReport:
    """Run the RVM6xx concurrency suite.

    With no ``path``, lints the *clean* canonical stack: the static
    effect/lock-coverage pass over all four scenarios plus the dynamic
    lockset-sanitizer probes — an empty report is the healthy outcome.

    With a ``path`` to a Python file, the file's ``CONCURRENCY_MUTATION``
    declaration (if any) selects a seeded fault from
    :mod:`repro.analysis.mutations` and the suite runs *under* that
    fault — here a **non-empty** report is the healthy outcome, and the
    fixture files under ``examples/mutations/`` encode exactly that.
    Files without the declaration get the static pass over the clean
    stack.
    """
    from repro.analysis.concurrency_check import demo_stack_report
    from repro.analysis.mutations import run_clean, run_mutation

    exec_mode = engine if engine is not None else "compiled"
    if path is None:
        report = demo_stack_report(exec_mode=exec_mode)
        return report.extend(run_clean(exec_mode=exec_mode))
    module = _load_module(path)
    mutation = getattr(module, "CONCURRENCY_MUTATION", None)
    if mutation is not None:
        return run_mutation(mutation, exec_mode=exec_mode)
    return demo_stack_report(exec_mode=exec_mode)


# ----------------------------------------------------------------------
# Command line
# ----------------------------------------------------------------------

_USAGE = """usage: python -m repro lint [options] [target ...]

Targets:
  file.sql         lint a SQL statement or script
  file.py          lint an example file (LINT_SCHEMA/LINT_QUERIES manifest
                   + state-bug detection)
  "SELECT ..."     lint SQL given directly on the command line

Options:
  --experiments    lint the named E1-E16 experiment queries
  --concurrency    run the RVM6xx concurrency/effect suite; alone it lints
                   the clean demo stack (must be empty), on a .py target it
                   honours the file's CONCURRENCY_MUTATION declaration
  --engine MODE    execution mode for the scratch catalog (compiled /
                   interpreted / vectorized / sqlite); diagnostics are
                   static and must not depend on it
  --json           emit machine-readable JSON instead of text
  --strict         exit 1 on warnings (errors always exit 2)
  --verbose        show info-level notes too

Exit status: 0 clean, 1 warnings under --strict, 2 errors or usage problems.
"""


def main(argv: list[str]) -> int:
    """``python -m repro lint`` entry point.  Returns the exit status."""
    import json as json_module

    from repro.exec import resolve_exec_mode

    strict = "--strict" in argv
    verbose = "--verbose" in argv
    experiments = "--experiments" in argv
    concurrency = "--concurrency" in argv
    as_json = "--json" in argv
    engine: str | None = None
    positional: list[str] = []
    arguments = iter(argv)
    for arg in arguments:
        if arg == "--engine":
            engine = next(arguments, None)
            if engine is None:
                print("--engine requires a mode argument")
                return 2
        elif arg.startswith("--engine="):
            engine = arg.split("=", 1)[1]
        elif not arg.startswith("--"):
            positional.append(arg)
    if engine is not None:
        try:
            engine = resolve_exec_mode(engine)
        except ReproError as exc:
            print(str(exc))
            return 2
    targets = positional
    if not targets and not experiments and not concurrency:
        print(_USAGE)
        return 2
    sections: list[tuple[str, AnalysisReport]] = []
    if experiments:
        sections.append(("experiments", lint_experiments(engine=engine)))
    if concurrency and not targets:
        sections.append(("concurrency", lint_concurrency(engine=engine)))
    for target in targets:
        if target.endswith(".py"):
            sections.append((target, lint_example(target, engine=engine)))
            if concurrency:
                sections.append((f"{target}:concurrency", lint_concurrency(target, engine=engine)))
        elif target.endswith(".sql"):
            with open(target) as handle:
                sections.append((target, lint_sql(handle.read(), engine=engine)))
        else:
            sections.append(("<sql>", lint_sql(target, engine=engine)))
    has_errors = any(report.errors for _, report in sections)
    has_warnings = any(report.warnings for _, report in sections)
    status = 2 if has_errors else (1 if strict and has_warnings else 0)
    if as_json:
        payload = {
            "status": status,
            "strict": strict,
            "sections": [
                {"target": label, "clean": not report.errors and not report.warnings}
                | report.to_dict()
                for label, report in sections
            ],
        }
        print(json_module.dumps(payload, indent=2))
        return status
    for label, report in sections:
        shown = list(report.errors) + list(report.warnings)
        if verbose:
            shown += list(report.infos)
        for diagnostic in shown:
            print(f"{label}: {diagnostic.format()}")
        if not shown:
            print(f"{label}: clean")
    return status
