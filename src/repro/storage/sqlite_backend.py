"""SQLite compilation backend.

An independent second implementation of the bag algebra, used to
cross-validate the in-memory evaluator and to run larger workloads:
every bag is stored / produced as rows ``(c0, …, c{n-1}, mult)`` with
``mult > 0`` (multiplicity encoding), and every
:class:`~repro.algebra.expr.Expr` compiles to a single SQLite ``SELECT``
over that encoding:

==============  ==================================================
operator        SQL strategy
==============  ==================================================
table ref       scan the multiplicity-encoded table
literal         ``VALUES`` list
σ (select)      ``WHERE`` over the child
Π (project)     ``GROUP BY`` projected columns, ``SUM(mult)``
ε (dedup)       ``GROUP BY`` all columns, ``mult = 1``
⊎ (union all)   ``UNION ALL`` (ungrouped — duplicates are fine)
∸ (monus)       ``LEFT JOIN`` with ``IS`` (null-safe) keys over
                canonicalized sides, keep ``lm - COALESCE(rm, 0) > 0``
× (product)     comma join, multiplicities multiply
==============  ==================================================

The compiler emits *planner-transparent* SQL: equality compiles to the
null-safe ``IS`` / ``IS NOT`` (which matches the in-memory engine's
``None == None`` semantics *and* SQLite can use as an indexable join
constraint), predicates are bare ``WHERE`` terms (SQL's unknown and
false both drop the row, so no ``COALESCE`` wrapper is needed — and
wrapping would blind the query planner to the join equalities inside),
and canonicalizing ``GROUP BY`` layers appear only where an operator
*requires* distinct rows (Π/ε aggregate by definition; ∸ compares
per-row multiplicities).  Everything else stays a flat
select/join/union-all pipeline that SQLite's flattener collapses into
single queries driven by indexes — which is what makes pushed-down
delta joins run in O(|delta|) probes instead of materializing every
operator boundary.

Intermediate results may therefore hold *duplicate* physical rows,
but multiplicities stay positive throughout (leaf scans are canonical
and ∸ filters its output), so ``SUM(mult)`` aggregations above remain
correct and the final Python-side accumulation nets exactly.

Caveat: SQLite's cross-*type* comparison semantics (total type ordering)
differ from the in-memory engine (ordered comparisons across types are
false).  Columns with homogeneous types — which includes everything the
workload generators produce — behave identically.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
from collections.abc import Callable, Iterable
from typing import Any

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.robustness.faults import fault_point
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.algebra.schema import Schema
from repro.errors import ReproError, SchemaError, UnknownTableError
from repro.storage.database import Database

__all__ = [
    "MirrorUnsupported",
    "SQLiteBackend",
    "SQLiteMirror",
    "compile_expr",
    "mirror_digest",
    "sqlite_supported_value",
]

#: Python types SQLite stores faithfully (round-trip preserves Bag
#: equality: bool maps to 0/1, which hashes equal to the original).
_SUPPORTED_TYPES = (bool, int, float, str)


def sqlite_supported_value(value: Any) -> bool:
    """Whether ``value`` survives a round trip through SQLite unchanged."""
    return value is None or isinstance(value, _SUPPORTED_TYPES)


def _normalize_row(row: Row) -> Row:
    # SQLite stores bool as 0/1; normalize so digests compare the same
    # logical content on both sides (True == 1 for Bag equality, but
    # repr-based hashing would tell them apart).
    return tuple(int(value) if isinstance(value, bool) else value for value in row)


def mirror_digest(content: Bag | Iterable[tuple[Row, int]]) -> str:
    """A stable digest of bag content under SQLite value normalization.

    Divergence detection hashes the canonical table and the mirrored
    rows through this one function, so the comparison is insensitive to
    SQLite's bool→int round trip and to physical row order.
    """
    pairs = content.items() if isinstance(content, Bag) else content
    counts: dict[Row, int] = {}
    for row, count in pairs:
        row = _normalize_row(row)
        counts[row] = counts.get(row, 0) + int(count)
    hasher = hashlib.sha256()
    for row, count in sorted(counts.items(), key=lambda item: repr(item[0])):
        if count == 0:
            continue
        hasher.update(repr(row).encode())
        hasher.update(b"\x00")
        hasher.update(str(count).encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


class MirrorUnsupported(ReproError):
    """A table holds values SQLite cannot represent faithfully."""


def _cols(arity: int, qualifier: str | None = None) -> list[str]:
    prefix = f"{qualifier}." if qualifier else ""
    return [f"{prefix}c{index}" for index in range(arity)]


def _sql_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def _compile_term(term: Term, schema: Schema, columns: list[str] | None = None) -> str:
    if isinstance(term, Attr):
        index = schema.index_of(term.name)
        return columns[index] if columns is not None else f"c{index}"
    if isinstance(term, Const):
        return _sql_value(term.value)
    if isinstance(term, Arith):
        left = _compile_term(term.left, schema, columns)
        right = _compile_term(term.right, schema, columns)
        if term.op == "/":
            # True division, NULL on zero divisor — matches the in-memory
            # engine (SQLite's native "/" is integer division on ints).
            return f"(CAST({left} AS REAL) / NULLIF({right}, 0))"
        return f"({left} {term.op} {right})"
    raise ReproError(f"unknown predicate term {type(term).__name__}")


def _compile_predicate(
    predicate: Predicate, schema: Schema, columns: list[str] | None = None
) -> str:
    if isinstance(predicate, TruePredicate):
        return "1 = 1"
    if isinstance(predicate, Comparison):
        left = _compile_term(predicate.left, schema, columns)
        right = _compile_term(predicate.right, schema, columns)
        # (In)equality is null-safe IS / IS NOT: it matches the
        # in-memory engine on None (None == None is true there, while
        # SQL "=" would return unknown) and the planner can still
        # drive index lookups with it.  Ordered comparisons stay bare —
        # NULL operands make them unknown, and WHERE drops unknown rows
        # just like the engine's false (the in-memory engine raises on
        # ordering None, so no behavior is being contradicted).
        if predicate.op == "=":
            return f"({left} IS {right})"
        if predicate.op == "!=":
            return f"({left} IS NOT {right})"
        return f"({left} {predicate.op} {right})"
    if isinstance(predicate, And):
        left = _compile_predicate(predicate.left, schema, columns)
        right = _compile_predicate(predicate.right, schema, columns)
        return f"({left} AND {right})"
    if isinstance(predicate, Or):
        left = _compile_predicate(predicate.left, schema, columns)
        right = _compile_predicate(predicate.right, schema, columns)
        return f"({left} OR {right})"
    if isinstance(predicate, Not):
        # SQL three-valued logic: NOT NULL is NULL, which WHERE drops —
        # but our engine treats NULL comparisons as plain false, so a
        # negated comparison must come back true.  COALESCE pins that.
        return f"(NOT COALESCE({_compile_predicate(predicate.operand, schema, columns)}, 0))"
    raise ReproError(f"unknown predicate node {type(predicate).__name__}")


def _mangle(name: str) -> str:
    """A safe SQL identifier for an internal table name."""
    return '"' + name.replace('"', '""') + '"'


def compile_expr(
    expr: Expr, *, scan: Callable[[str, int], str] | None = None, net: bool = False
) -> str:
    """Compile an expression to a SQLite ``SELECT`` producing
    ``c0 … c{n-1}, mult`` rows with positive multiplicities (the same
    logical row may span several physical rows; consumers must sum).

    ``scan`` overrides how a table reference compiles — the pushdown
    engine substitutes its :meth:`SQLiteMirror.scan_sql`; the default
    reads the canonical multiplicity encoding directly.  ``net`` adds
    one top-level regroup when the result is not already canonical, so
    only distinct rows cross the C/Python boundary.
    """
    sql, distinct = _compile(expr, scan)
    if net and not distinct and expr.schema().arity:
        cols = ", ".join(_cols(expr.schema().arity))
        sql = f"SELECT {cols}, SUM(mult) AS mult FROM ({sql}) GROUP BY {cols}"
    return sql


def _compile(expr: Expr, scan: Callable[[str, int], str] | None) -> tuple[str, bool]:
    """Compile to ``(sql, distinct)``.

    ``distinct`` records whether the produced rows are known canonical
    (one physical row per logical row).  Only the operators that compare
    or collapse multiplicities per row (∸, and the aggregating Π/ε)
    care; tracking it lets everything else skip re-grouping, keeping the
    emitted SQL flattenable by SQLite's planner.
    """
    if isinstance(expr, TableRef):
        arity = expr.table_schema.arity
        if scan is not None:
            # Both mirror scan shapes (plain canonical scan, netting
            # GROUP BY over the delta encoding) produce distinct rows.
            return scan(expr.name, arity), True
        cols = ", ".join(_cols(arity))
        return f"SELECT {cols}, mult FROM {_mangle(expr.name)}", True

    if isinstance(expr, Literal):
        arity = expr.literal_schema.arity
        if not expr.bag:
            zeros = ", ".join(f"NULL AS c{index}" for index in range(arity))
            return f"SELECT {zeros}, 0 AS mult WHERE 0", True
        rows = []
        for row, count in sorted(expr.bag.items(), key=lambda item: repr(item)):
            values = ", ".join([*(_sql_value(value) for value in row), str(count)])
            rows.append(f"({values})")
        # SQLite names VALUES columns column1..columnN; re-alias to c0..mult.
        aliases = ", ".join(
            [*(f"column{index + 1} AS c{index}" for index in range(arity)), f"column{arity + 1} AS mult"]
        )
        return f"SELECT {aliases} FROM (VALUES {', '.join(rows)})", True

    if isinstance(expr, Select):
        # Collapse σ-chains, and fuse σ(×) into a single SELECT … FROM
        # l, r WHERE … — a θ-join the planner sees whole.  Bare WHERE
        # conditions: SQL's unknown drops the row exactly like false,
        # and unwrapped comparisons are visible as join/index
        # constraints without any subquery flattening work at prepare
        # time.
        predicates = [expr.predicate]
        child = expr.child
        while isinstance(child, Select):
            predicates.append(child.predicate)
            child = child.child
        child_schema = child.schema()
        if isinstance(child, Product):
            left, left_distinct = _compile(child.left, scan)
            right, right_distinct = _compile(child.right, scan)
            left_arity = child.left.schema().arity
            columns = [
                *(f"l.c{index}" for index in range(left_arity)),
                *(f"r.c{index}" for index in range(child_schema.arity - left_arity)),
            ]
            outs = ", ".join(f"{column} AS c{index}" for index, column in enumerate(columns))
            condition = " AND ".join(
                _compile_predicate(predicate, child_schema, columns) for predicate in predicates
            )
            return (
                f"SELECT {outs}, l.mult * r.mult AS mult "
                f"FROM ({left}) AS l, ({right}) AS r WHERE {condition}"
            ), left_distinct and right_distinct
        sql, distinct = _compile(child, scan)
        condition = " AND ".join(
            _compile_predicate(predicate, child_schema) for predicate in predicates
        )
        return f"SELECT * FROM ({sql}) WHERE {condition}", distinct

    if isinstance(expr, Project):
        child, distinct = _compile(expr.child, scan)
        positions = expr.positions()
        outs = ", ".join(f"c{position} AS c{index}" for index, position in enumerate(positions))
        # Π is linear over the signed encoding: rows that become equal
        # under the projection may stay physically separate, so no
        # regroup here — the nonlinear boundaries (∸/ε) and the
        # top-level net canonicalize where it matters.  Skipping the
        # GROUP BY keeps the subquery flattenable, which is what lets
        # joins over renamed tables run on the mirror's real indexes
        # instead of per-query automatic ones.  The output is canonical
        # only when the projection is a permutation (injective on rows).
        injective = sorted(positions) == list(range(expr.child.schema().arity))
        return f"SELECT {outs}, mult FROM ({child})", distinct and injective

    if isinstance(expr, MapProject):
        child, _distinct = _compile(expr.child, scan)
        child_schema = expr.child.schema()
        outs = ", ".join(
            f"{_compile_term(term, child_schema)} AS c{index}" for index, term in enumerate(expr.terms)
        )
        # Linear, like Π — computed terms can merge rows, so the output
        # is conservatively non-canonical.
        return f"SELECT {outs}, mult FROM ({child})", False

    if isinstance(expr, DupElim):
        child, _distinct = _compile(expr.child, scan)
        arity = expr.schema().arity
        cols = ", ".join(_cols(arity))
        # Physical duplicates in the child collapse here, and all
        # multiplicities are positive, so every group survives as 1.
        return f"SELECT {cols}, 1 AS mult FROM ({child}) GROUP BY {cols}", True

    if isinstance(expr, UnionAll):
        left, _dl = _compile(expr.left, scan)
        right, _dr = _compile(expr.right, scan)
        # No re-grouping: downstream operators either tolerate duplicate
        # physical rows or canonicalize themselves.
        return f"SELECT * FROM ({left}) UNION ALL SELECT * FROM ({right})", False

    if isinstance(expr, Monus):
        left, left_distinct = _compile(expr.left, scan)
        right, right_distinct = _compile(expr.right, scan)
        arity = expr.schema().arity
        cols = _cols(arity)
        # ∸ subtracts per-row totals, so each side must be canonical;
        # group only the sides that are not already.
        if not left_distinct:
            left = f"SELECT {', '.join(cols)}, SUM(mult) AS mult FROM ({left}) GROUP BY {', '.join(cols)}"
        if not right_distinct:
            right = f"SELECT {', '.join(cols)}, SUM(mult) AS mult FROM ({right}) GROUP BY {', '.join(cols)}"
        join_keys = " AND ".join(f"l.c{index} IS r.c{index}" for index in range(arity))
        out_cols = ", ".join(f"l.c{index} AS c{index}" for index in range(arity))
        return (
            f"SELECT {out_cols}, l.mult - COALESCE(r.mult, 0) AS mult "
            f"FROM ({left}) AS l LEFT JOIN ({right}) AS r ON {join_keys} "
            f"WHERE l.mult - COALESCE(r.mult, 0) > 0"
        ), True

    if isinstance(expr, Product):
        left, left_distinct = _compile(expr.left, scan)
        right, right_distinct = _compile(expr.right, scan)
        left_arity = expr.left.schema().arity
        right_arity = expr.right.schema().arity
        left_cols = ", ".join(f"l.c{index} AS c{index}" for index in range(left_arity))
        right_cols = ", ".join(f"r.c{index} AS c{left_arity + index}" for index in range(right_arity))
        pieces = [piece for piece in (left_cols, right_cols) if piece]
        # Comma join, not CROSS JOIN: the CROSS keyword pins SQLite's
        # join order, while the comma form lets the planner reorder and
        # drive the join from whichever side has an index.
        return (
            f"SELECT {', '.join(pieces)}, l.mult * r.mult AS mult "
            f"FROM ({left}) AS l, ({right}) AS r"
        ), left_distinct and right_distinct

    raise ReproError(f"compile_expr: unknown expression node {type(expr).__name__}")


class SQLiteBackend:
    """Evaluate bag-algebra expressions in SQLite.

    Typical use: mirror a :class:`Database` with :meth:`sync_from`, then
    :meth:`evaluate` arbitrary expressions — or :meth:`cross_check` an
    expression against the in-memory engine.
    """

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")
        self._schemas: dict[str, Schema] = {}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> SQLiteBackend:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema | Iterable[str]) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        if name in self._schemas:
            raise SchemaError(f"table {name!r} already exists in the SQLite mirror")
        columns = ", ".join(f"c{index}" for index in range(schema.arity))
        self._conn.execute(f"CREATE TABLE {_mangle(name)} ({columns}, mult INTEGER NOT NULL)")
        self._schemas[name] = schema

    def load(self, name: str, bag: Bag) -> None:
        if name not in self._schemas:
            raise UnknownTableError(f"no such table in SQLite mirror: {name!r}")
        arity = self._schemas[name].arity
        self._conn.execute(f"DELETE FROM {_mangle(name)}")
        placeholders = ", ".join(["?"] * (arity + 1))
        self._conn.executemany(
            f"INSERT INTO {_mangle(name)} VALUES ({placeholders})",
            [(*row, count) for row, count in bag.items()],
        )
        self._conn.commit()

    def sync_from(self, db: Database) -> None:
        """Mirror every table of ``db`` (creating tables on first sync)."""
        for name in db.table_names():
            if name not in self._schemas:
                self.create_table(name, db.schema_of(name))
            self.load(name, db[name])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr) -> Bag:
        """Evaluate ``expr`` against the mirrored tables."""
        sql = compile_expr(expr)
        counts: dict[Row, int] = {}
        for *values, mult in self._conn.execute(sql):
            row = tuple(values)
            counts[row] = counts.get(row, 0) + int(mult)
        return Bag.from_counts(counts)

    def cross_check(self, db: Database, expr: Expr) -> bool:
        """Whether SQLite and the in-memory engine agree on ``expr``."""
        self.sync_from(db)
        return self.evaluate(expr) == db.evaluate(expr)


class SQLiteMirror:
    """An incrementally-maintained SQLite shadow of one database.

    The pushdown executor registers the mirror as a write listener on
    its :class:`~repro.storage.database.Database`.  Tables materialize
    lazily at the first pushdown scan and are then kept *canonical*
    (one physical row per distinct logical row, ``mult > 0``) through
    every write: each ``Bag.patch``-driven write folds its clamped
    per-row net into the stored table with an UPSERT over a unique
    index on the value columns (``INSERT ... ON CONFLICT DO UPDATE SET
    mult = mult + excluded.mult``), then drops the rows the patch drove
    to zero with a targeted delete.  That is O(|delta| · log |table|)
    per write — the index probes the paper charges an indexed
    maintenance strategy — and it means reads never pay a
    base-proportional consolidation step: :meth:`scan_sql` always
    compiles to a plain ``SELECT`` the query flattener can merge into
    the surrounding join, running on the mirror's indexes.

    Rows containing ``NULL`` take a per-row UPDATE-else-INSERT path
    (SQLite unique indexes treat NULLs as distinct, so the UPSERT
    cannot observe those conflicts); ``IS`` comparisons keep the
    matching consistent with Python's ``None == None``.  Zero-arity
    tables (no columns to constrain) take the same path.

    Wholesale replacements (``set_table``, recovery restores, rollback
    restores) mark the table dirty for a lazy full reload — except the
    replace-with-empty fast path (log truncation), which just clears
    the rows and keeps the mirror current.  Python values outside
    SQLite's faithful types (``None``/bool/int/float/str) cannot be
    mirrored; such tables raise :class:`MirrorUnsupported` from
    :meth:`ensure` and the executor falls back to the in-process
    kernels for subtrees that read them.

    One connection is shared across threads (the group scheduler's
    parallel leaders evaluate concurrently): hold :attr:`lock` around
    every ``ensure`` + ``execute`` pair; the listener methods take it
    internally.
    """

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:", check_same_thread=False, isolation_level=None)
        self._conn.execute("PRAGMA temp_store = MEMORY")
        self.lock = threading.RLock()
        self._schemas: dict[str, Schema] = {}
        self._dirty: set[str] = set()
        self._unsupported: set[str] = set()
        self._index_requests: dict[str, set[tuple[int, ...]]] = {}
        #: table -> PartitionSpec; partitioned tables carry a routed
        #: ``__part`` column (computed Python-side: the stable key hash
        #: is not expressible in SQL) plus a ``(__part, key)`` index, so
        #: affected-key restrictions run as indexed C scans.
        self._partitions: dict[str, Any] = {}

    def close(self) -> None:
        with self.lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # Write-listener protocol
    # ------------------------------------------------------------------

    def on_patch(self, name: str, delete: Bag, insert: Bag, before: Bag, after: Bag) -> None:
        with self.lock:
            if name in self._dirty or name in self._unsupported:
                return
            if name not in self._schemas:
                try:
                    self._adopt(name, before, after)
                except sqlite3.Error:
                    self._degrade(name)
                    return
                if name not in self._schemas:
                    return
            arity = self._schemas[name].arity
            net: dict[Row, int] = {}
            for row, count in insert.items():
                net[row] = net.get(row, 0) + count
            for row, count in delete.items():
                # Clamp against the pre-patch value (Bag.patch floors at
                # zero copies) so stored mults can never go negative:
                # final = max(0, before - delete) + insert
                #       = before + (insert - min(delete, before)).
                clamped = min(count, before.multiplicity(row))
                if clamped > 0:
                    net[row] = net.get(row, 0) - clamped
            net = {row: delta for row, delta in net.items() if delta != 0}
            if not net:
                return
            if not all(sqlite_supported_value(value) for row in net for value in row):
                self._forget(name)
                self._unsupported.add(name)
                return
            try:
                self._apply_net(name, arity, net)
            except sqlite3.Error:
                self._degrade(name)

    def _degrade(self, name: str) -> None:
        """Contain a backend fault on the listener path.

        The mirror is derived state: a failed incremental fold must
        never surface into the canonical write that triggered it
        (``Database._install`` would roll the whole transaction back for
        a cache's problem).  Mirrored tables fall back to a lazy full
        reload at the next scan; a half-adopted table is dropped
        entirely.  ``InjectedCrash`` is a ``BaseException`` and still
        propagates — containment absorbs backend errors, not simulated
        process deaths.
        """
        if name in self._schemas:
            self._dirty.add(name)
        else:
            try:
                self._forget(name)
            except sqlite3.Error:  # pragma: no cover - DROP TABLE failing too
                self._schemas.pop(name, None)
                self._dirty.discard(name)
        obs.metric_inc("mirror_degraded")

    def _adopt(self, name: str, before: Bag, after: Bag) -> None:
        """Mirror a table at its first write when that costs nothing.

        Tables whose first patch starts from an empty value — the
        maintenance logs above all — can be mirrored eagerly at zero
        load cost; every later write folds in at O(|delta| · log
        |table|), so the first post-write scan (typically the deferred
        refresh) pays no O(table) reload inside its own timed window.
        Tables already holding rows stay lazy: materializing them
        remains the first scan's one-time cost, and tables that are
        only ever written (a view's MV under direct state reads) never
        pay mirror upkeep at all.
        """
        if before:
            return
        sample = next(iter(after.items()), None)
        if sample is None:
            return
        fault_point("flaky-mirror-adopt")
        self._create_table(name, Schema(tuple(f"c{index}" for index in range(len(sample[0])))))

    def _part_of(self, name: str, row: Row) -> tuple:
        """``(partition_id,)`` suffix for a stored row, or ``()``."""
        spec = self._partitions.get(name)
        if spec is None:
            return ()
        return (spec.partition_of(row[spec.position]),)

    def _apply_net(self, name: str, arity: int, net: dict[Row, int]) -> None:
        """Fold per-row count deltas into the canonical stored table."""
        fault_point("flaky-mirror-upsert")
        mangled = _mangle(name)
        if arity:
            plain = [(row, delta) for row, delta in net.items() if None not in row]
            manual = [(row, delta) for row, delta in net.items() if None in row]
        else:
            plain, manual = [], list(net.items())
        extra = 1 if name in self._partitions else 0
        placeholders = ", ".join(["?"] * (arity + 1 + extra))
        if plain:
            conflict = ", ".join(_cols(arity))
            self._conn.executemany(
                f"INSERT INTO {mangled} VALUES ({placeholders}) "
                f"ON CONFLICT({conflict}) DO UPDATE SET mult = mult + excluded.mult",
                [(*row, delta, *self._part_of(name, row)) for row, delta in plain],
            )
        match = " AND ".join(f"c{index} IS ?" for index in range(arity)) or "1 = 1"
        for row, delta in manual:
            cursor = self._conn.execute(
                f"UPDATE {mangled} SET mult = mult + ? WHERE {match}", (delta, *row)
            )
            if cursor.rowcount == 0 and delta > 0:
                self._conn.execute(
                    f"INSERT INTO {mangled} VALUES ({placeholders})",
                    (*row, delta, *self._part_of(name, row)),
                )
        drops = [row for row, delta in net.items() if delta < 0]
        if drops:
            self._conn.executemany(f"DELETE FROM {mangled} WHERE {match} AND mult <= 0", drops)

    def on_replace(self, name: str, bag: Bag) -> None:
        with self.lock:
            self._unsupported.discard(name)
            if name not in self._schemas:
                return
            if not bag:
                # Log truncation: clearing in place is O(rows present)
                # in C and keeps the mirror current — cheaper than a
                # dirty-mark followed by an (empty) reload.
                self._conn.execute(f"DELETE FROM {_mangle(name)}")
                self._dirty.discard(name)
                return
            self._dirty.add(name)

    def on_drop(self, name: str) -> None:
        with self.lock:
            self._unsupported.discard(name)
            self._partitions.pop(name, None)
            if name in self._schemas:
                self._forget(name)

    def _forget(self, name: str) -> None:
        self._conn.execute(f"DROP TABLE IF EXISTS {_mangle(name)}")
        self._schemas.pop(name, None)
        self._dirty.discard(name)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def ensure(self, name: str, schema: Schema, bag: Bag) -> None:
        """Materialize or refresh the mirror of ``name`` before a scan.

        Raises :class:`MirrorUnsupported` when the table's values do not
        round-trip through SQLite.
        """
        with self.lock:
            if name in self._unsupported:
                raise MirrorUnsupported(f"table {name!r} holds values SQLite cannot mirror")
            created = name not in self._schemas
            if created:
                # Dirty until the first reload *succeeds*: if the load
                # below dies transiently (and the caller retries), the
                # empty shell must not pass for current content.
                self._dirty.add(name)
                self._create_table(name, schema)
            if created or name in self._dirty:
                self._reload(name, schema.arity, bag)

    def _create_table(self, name: str, schema: Schema) -> None:
        parts = ["__part INTEGER"] if name in self._partitions else []
        columns = ", ".join(
            [*(f"c{index}" for index in range(schema.arity)), "mult INTEGER NOT NULL", *parts]
        )
        self._conn.execute(f"CREATE TABLE {_mangle(name)} ({columns})")
        if schema.arity:
            # The UPSERT target: canonical tables have exactly one
            # physical row per distinct value tuple.
            cols = ", ".join(_cols(schema.arity))
            self._conn.execute(
                f"CREATE UNIQUE INDEX {_mangle('__mirror_pk__' + name)} "
                f"ON {_mangle(name)} ({cols})"
            )
        if parts:
            spec = self._partitions[name]
            self._conn.execute(
                f"CREATE INDEX {_mangle('__mirror_part__' + name)} "
                f"ON {_mangle(name)} (__part, c{spec.position})"
            )
        self._schemas[name] = schema
        for positions in self._index_requests.get(name, ()):
            self._create_index(name, positions)

    def _reload(self, name: str, arity: int, bag: Bag) -> None:
        fault_point("flaky-mirror-reload")
        rows = []
        for row, count in bag.items():
            if not all(sqlite_supported_value(value) for value in row):
                self._forget(name)
                self._unsupported.add(name)
                raise MirrorUnsupported(f"table {name!r} holds values SQLite cannot mirror")
            rows.append((*row, count, *self._part_of(name, row)))
        mangled = _mangle(name)
        extra = 1 if name in self._partitions else 0
        self._conn.execute(f"DELETE FROM {mangled}")
        placeholders = ", ".join(["?"] * (arity + 1 + extra))
        self._conn.executemany(f"INSERT INTO {mangled} VALUES ({placeholders})", rows)
        self._dirty.discard(name)

    def scan_sql(self, name: str, arity: int) -> str:
        """The ``scan`` hook for :func:`compile_expr`.

        Stored tables are canonical by construction (UPSERT-maintained
        writes), so a scan is a plain ``SELECT`` the query flattener
        can merge into the surrounding join — pushed-down equi-joins
        then probe the mirror's b-tree indexes instead of
        re-materializing a netting subquery per scan.
        """
        cols = ", ".join(_cols(arity))
        return f"SELECT {cols}, mult FROM {_mangle(name)}"

    def declare_partition(self, name: str, spec) -> None:
        """Adopt a partition layout for ``name``.

        A table mirrored before its declaration is rebuilt (dropped and
        lazily reloaded) so the stored rows gain the ``__part`` routing
        column and its ``(__part, key)`` index.  Re-declaring the same
        layout is a no-op, matching
        :meth:`~repro.storage.partition.PartitionedDatabase.declare_partitioning`.
        """
        with self.lock:
            existing = self._partitions.get(name)
            if existing is not None and existing.co_partitioned(spec):
                return
            self._partitions[name] = spec
            if name in self._schemas:
                schema = self._schemas[name]
                self._forget(name)
                self._create_table(name, schema)
                self._dirty.add(name)

    def restricted_rows(self, name: str, pids: Iterable[int], keys: Iterable) -> list[tuple] | None:
        """Rows of ``name`` whose key is in ``keys``, via the ``__part`` index.

        Returns ``None`` when the table is not currently mirrored clean
        (the caller falls back to the in-memory index), and raises
        nothing: this is a read-only pruning accelerator.
        """
        with self.lock:
            spec = self._partitions.get(name)
            if spec is None or name not in self._schemas or name in self._dirty:
                return None
            keys = list(keys)
            if any(key is None or not sqlite_supported_value(key) for key in keys):
                # NULL never matches IN; exotic keys never mirrored.
                return None
            pids = sorted(set(pids))
            if not keys or not pids:
                return []
            arity = self._schemas[name].arity
            cols = ", ".join(_cols(arity))
            part_marks = ", ".join(["?"] * len(pids))
            key_marks = ", ".join(["?"] * len(keys))
            sql = (
                f"SELECT {cols}, mult FROM {_mangle(name)} "
                f"WHERE __part IN ({part_marks}) AND c{spec.position} IN ({key_marks})"
            )
            return self._conn.execute(sql, (*pids, *keys)).fetchall()

    def request_index(self, name: str, positions: tuple[int, ...]) -> None:
        """Index the mirrored key columns, now or at materialization."""
        if not positions:
            return
        with self.lock:
            requested = self._index_requests.setdefault(name, set())
            if positions in requested:
                return
            requested.add(positions)
            if name in self._schemas:
                try:
                    self._create_index(name, positions)
                except sqlite3.Error:
                    # Indexes are an optimization: keep the request
                    # queued — :meth:`resync` retries it — and let the
                    # scan run unindexed meanwhile.
                    obs.metric_inc("mirror_degraded")

    def _create_index(self, name: str, positions: tuple[int, ...]) -> None:
        fault_point("flaky-index-create")
        label = _mangle(f"__mirror_idx__{name}__{'_'.join(map(str, positions))}")
        cols = ", ".join(f"c{position}" for position in positions)
        self._conn.execute(f"CREATE INDEX IF NOT EXISTS {label} ON {_mangle(name)} ({cols})")

    def execute(self, sql: str) -> list[tuple]:
        """Run a compiled query (hold :attr:`lock` across ensure+execute)."""
        return self._conn.execute(sql).fetchall()

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------

    def mirrored_tables(self) -> tuple[str, ...]:
        """The names this mirror currently materializes (sorted)."""
        with self.lock:
            return tuple(sorted(self._schemas))

    def to_bag(self, name: str) -> Bag:
        """The logical content of a mirrored table, netted into a bag."""
        with self.lock:
            if name not in self._schemas:
                raise UnknownTableError(f"no such table in SQLite mirror: {name!r}")
            cols = ", ".join([*_cols(self._schemas[name].arity), "mult"])
            rows = self._conn.execute(f"SELECT {cols} FROM {_mangle(name)}").fetchall()
        counts: dict[Row, int] = {}
        for *values, mult in rows:
            row = tuple(values)
            counts[row] = counts.get(row, 0) + int(mult)
        return Bag.from_counts(counts)

    def table_digest(self, name: str) -> str | None:
        """Digest of the stored rows, or ``None`` when absent or dirty.

        Dirty tables are *self-known* stale (a pending lazy reload), so
        there is no point hashing them — resync reloads them regardless.
        """
        with self.lock:
            if name not in self._schemas or name in self._dirty:
                return None
            cols = ", ".join([*_cols(self._schemas[name].arity), "mult"])
            rows = self._conn.execute(f"SELECT {cols} FROM {_mangle(name)}").fetchall()
        return mirror_digest((tuple(values), int(mult)) for *values, mult in rows)

    def divergent_tables(self, db: Database) -> list[str]:
        """Mirrored tables whose stored rows no longer match ``db``.

        Compares :func:`mirror_digest` of each *clean* mirrored table
        against the canonical content (dirty tables are already queued
        for reload and are not re-hashed; tables ``db`` has dropped
        count as divergent).  An empty result means every scan the
        pushdown engine could run would read exactly the canonical
        state — the re-promotion criterion of the engine governor's
        half-open probe.
        """
        diverged = []
        for name in self.mirrored_tables():
            with self.lock:
                if name in self._dirty:
                    continue
            if name not in db.table_names():
                diverged.append(name)
                continue
            if self.table_digest(name) != mirror_digest(db[name]):
                diverged.append(name)
        return diverged

    def resync(self, db: Database, names: Iterable[str] | None = None) -> list[str]:
        """Targeted repair: reload exactly the tables that need it.

        With ``names`` omitted, the targets are the divergent tables
        plus the dirty ones — everything else is left untouched, so a
        single corrupted table heals in O(|that table|), not O(DB).
        Dropped tables are forgotten, queued index requests are retried
        (a contained ``flaky-index-create`` leaves them pending), and
        tables whose values stopped round-tripping fall to the
        :class:`MirrorUnsupported` per-table fallback as usual.  Returns
        the sorted list of healed tables.
        """
        with self.lock:
            if names is None:
                targets = set(self.divergent_tables(db))
                targets.update(name for name in self._dirty if name in self._schemas)
            else:
                targets = {name for name in names if name in self._schemas}
            healed = []
            for name in sorted(targets):
                if name not in db.table_names():
                    self._forget(name)
                    self._index_requests.pop(name, None)
                    healed.append(name)
                    continue
                schema = db.schema_of(name)
                try:
                    self._reload(name, schema.arity, db[name])
                except MirrorUnsupported:
                    # _reload already forgot the table and recorded it
                    # unsupported; the executor's per-table fallback
                    # takes over from here.
                    continue
                for positions in self._index_requests.get(name, ()):
                    self._create_index(name, positions)
                healed.append(name)
            if healed:
                obs.metric_inc("mirror_resyncs", len(healed))
        return healed

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    def physical_rows(self, name: str) -> int:
        """Physical rows stored for ``name`` (canonical: one per distinct row)."""
        with self.lock:
            if name not in self._schemas:
                return 0
            (count,) = self._conn.execute(f"SELECT COUNT(*) FROM {_mangle(name)}").fetchone()
            return int(count)

    def is_mirrored(self, name: str) -> bool:
        """Whether ``name`` is materialized and current (not dirty)."""
        return name in self._schemas and name not in self._dirty
