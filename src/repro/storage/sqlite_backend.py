"""SQLite compilation backend.

An independent second implementation of the bag algebra, used to
cross-validate the in-memory evaluator and to run larger workloads:
every bag is stored / produced as rows ``(c0, …, c{n-1}, mult)`` with
``mult > 0`` (multiplicity encoding), and every
:class:`~repro.algebra.expr.Expr` compiles to a single SQLite ``SELECT``
over that encoding:

==============  ==================================================
operator        SQL strategy
==============  ==================================================
table ref       scan the multiplicity-encoded table
literal         ``VALUES`` list
σ (select)      ``WHERE`` over the child
Π (project)     ``GROUP BY`` projected columns, ``SUM(mult)``
ε (dedup)       ``GROUP BY`` all columns, ``mult = 1``
⊎ (union all)   ``UNION ALL`` then regroup
∸ (monus)       grouped ``LEFT JOIN`` with ``IS`` (null-safe) keys,
                keep ``lm - COALESCE(rm, 0) > 0``
× (product)     ``CROSS JOIN``, multiplicities multiply
==============  ==================================================

Caveat: SQLite's cross-*type* comparison semantics (total type ordering)
differ from the in-memory engine (ordered comparisons across types are
false).  Columns with homogeneous types — which includes everything the
workload generators produce — behave identically.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable
from typing import Any

from repro.algebra.bag import Bag, Row
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.algebra.schema import Schema
from repro.errors import ReproError, SchemaError, UnknownTableError
from repro.storage.database import Database

__all__ = ["SQLiteBackend", "compile_expr"]


def _cols(arity: int, qualifier: str | None = None) -> list[str]:
    prefix = f"{qualifier}." if qualifier else ""
    return [f"{prefix}c{index}" for index in range(arity)]


def _sql_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def _compile_term(term: Term, schema: Schema) -> str:
    if isinstance(term, Attr):
        return f"c{schema.index_of(term.name)}"
    if isinstance(term, Const):
        return _sql_value(term.value)
    if isinstance(term, Arith):
        left = _compile_term(term.left, schema)
        right = _compile_term(term.right, schema)
        if term.op == "/":
            # True division, NULL on zero divisor — matches the in-memory
            # engine (SQLite's native "/" is integer division on ints).
            return f"(CAST({left} AS REAL) / NULLIF({right}, 0))"
        return f"({left} {term.op} {right})"
    raise ReproError(f"unknown predicate term {type(term).__name__}")


def _compile_predicate(predicate: Predicate, schema: Schema) -> str:
    if isinstance(predicate, TruePredicate):
        return "1 = 1"
    if isinstance(predicate, Comparison):
        left = _compile_term(predicate.left, schema)
        right = _compile_term(predicate.right, schema)
        op = "<>" if predicate.op == "!=" else predicate.op
        return f"({left} {op} {right})"
    if isinstance(predicate, And):
        return f"({_compile_predicate(predicate.left, schema)} AND {_compile_predicate(predicate.right, schema)})"
    if isinstance(predicate, Or):
        return f"({_compile_predicate(predicate.left, schema)} OR {_compile_predicate(predicate.right, schema)})"
    if isinstance(predicate, Not):
        # SQL three-valued logic: NOT NULL is NULL, which WHERE drops —
        # but our engine treats NULL comparisons as plain false, so a
        # negated comparison must come back true.  COALESCE pins that.
        return f"(NOT COALESCE({_compile_predicate(predicate.operand, schema)}, 0))"
    raise ReproError(f"unknown predicate node {type(predicate).__name__}")


def _mangle(name: str) -> str:
    """A safe SQL identifier for an internal table name."""
    return '"' + name.replace('"', '""') + '"'


def compile_expr(expr: Expr) -> str:
    """Compile an expression to a SQLite ``SELECT`` producing
    ``c0 … c{n-1}, mult`` rows with positive multiplicities."""
    if isinstance(expr, TableRef):
        arity = expr.table_schema.arity
        cols = ", ".join(_cols(arity))
        return f"SELECT {cols}, mult FROM {_mangle(expr.name)}"

    if isinstance(expr, Literal):
        arity = expr.literal_schema.arity
        if not expr.bag:
            zeros = ", ".join(f"NULL AS c{index}" for index in range(arity))
            return f"SELECT {zeros}, 0 AS mult WHERE 0"
        rows = []
        for row, count in sorted(expr.bag.items(), key=lambda item: repr(item)):
            values = ", ".join([*(_sql_value(value) for value in row), str(count)])
            rows.append(f"({values})")
        # SQLite names VALUES columns column1..columnN; re-alias to c0..mult.
        aliases = ", ".join(
            [*(f"column{index + 1} AS c{index}" for index in range(arity)), f"column{arity + 1} AS mult"]
        )
        return f"SELECT {aliases} FROM (VALUES {', '.join(rows)})"

    if isinstance(expr, Select):
        child = compile_expr(expr.child)
        condition = _compile_predicate(expr.predicate, expr.child.schema())
        return f"SELECT * FROM ({child}) WHERE COALESCE({condition}, 0)"

    if isinstance(expr, Project):
        child = compile_expr(expr.child)
        positions = expr.positions()
        outs = ", ".join(f"c{position} AS c{index}" for index, position in enumerate(positions))
        group = ", ".join(f"c{position}" for position in dict.fromkeys(positions))
        return f"SELECT {outs}, SUM(mult) AS mult FROM ({child}) GROUP BY {group}"

    if isinstance(expr, MapProject):
        child = compile_expr(expr.child)
        child_schema = expr.child.schema()
        outs = ", ".join(
            f"{_compile_term(term, child_schema)} AS c{index}" for index, term in enumerate(expr.terms)
        )
        # Group by the output aliases (a bare literal in GROUP BY would be
        # read as a positional column index by SQLite).
        group = ", ".join(f"c{index}" for index in range(len(expr.terms)))
        return f"SELECT {outs}, SUM(mult) AS mult FROM ({child}) GROUP BY {group}"

    if isinstance(expr, DupElim):
        child = compile_expr(expr.child)
        arity = expr.schema().arity
        cols = ", ".join(_cols(arity))
        return f"SELECT {cols}, 1 AS mult FROM ({child}) GROUP BY {cols}"

    if isinstance(expr, UnionAll):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        arity = expr.schema().arity
        cols = ", ".join(_cols(arity))
        return (
            f"SELECT {cols}, SUM(mult) AS mult FROM "
            f"(SELECT * FROM ({left}) UNION ALL SELECT * FROM ({right})) GROUP BY {cols}"
        )

    if isinstance(expr, Monus):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        arity = expr.schema().arity
        cols = _cols(arity)
        grouped_left = f"SELECT {', '.join(cols)}, SUM(mult) AS mult FROM ({left}) GROUP BY {', '.join(cols)}"
        grouped_right = f"SELECT {', '.join(cols)}, SUM(mult) AS mult FROM ({right}) GROUP BY {', '.join(cols)}"
        join_keys = " AND ".join(f"l.c{index} IS r.c{index}" for index in range(arity))
        out_cols = ", ".join(f"l.c{index} AS c{index}" for index in range(arity))
        return (
            f"SELECT {out_cols}, l.mult - COALESCE(r.mult, 0) AS mult "
            f"FROM ({grouped_left}) AS l LEFT JOIN ({grouped_right}) AS r ON {join_keys} "
            f"WHERE l.mult - COALESCE(r.mult, 0) > 0"
        )

    if isinstance(expr, Product):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        left_arity = expr.left.schema().arity
        right_arity = expr.right.schema().arity
        left_cols = ", ".join(f"l.c{index} AS c{index}" for index in range(left_arity))
        right_cols = ", ".join(f"r.c{index} AS c{left_arity + index}" for index in range(right_arity))
        pieces = [piece for piece in (left_cols, right_cols) if piece]
        return (
            f"SELECT {', '.join(pieces)}, l.mult * r.mult AS mult "
            f"FROM ({left}) AS l CROSS JOIN ({right}) AS r"
        )

    raise ReproError(f"compile_expr: unknown expression node {type(expr).__name__}")


class SQLiteBackend:
    """Evaluate bag-algebra expressions in SQLite.

    Typical use: mirror a :class:`Database` with :meth:`sync_from`, then
    :meth:`evaluate` arbitrary expressions — or :meth:`cross_check` an
    expression against the in-memory engine.
    """

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")
        self._schemas: dict[str, Schema] = {}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> SQLiteBackend:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema | Iterable[str]) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        if name in self._schemas:
            raise SchemaError(f"table {name!r} already exists in the SQLite mirror")
        columns = ", ".join(f"c{index}" for index in range(schema.arity))
        self._conn.execute(f"CREATE TABLE {_mangle(name)} ({columns}, mult INTEGER NOT NULL)")
        self._schemas[name] = schema

    def load(self, name: str, bag: Bag) -> None:
        if name not in self._schemas:
            raise UnknownTableError(f"no such table in SQLite mirror: {name!r}")
        arity = self._schemas[name].arity
        self._conn.execute(f"DELETE FROM {_mangle(name)}")
        placeholders = ", ".join(["?"] * (arity + 1))
        self._conn.executemany(
            f"INSERT INTO {_mangle(name)} VALUES ({placeholders})",
            [(*row, count) for row, count in bag.items()],
        )
        self._conn.commit()

    def sync_from(self, db: Database) -> None:
        """Mirror every table of ``db`` (creating tables on first sync)."""
        for name in db.table_names():
            if name not in self._schemas:
                self.create_table(name, db.schema_of(name))
            self.load(name, db[name])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr) -> Bag:
        """Evaluate ``expr`` against the mirrored tables."""
        sql = compile_expr(expr)
        counts: dict[Row, int] = {}
        for *values, mult in self._conn.execute(sql):
            row = tuple(values)
            counts[row] = counts.get(row, 0) + int(mult)
        return Bag.from_counts(counts)

    def cross_check(self, db: Database, expr: Expr) -> bool:
        """Whether SQLite and the in-memory engine agree on ``expr``."""
        self.sync_from(db)
        return self.evaluate(expr) == db.evaluate(expr)
