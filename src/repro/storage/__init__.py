"""Storage substrate: database states, locks, and the SQLite backend."""

from repro.storage.database import Database
from repro.storage.locks import LockLedger, LockSection

__all__ = ["Database", "LockLedger", "LockSection"]
