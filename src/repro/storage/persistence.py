"""Durable storage: save and load :class:`Database` states to SQLite files.

A warehouse that defers maintenance holds real state between refreshes —
the materialized views, logs, and differential tables.  This module
persists a complete database (schemas, external/internal partition,
multiplicity-encoded contents) into a single SQLite file and restores it
bit-for-bit, so maintenance can resume after a restart.

Crash safety (see :mod:`repro.robustness`): a snapshot is written to a
temporary file in a **single SQLite transaction** and atomically
installed with :func:`os.replace`, so a crash at any instant leaves
either the complete old snapshot or the complete new one — never a torn
file.  Transient ``OperationalError: database is locked`` failures are
absorbed by :func:`with_retry` (exponential backoff).

File layout:

* ``__catalog__(name, attrs, internal)`` — one row per table; ``attrs``
  is the JSON-encoded attribute list;
* one data table per stored table (mangled name), with columns
  ``c0 … c{n-1}, mult`` — the same encoding as the SQLite evaluation
  backend, so saved files are also directly queryable with the
  ``sqlite3`` CLI.

Values must be SQLite-storable (int, float, str, bool, None); bools are
stored as tagged strings so they round-trip exactly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.schema import Schema
from repro.errors import ReproError
from repro.robustness.faults import fault_point
from repro.storage.database import Database

__all__ = ["save_database", "load_database", "with_retry", "staging_path"]

_CATALOG = "__catalog__"
_TRUE_TAG = "\x00bool:1"
_FALSE_TAG = "\x00bool:0"

_T = TypeVar("_T")


def with_retry(
    action: Callable[[], _T],
    *,
    attempts: int = 5,
    base_delay: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run ``action``, retrying transient SQLite lock errors with backoff.

    Only ``OperationalError`` mentioning a lock is retried — anything
    else (corruption, missing file, syntax) propagates immediately, as
    does the lock error itself once ``attempts`` are exhausted.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    for attempt in range(attempts):
        try:
            return action()
        except sqlite3.OperationalError as exc:
            if "locked" not in str(exc) or attempt == attempts - 1:
                raise
            obs.metric_inc("lock_retries")
            sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")


def staging_path(path: str | Path) -> Path:
    """The temporary file a snapshot is staged in before ``os.replace``."""
    path = Path(path)
    return path.with_name(path.name + ".saving")


def _mangle(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _encode(value: Any) -> Any:
    if value is True:
        return _TRUE_TAG
    if value is False:
        return _FALSE_TAG
    if value is None or isinstance(value, (int, float, str)):
        return value
    raise ReproError(f"cannot persist value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if value == _TRUE_TAG:
        return True
    if value == _FALSE_TAG:
        return False
    return value


def _write_snapshot(db: Database, target: Path) -> None:
    """Write the full state into ``target`` as one SQLite transaction."""
    fault_point("flaky-save")
    if target.exists():
        target.unlink()
    conn = sqlite3.connect(target)
    try:
        conn.execute("PRAGMA synchronous=FULL")
        # Explicit transaction control: the sqlite3 module's implicit
        # transaction handling differs across Python versions around
        # DDL, and the whole snapshot must be one all-or-nothing unit.
        conn.isolation_level = None
        conn.execute("BEGIN")
        conn.execute(f"CREATE TABLE {_CATALOG} (name TEXT PRIMARY KEY, attrs TEXT, internal INTEGER)")
        for name in db.table_names():
            schema = db.schema_of(name)
            conn.execute(
                f"INSERT INTO {_CATALOG} VALUES (?, ?, ?)",
                (name, json.dumps(list(schema.attributes)), int(db.is_internal(name))),
            )
            columns = ", ".join(f"c{index}" for index in range(schema.arity))
            trailer = f"{columns}, mult INTEGER" if schema.arity else "mult INTEGER"
            conn.execute(f"CREATE TABLE {_mangle(name)} ({trailer})")
            placeholders = ", ".join(["?"] * (schema.arity + 1))
            conn.executemany(
                f"INSERT INTO {_mangle(name)} VALUES ({placeholders})",
                (
                    (*(_encode(value) for value in row), count)
                    for row, count in db[name].items()
                ),
            )
        conn.execute("COMMIT")
    finally:
        conn.close()


def save_database(db: Database, path: str | Path) -> None:
    """Atomically write the full database state to ``path`` (overwrites).

    The snapshot is staged in a sibling temp file and installed with
    ``os.replace`` — readers (and a recovering process) always see a
    complete snapshot, even if this process dies mid-save.
    """
    path = Path(path)
    staged = staging_path(path)
    with_retry(lambda: _write_snapshot(db, staged))
    fault_point("crash-mid-checkpoint")
    os.replace(staged, path)


def load_database(path: str | Path) -> Database:
    """Reconstruct a database previously written by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no database file at {path}")

    def read() -> Database:
        conn = sqlite3.connect(path)
        try:
            db = Database()
            catalog = conn.execute(
                f"SELECT name, attrs, internal FROM {_CATALOG} ORDER BY name"
            ).fetchall()
            for name, attrs_json, internal in catalog:
                schema = Schema(json.loads(attrs_json))
                counts: dict[Row, int] = {}
                for *values, mult in conn.execute(f"SELECT * FROM {_mangle(name)}"):
                    row = tuple(_decode(value) for value in values)
                    counts[row] = counts.get(row, 0) + int(mult)
                db.create_table(name, schema, internal=bool(internal))
                db.set_table(name, Bag.from_counts(counts))
            return db
        finally:
            conn.close()

    db = with_retry(read)
    # Stamp the provenance so install-time lint (RVM401) can warn when
    # views are defined on persistent state without journaling.
    db.durable_origin = path
    return db
