"""Durable storage: save and load :class:`Database` states to SQLite files.

A warehouse that defers maintenance holds real state between refreshes —
the materialized views, logs, and differential tables.  This module
persists a complete database (schemas, external/internal partition,
multiplicity-encoded contents) into a single SQLite file and restores it
bit-for-bit, so maintenance can resume after a restart.

Crash safety (see :mod:`repro.robustness`): a snapshot is written to a
temporary file in a **single SQLite transaction** and atomically
installed with :func:`os.replace`, so a crash at any instant leaves
either the complete old snapshot or the complete new one — never a torn
file.  Transient ``OperationalError: database is locked`` failures are
absorbed by :func:`with_retry` (exponential backoff).

File layout:

* ``__catalog__(name, attrs, internal)`` — one row per table; ``attrs``
  is the JSON-encoded attribute list;
* one data table per stored table (mangled name), with columns
  ``c0 … c{n-1}, mult`` — the same encoding as the SQLite evaluation
  backend, so saved files are also directly queryable with the
  ``sqlite3`` CLI.

Values must be SQLite-storable (int, float, str, bool, None); bools are
stored as tagged strings so they round-trip exactly.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.schema import Schema
from repro.errors import ReproError
from repro.robustness.faults import fault_point
from repro.storage.database import Database

__all__ = [
    "save_database",
    "load_database",
    "with_retry",
    "staging_path",
    "RetryPolicy",
    "RETRY_POLICY",
    "transient_sqlite_error",
]

_CATALOG = "__catalog__"
_TRUE_TAG = "\x00bool:1"
_FALSE_TAG = "\x00bool:0"

_T = TypeVar("_T")

#: Substrings of ``sqlite3.OperationalError`` messages that mark a
#: *transient* condition — another connection holds the file, or the OS
#: hiccuped — as opposed to permanent failures (corruption, missing
#: table, bad SQL), which no amount of retrying fixes.
_TRANSIENT_MARKERS = ("locked", "busy", "disk i/o error")


def transient_sqlite_error(exc: BaseException) -> bool:
    """The default retry classifier: transient SQLite contention errors."""
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc).lower() for marker in _TRANSIENT_MARKERS
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff under a total-deadline cap.

    ``classifier`` decides which exceptions are worth retrying; anything
    it rejects propagates immediately.  Per-attempt delay grows as
    ``base_delay * 2**attempt`` (capped at ``max_delay``), stretched by
    a random factor in ``[1, 1 + jitter]`` so independent retriers do
    not thunder in lockstep.  The policy gives up — re-raising the last
    transient error — after ``attempts`` tries *or* once the attempts
    plus the pending sleep would exceed ``deadline`` seconds, whichever
    comes first.
    """

    attempts: int = 5
    base_delay: float = 0.01
    max_delay: float = 1.0
    deadline: float | None = 10.0
    jitter: float = 0.25
    classifier: Callable[[BaseException], bool] = transient_sqlite_error

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        delay = min(self.base_delay * (2**attempt), self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def run(
        self,
        action: Callable[[], _T],
        *,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> _T:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        rng = rng if rng is not None else random.Random()
        start = clock()
        for attempt in range(self.attempts):
            try:
                return action()
            except Exception as exc:
                if not self.classifier(exc) or attempt == self.attempts - 1:
                    raise
                delay = self.delay_for(attempt, rng)
                if self.deadline is not None and clock() - start + delay > self.deadline:
                    raise
                obs.metric_inc("lock_retries")
                sleep(delay)
        raise AssertionError("unreachable")


#: The shared default policy: snapshot writes, journal connections, and
#: the engine governor's per-tier evaluation retries all run under it.
RETRY_POLICY = RetryPolicy()


def with_retry(
    action: Callable[[], _T],
    *,
    attempts: int = 5,
    base_delay: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
    classifier: Callable[[BaseException], bool] | None = None,
    policy: RetryPolicy | None = None,
) -> _T:
    """Run ``action``, retrying transient errors with jittered backoff.

    The classifier (default :func:`transient_sqlite_error`) decides what
    counts as transient — anything else (corruption, missing file,
    syntax) propagates immediately, as does the transient error itself
    once ``attempts`` or the policy's total deadline are exhausted.
    Pass ``policy`` to override every knob at once.
    """
    if policy is None:
        policy = replace(
            RETRY_POLICY,
            attempts=attempts,
            base_delay=base_delay,
            classifier=classifier if classifier is not None else transient_sqlite_error,
        )
    return policy.run(action, sleep=sleep)


def staging_path(path: str | Path) -> Path:
    """The temporary file a snapshot is staged in before ``os.replace``."""
    path = Path(path)
    return path.with_name(path.name + ".saving")


def _mangle(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _encode(value: Any) -> Any:
    if value is True:
        return _TRUE_TAG
    if value is False:
        return _FALSE_TAG
    if value is None or isinstance(value, (int, float, str)):
        return value
    raise ReproError(f"cannot persist value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if value == _TRUE_TAG:
        return True
    if value == _FALSE_TAG:
        return False
    return value


def _write_snapshot(db: Database, target: Path) -> None:
    """Write the full state into ``target`` as one SQLite transaction."""
    fault_point("flaky-save")
    if target.exists():
        target.unlink()
    conn = sqlite3.connect(target)
    try:
        conn.execute("PRAGMA synchronous=FULL")
        # Explicit transaction control: the sqlite3 module's implicit
        # transaction handling differs across Python versions around
        # DDL, and the whole snapshot must be one all-or-nothing unit.
        conn.isolation_level = None
        conn.execute("BEGIN")
        conn.execute(f"CREATE TABLE {_CATALOG} (name TEXT PRIMARY KEY, attrs TEXT, internal INTEGER)")
        for name in db.table_names():
            schema = db.schema_of(name)
            conn.execute(
                f"INSERT INTO {_CATALOG} VALUES (?, ?, ?)",
                (name, json.dumps(list(schema.attributes)), int(db.is_internal(name))),
            )
            columns = ", ".join(f"c{index}" for index in range(schema.arity))
            trailer = f"{columns}, mult INTEGER" if schema.arity else "mult INTEGER"
            conn.execute(f"CREATE TABLE {_mangle(name)} ({trailer})")
            placeholders = ", ".join(["?"] * (schema.arity + 1))
            conn.executemany(
                f"INSERT INTO {_mangle(name)} VALUES ({placeholders})",
                (
                    (*(_encode(value) for value in row), count)
                    for row, count in db[name].items()
                ),
            )
        conn.execute("COMMIT")
    finally:
        conn.close()


def save_database(db: Database, path: str | Path) -> None:
    """Atomically write the full database state to ``path`` (overwrites).

    The snapshot is staged in a sibling temp file and installed with
    ``os.replace`` — readers (and a recovering process) always see a
    complete snapshot, even if this process dies mid-save.
    """
    path = Path(path)
    staged = staging_path(path)
    with_retry(lambda: _write_snapshot(db, staged))
    fault_point("crash-mid-checkpoint")
    os.replace(staged, path)


def load_database(path: str | Path, *, exec_mode: str | None = None) -> Database:
    """Reconstruct a database previously written by :func:`save_database`.

    ``exec_mode`` selects the execution engine of the reconstructed
    database (the snapshot file stores no engine choice — it is a
    runtime property, not data).
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no database file at {path}")

    def read() -> Database:
        conn = sqlite3.connect(path)
        try:
            db = Database(exec_mode=exec_mode)
            catalog = conn.execute(
                f"SELECT name, attrs, internal FROM {_CATALOG} ORDER BY name"
            ).fetchall()
            for name, attrs_json, internal in catalog:
                schema = Schema(json.loads(attrs_json))
                counts: dict[Row, int] = {}
                for *values, mult in conn.execute(f"SELECT * FROM {_mangle(name)}"):
                    row = tuple(_decode(value) for value in values)
                    counts[row] = counts.get(row, 0) + int(mult)
                db.create_table(name, schema, internal=bool(internal))
                db.set_table(name, Bag.from_counts(counts))
            return db
        finally:
            conn.close()

    db = with_retry(read)
    # Stamp the provenance so install-time lint (RVM401) can warn when
    # views are defined on persistent state without journaling.
    db.durable_origin = path
    return db
