"""Durable storage: save and load :class:`Database` states to SQLite files.

A warehouse that defers maintenance holds real state between refreshes —
the materialized views, logs, and differential tables.  This module
persists a complete database (schemas, external/internal partition,
multiplicity-encoded contents) into a single SQLite file and restores it
bit-for-bit, so maintenance can resume after a restart.

File layout:

* ``__catalog__(name, attrs, internal)`` — one row per table; ``attrs``
  is the JSON-encoded attribute list;
* one data table per stored table (mangled name), with columns
  ``c0 … c{n-1}, mult`` — the same encoding as the SQLite evaluation
  backend, so saved files are also directly queryable with the
  ``sqlite3`` CLI.

Values must be SQLite-storable (int, float, str, bool, None); bools are
stored as tagged strings so they round-trip exactly.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any

from repro.algebra.bag import Bag, Row
from repro.algebra.schema import Schema
from repro.errors import ReproError
from repro.storage.database import Database

__all__ = ["save_database", "load_database"]

_CATALOG = "__catalog__"
_TRUE_TAG = "\x00bool:1"
_FALSE_TAG = "\x00bool:0"


def _mangle(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _encode(value: Any) -> Any:
    if value is True:
        return _TRUE_TAG
    if value is False:
        return _FALSE_TAG
    if value is None or isinstance(value, (int, float, str)):
        return value
    raise ReproError(f"cannot persist value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if value == _TRUE_TAG:
        return True
    if value == _FALSE_TAG:
        return False
    return value


def save_database(db: Database, path: str | Path) -> None:
    """Write the full database state to ``path`` (overwrites)."""
    path = Path(path)
    if path.exists():
        path.unlink()
    conn = sqlite3.connect(path)
    try:
        conn.execute(f"CREATE TABLE {_CATALOG} (name TEXT PRIMARY KEY, attrs TEXT, internal INTEGER)")
        for name in db.table_names():
            schema = db.schema_of(name)
            conn.execute(
                f"INSERT INTO {_CATALOG} VALUES (?, ?, ?)",
                (name, json.dumps(list(schema.attributes)), int(db.is_internal(name))),
            )
            columns = ", ".join(f"c{index}" for index in range(schema.arity))
            trailer = f"{columns}, mult INTEGER" if schema.arity else "mult INTEGER"
            conn.execute(f"CREATE TABLE {_mangle(name)} ({trailer})")
            placeholders = ", ".join(["?"] * (schema.arity + 1))
            conn.executemany(
                f"INSERT INTO {_mangle(name)} VALUES ({placeholders})",
                (
                    (*(_encode(value) for value in row), count)
                    for row, count in db[name].items()
                ),
            )
        conn.commit()
    finally:
        conn.close()


def load_database(path: str | Path) -> Database:
    """Reconstruct a database previously written by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no database file at {path}")
    conn = sqlite3.connect(path)
    try:
        db = Database()
        catalog = conn.execute(f"SELECT name, attrs, internal FROM {_CATALOG} ORDER BY name").fetchall()
        for name, attrs_json, internal in catalog:
            schema = Schema(json.loads(attrs_json))
            counts: dict[Row, int] = {}
            for *values, mult in conn.execute(f"SELECT * FROM {_mangle(name)}"):
                row = tuple(_decode(value) for value in values)
                counts[row] = counts.get(row, 0) + int(mult)
            db.create_table(name, schema, internal=bool(internal))
            db.set_table(name, Bag.from_counts(counts))
        return db
    finally:
        conn.close()
