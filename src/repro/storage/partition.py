"""Partitioned database states: hash/range partitioning with pruned applies.

A :class:`PartitionedDatabase` is a :class:`~repro.storage.database.Database`
whose declared tables are additionally *sliced* into partitions keyed by
one column (the **partition key**).  The slices buy two things the flat
state cannot:

* **delta-proportional applies** — :meth:`PartitionedDatabase.apply_parts`
  installs a maintenance patch by mutating only the slices of the
  partitions whose keys appear in the delta, instead of copying the
  whole table dict the way :meth:`Bag.patch` must.  The flat logical bag
  is marked stale and rebuilt lazily on the next whole-table read, so a
  refresh epoch never pays O(|table|);
* **partition pruning** — the affected-key sets the maintenance logs
  induce (:meth:`affected_keys`) let the exec compiler replace
  full-table scans with restricted literals
  (:mod:`repro.analysis.partitioning`), touching only the partitions
  whose keys appear in the pending delta.

Two partitioning schemes are supported:

* ``hash`` — a deterministic hash of the key value modulo ``parts``
  (stable across processes, unlike built-in ``hash`` on strings);
* ``range`` — ``bounds`` is a sorted sequence of cut points; partition
  ``i`` holds keys in ``(bounds[i-1], bounds[i]]`` (``parts`` is then
  ``len(bounds) + 1``).

Tables that share a *domain* (same key meaning, same scheme and part
count) are **co-partitioned**: an equi-join on their keys never crosses
partitions, which is what makes per-partition maintenance sound.

Crash safety: :meth:`apply_parts` applies partitions one at a time with
a ``crash-mid-partition-apply`` fault point between them, and rolls the
epoch back completely — slices, cleared tables, version stamps, indexes
and engine mirrors — if any step raises, mirroring the all-or-nothing
contract of :meth:`Database._install`.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from collections.abc import Iterable, Mapping
from typing import Any

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr
from repro.errors import SchemaError, UnknownTableError
from repro.exec import SQLITE
from repro.robustness.faults import fault_point
from repro.storage.database import Database

__all__ = ["PartitionSpec", "PartitionedDatabase"]

_SCHEMES = ("hash", "range")


def stable_key_hash(value: Any) -> int:
    """A process-stable hash for partition routing.

    Built-in ``hash`` is salted per process for strings, which would
    make partition membership (and therefore benchmark plans and crash
    schedules) irreproducible across runs.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value if value >= 0 else -value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    return zlib.crc32(repr(value).encode("utf-8", "surrogatepass"))


class PartitionSpec:
    """How one table is partitioned: key column, scheme, part count."""

    __slots__ = ("table", "key", "position", "parts", "scheme", "bounds", "domain")

    def __init__(
        self,
        table: str,
        key: str,
        position: int,
        parts: int,
        scheme: str = "hash",
        bounds: tuple | None = None,
        domain: str | None = None,
    ) -> None:
        if scheme not in _SCHEMES:
            raise SchemaError(f"unknown partition scheme {scheme!r} (expected one of {_SCHEMES})")
        if scheme == "range":
            if not bounds:
                raise SchemaError("range partitioning needs at least one bound")
            bounds = tuple(bounds)
            if list(bounds) != sorted(bounds):
                raise SchemaError(f"range bounds must be sorted, got {bounds!r}")
            parts = len(bounds) + 1
        elif parts < 1:
            raise SchemaError(f"hash partitioning needs parts >= 1, got {parts}")
        self.table = table
        self.key = key
        self.position = position
        self.parts = parts
        self.scheme = scheme
        self.bounds = bounds
        #: Tables with equal domains are co-partitioned: a key value maps
        #: to the same partition id in each of them.
        self.domain = key if domain is None else domain

    def partition_of(self, value: Any) -> int:
        """The partition id a key value routes to."""
        if self.scheme == "range":
            return bisect_left(self.bounds, value)
        return stable_key_hash(value) % self.parts

    def co_partitioned(self, other: PartitionSpec) -> bool:
        """Whether a key value lands in the same partition id in both tables."""
        return (
            self.domain == other.domain
            and self.scheme == other.scheme
            and self.parts == other.parts
            and self.bounds == other.bounds
        )

    def __repr__(self) -> str:
        return (
            f"PartitionSpec({self.table!r}, key={self.key!r}, "
            f"scheme={self.scheme!r}, parts={self.parts})"
        )


class _StateView(Mapping):
    """Live read view of a partitioned state; materializes stale tables."""

    __slots__ = ("_db",)

    def __init__(self, db: PartitionedDatabase) -> None:
        self._db = db

    def __getitem__(self, name: str) -> Bag:
        db = self._db
        if name in db._stale:
            db._materialize(name)
        return db._tables[name]

    def __iter__(self):
        return iter(self._db._tables)

    def __len__(self) -> int:
        return len(self._db._tables)

    def __contains__(self, name) -> bool:
        return name in self._db._tables


class _DeltaWindow:
    """Pre-patch view handed to write listeners by the fast-apply path.

    Listeners only consult the multiplicities of rows in the delta (to
    clamp over-deletes) plus emptiness, so the window carries exactly
    the pre-apply multiplicities of the delta's rows — O(|delta|), never
    the whole table.
    """

    __slots__ = ("_mults", "_nonempty")

    def __init__(self, mults: dict[Row, int], nonempty: bool) -> None:
        self._mults = mults
        self._nonempty = nonempty

    def multiplicity(self, row: Row) -> int:
        return self._mults.get(row, 0)

    def __bool__(self) -> bool:
        return self._nonempty

    def items(self):
        return self._mults.items()


class _SliceWindow:
    """Post-patch view over live slices (listeners may peek one row)."""

    __slots__ = ("_slices",)

    def __init__(self, slices: list[dict[Row, int]]) -> None:
        self._slices = slices

    def multiplicity(self, row: Row) -> int:
        for piece in self._slices:
            count = piece.get(row)
            if count is not None:
                return count
        return 0

    def __bool__(self) -> bool:
        return any(self._slices)

    def items(self):
        for piece in self._slices:
            yield from piece.items()


class _SliceMaintainer:
    """Write listener keeping partition slices current through the
    *generic* write paths (transactions, set_table, restore, rollback).

    The fast-apply path mutates slices directly and skips this listener.
    """

    __slots__ = ("_db",)

    def __init__(self, db: PartitionedDatabase) -> None:
        self._db = db

    def on_patch(self, name: str, delete: Bag, insert: Bag, before: Bag, after: Bag) -> None:
        db = self._db
        spec = db._specs.get(name)
        if spec is None:
            return
        slices = db._slices[name]
        position = spec.position
        for row, count in delete.items():
            piece = slices[spec.partition_of(row[position])]
            remaining = piece.get(row, 0) - count
            if remaining > 0:
                piece[row] = remaining
            else:
                piece.pop(row, None)
        for row, count in insert.items():
            piece = slices[spec.partition_of(row[position])]
            piece[row] = piece.get(row, 0) + count
        # The generic path installed the full post-patch bag, so the
        # logical value is exact again.
        db._stale.discard(name)

    def on_replace(self, name: str, bag: Bag) -> None:
        db = self._db
        spec = db._specs.get(name)
        if spec is None:
            return
        db._slices[name] = db._slice_bag(bag, spec)
        db._stale.discard(name)

    def on_drop(self, name: str) -> None:
        db = self._db
        db._specs.pop(name, None)
        db._slices.pop(name, None)
        db._stale.discard(name)


class PartitionedDatabase(Database):
    """A database whose declared tables are sliced into partitions.

    Undeclared tables behave exactly as in :class:`Database`; declared
    tables additionally keep one mutable counts dict per partition,
    maintained through every write path, and may be patched through
    :meth:`apply_parts` in time proportional to the delta.
    """

    def __init__(self, *, exec_mode: str | None = None) -> None:
        super().__init__(exec_mode=exec_mode)
        self._specs: dict[str, PartitionSpec] = {}
        self._slices: dict[str, list[dict[Row, int]]] = {}
        #: Tables whose ``_tables`` entry lags the slices (fast-applied
        #: but not yet re-materialized).
        self._stale: set[str] = set()
        self._maintainer = _SliceMaintainer(self)
        self.add_write_listener(self._maintainer)

    # ------------------------------------------------------------------
    # Declaration / introspection
    # ------------------------------------------------------------------

    def declare_partitioning(
        self,
        table: str,
        key: str,
        *,
        parts: int = 16,
        scheme: str = "hash",
        bounds: Iterable | None = None,
        domain: str | None = None,
    ) -> PartitionSpec:
        """Partition an existing table by ``key``; returns the spec.

        Idempotent re-declaration with identical parameters is allowed;
        changing the layout of an already-partitioned table is not.
        """
        self._require(table)
        schema = self._schemas[table]
        position = schema.index_of(key)
        spec = PartitionSpec(
            table,
            key,
            position,
            parts,
            scheme=scheme,
            bounds=tuple(bounds) if bounds is not None else None,
            domain=domain,
        )
        existing = self._specs.get(table)
        if existing is not None:
            if existing.co_partitioned(spec) and existing.key == key:
                return existing
            raise SchemaError(f"table {table!r} is already partitioned differently")
        self._specs[table] = spec
        self._slices[table] = self._slice_bag(self._tables[table], spec)
        if self._exec_mode == SQLITE:
            # Thread the layout down into the mirror so pushed-down scans
            # can prune by partition id (partition-key column + index).
            self.executor.declare_partition(table, spec)
        return spec

    def partition_spec(self, table: str) -> PartitionSpec | None:
        return self._specs.get(table)

    def partitioned_tables(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def partition_sizes(self, table: str) -> list[int]:
        """Distinct-row count per partition (observability)."""
        if table not in self._specs:
            raise UnknownTableError(f"table {table!r} is not partitioned")
        return [len(piece) for piece in self._slices[table]]

    def partition_slice(self, table: str, pid: int) -> Bag:
        """The contents of one partition as a bag (copies the slice)."""
        if table not in self._specs:
            raise UnknownTableError(f"table {table!r} is not partitioned")
        piece = self._slices[table][pid]
        return Bag._from_clean(dict(piece), self._schemas[table].arity if piece else None)

    def _slice_bag(self, bag: Bag, spec: PartitionSpec) -> list[dict[Row, int]]:
        slices: list[dict[Row, int]] = [{} for _ in range(spec.parts)]
        position = spec.position
        for row, count in bag.items():
            slices[spec.partition_of(row[position])][row] = count
        return slices

    # ------------------------------------------------------------------
    # Lazy logical values
    # ------------------------------------------------------------------

    def _materialize(self, name: str) -> None:
        """Rebuild the flat logical bag of a stale table from its slices."""
        merged: dict[Row, int] = {}
        for piece in self._slices[name]:
            merged.update(piece)
        arity = self._schemas[name].arity if merged else None
        self._tables[name] = Bag._from_clean(merged, arity)
        self._stale.discard(name)

    def _materialize_for(self, names: Iterable[str]) -> None:
        if self._stale:
            for name in names:
                if name in self._stale:
                    self._materialize(name)

    def _materialize_all(self) -> None:
        for name in tuple(self._stale):
            self._materialize(name)

    def __getitem__(self, name: str) -> Bag:
        if name in self._stale:
            self._materialize(name)
        return super().__getitem__(name)

    @property
    def state(self) -> Mapping[str, Bag]:
        return _StateView(self)

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        self._materialize_for(expr.tables())
        return super().evaluate(expr, counter=counter)

    def prime(self, *exprs: Expr, counter: CostCounter | None = None) -> None:
        for expr in exprs:
            self._materialize_for(expr.tables())
        super().prime(*exprs, counter=counter)

    def total_rows(self) -> int:
        self._materialize_all()
        return super().total_rows()

    def snapshot(self) -> dict[str, Bag]:
        self._materialize_all()
        return super().snapshot()

    def clone(self) -> Database:
        self._materialize_all()
        return super().clone()

    def apply(self, assignments=None, **kwargs):
        assignments = {} if assignments is None else assignments
        patches = kwargs.get("patches") or {}
        needed: set[str] = set(assignments) | set(patches)
        for expr in assignments.values():
            needed |= set(expr.tables())
        for delete, insert in patches.values():
            needed |= set(delete.tables()) | set(insert.tables())
        self._materialize_for(needed)
        return super().apply(assignments, **kwargs)

    def __repr__(self) -> str:
        self._materialize_all()
        return super().__repr__()

    # ------------------------------------------------------------------
    # Affected keys and key-restricted reads
    # ------------------------------------------------------------------

    def affected_keys(self, table_bags: Mapping[str, Bag]) -> dict[str, set]:
        """Per-domain affected-key sets induced by pending delta bags.

        ``table_bags`` maps a *base table name* to a delta bag carrying
        the base schema (a maintenance log's contents); the key column
        of the table's spec is projected out and unioned per domain.
        """
        by_domain: dict[str, set] = {}
        for table, bag in table_bags.items():
            spec = self._specs.get(table)
            if spec is None:
                continue
            keys = by_domain.setdefault(spec.domain, set())
            position = spec.position
            for row in bag.support:
                keys.add(row[position])
        return by_domain

    def affected_partitions(self, table: str, keys: Iterable) -> set[int]:
        spec = self._specs[table]
        return {spec.partition_of(key) for key in keys}

    def restrict(self, table: str, keys: Iterable, *, counter: CostCounter | None = None) -> Bag:
        """Rows of ``table`` whose partition key is in ``keys``.

        Served by the maintained hash index on the key column — the same
        index the engines' probe joins use — so the cost is one bucket
        lookup per key, independent of the table size.
        """
        spec = self._specs[table]
        keys = list(keys)
        if table in self._stale:
            self._materialize(table)
        if self._exec_mode == SQLITE:
            # Partial-index pushdown: the mirror carries a routed
            # ``__part`` column, so the restriction runs as one indexed
            # C scan instead of per-key Python dict probes.
            bag = self.executor.restricted_lookup(table, keys, counter=counter)
            if bag is not None:
                return bag
        index = self._indexes.get(table, (spec.position,), self._tables[table], counter=counter)
        merged: dict[Row, int] = {}
        for key in keys:
            merged.update(index.lookup((key,)))
        if counter is not None:
            counter.record_probes("index_probe", len(keys))
            counter.record("partition_restrict", len(merged))
        arity = self._schemas[table].arity if merged else None
        return Bag._from_clean(merged, arity)

    def split_by_partition(self, table: str, bag: Bag) -> dict[int, list[tuple[Row, int]]]:
        """Group a delta bag for ``table`` by target partition id."""
        spec = self._specs[table]
        position = spec.position
        grouped: dict[int, list[tuple[Row, int]]] = {}
        for row, count in bag.items():
            grouped.setdefault(spec.partition_of(row[position]), []).append((row, count))
        return grouped

    # ------------------------------------------------------------------
    # Delta-proportional epoch apply
    # ------------------------------------------------------------------

    def apply_parts(
        self,
        patches: Mapping[str, tuple[Bag, Bag]],
        *,
        clears: Mapping[str, Bag] | None = None,
        counter: CostCounter | None = None,
    ) -> dict[str, set[int]]:
        """Install one maintenance epoch partition-by-partition.

        ``patches`` maps *partitioned* tables to evaluated
        ``(delete, insert)`` bags, applied as ``(R ∸ delete) ⊎ insert``
        by mutating only the affected partitions' slices; ``clears``
        maps (small, unpartitioned) bookkeeping tables — logs,
        differential tables — to replacement values installed in the
        same atomic scope.

        Returns the set of partition ids touched per patched table.
        The whole epoch is all-or-nothing: a crash at the
        ``crash-mid-partition-apply`` fault point between partitions
        (or any other failure) rolls back every slice mutation, cleared
        table, version stamp, index delta and listener mirror.
        """
        clears = clears if clears is not None else {}
        for name in patches:
            if name not in self._specs:
                raise UnknownTableError(f"apply_parts target {name!r} is not partitioned")
            self._require(name)
        for name in clears:
            self._require(name)

        # Stage: route every delta row to its partition and record the
        # pre-apply multiplicities we may need to undo (and that the
        # write listeners need for over-delete clamping).
        staged: dict[str, dict[int, list[tuple[Row, int, int]]]] = {}
        windows: dict[str, dict[Row, int]] = {}
        nonempty: dict[str, bool] = {}
        touched: dict[str, set[int]] = {}
        for name, (delete, insert) in patches.items():
            spec = self._specs[name]
            slices = self._slices[name]
            nonempty[name] = any(slices)
            position = spec.position
            per_pid: dict[int, list[tuple[Row, int, int]]] = {}
            pre: dict[Row, int] = {}
            for row, count in delete.items():
                pid = spec.partition_of(row[position])
                per_pid.setdefault(pid, []).append((row, -count, 0))
                pre.setdefault(row, slices[pid].get(row, 0))
            for row, count in insert.items():
                pid = spec.partition_of(row[position])
                per_pid.setdefault(pid, []).append((row, count, 1))
                pre.setdefault(row, slices[pid].get(row, 0))
            staged[name] = per_pid
            windows[name] = pre
            touched[name] = set(per_pid)
            if counter is not None:
                counter.record("patch", len(delete) + len(insert))
                counter.record_partitions(len(per_pid))

        undo_slices: dict[str, dict[int, dict[Row, int | None]]] = {}
        old_clears = {name: self._tables[name] for name in clears}
        all_targets = list(patches) + [name for name in clears if name not in patches]
        old_versions = {name: self._versions.get(name) for name in all_targets}
        old_clock = self._clock
        try:
            for name, per_pid in staged.items():
                spec = self._specs[name]
                slices = self._slices[name]
                undo = undo_slices.setdefault(name, {})
                first = True
                for pid in sorted(per_pid):
                    if not first:
                        fault_point("crash-mid-partition-apply")
                    first = False
                    piece = slices[pid]
                    pid_undo = undo.setdefault(pid, {})
                    for row, signed, phase in per_pid[pid]:
                        if row not in pid_undo:
                            pid_undo[row] = piece.get(row)
                        current = piece.get(row, 0)
                        if phase == 0:  # delete: monus floors at zero
                            new = current + signed
                            if new > 0:
                                piece[row] = new
                            else:
                                piece.pop(row, None)
                        else:
                            piece[row] = current + signed
                self._stale.add(name)
                self._bump(name)
                delete, insert = patches[name]
                self._indexes.on_patch(name, delete, insert, counter=counter)
                before = _DeltaWindow(windows[name], nonempty[name])
                after = _SliceWindow(self._slices[name])
                for listener in self._listeners:
                    if listener is self._maintainer:
                        continue
                    listener.on_patch(name, delete, insert, before, after)
            for name, bag in clears.items():
                fault_point("crash-mid-partition-apply")
                self._tables[name] = bag
                self._bump(name)
                self._indexes.on_replace(name, bag, counter=counter)
                for listener in self._listeners:
                    listener.on_replace(name, bag)
            if obs.telemetry_enabled():
                obs.metric_inc("partitioned_epochs")
                for pids in touched.values():
                    obs.metric_observe("partitions_touched", len(pids))
        except BaseException:
            # Undo slice mutations exactly (original counts, including
            # absent rows), restore cleared tables, versions and clock,
            # then resync indexes and listener mirrors from the restored
            # values — same contract as ``Database._install``.
            for name, undo in undo_slices.items():
                slices = self._slices[name]
                for pid, rows in undo.items():
                    piece = slices[pid]
                    for row, original in rows.items():
                        if original is None:
                            piece.pop(row, None)
                        else:
                            piece[row] = original
                self._materialize(name)
            for name, old_bag in old_clears.items():
                self._tables[name] = old_bag
            for name in all_targets:
                old_version = old_versions[name]
                if old_version is None:
                    self._versions.pop(name, None)
                else:
                    self._versions[name] = old_version
                restored = self._tables[name]
                self._indexes.on_replace(name, restored)
                for listener in self._listeners:
                    listener.on_replace(name, restored)
            self._clock = old_clock
            raise
        return touched
