"""Database states and simultaneous-assignment transaction execution.

A *database state* (Section 2.1) maps table names to bags.  The
:class:`Database` here holds one current state plus per-table schemas and
an external/internal partition:

* **external** tables are user-updatable base tables;
* **internal** tables store maintenance bookkeeping — materialized view
  tables, log tables :math:`\\blacktriangledown R_i / \\blacktriangle R_i`,
  and view differential tables :math:`\\triangledown MV / \\triangle MV`.
  User transactions are not allowed to touch them (Section 3.1).

Transactions follow the paper's abstract-transaction semantics
(Section 2.2): a transaction is a set of assignments
:math:`\\{R_i := Q_i\\}` whose right-hand sides are *all evaluated in the
pre-transaction state* and then installed simultaneously.  The
``T1 + T2`` composition of Figure 3 is simply the union of two
assignment sets executed this way.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Expr, TableRef
from repro.algebra.schema import Schema
from repro.errors import SchemaError, TransactionError, UnknownTableError

__all__ = ["Database"]


class Database:
    """A mutable collection of named bag tables with schemas."""

    def __init__(self) -> None:
        self._tables: dict[str, Bag] = {}
        self._schemas: dict[str, Schema] = {}
        self._internal: set[str] = set()

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema | Iterable[str],
        *,
        rows: Iterable[Row] = (),
        internal: bool = False,
    ) -> TableRef:
        """Create a table and return a reference to it."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        bag = Bag(rows)
        if bag.arity is not None and bag.arity != schema.arity:
            raise SchemaError(f"initial rows have arity {bag.arity}, schema has arity {schema.arity}")
        self._tables[name] = bag
        self._schemas[name] = schema
        if internal:
            self._internal.add(name)
        return TableRef(name, schema)

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        self._require(name)
        del self._tables[name]
        del self._schemas[name]
        self._internal.discard(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def is_internal(self, name: str) -> bool:
        self._require(name)
        return name in self._internal

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def external_tables(self) -> tuple[str, ...]:
        return tuple(name for name in self._tables if name not in self._internal)

    def internal_tables(self) -> tuple[str, ...]:
        return tuple(name for name in self._tables if name in self._internal)

    def schema_of(self, name: str) -> Schema:
        self._require(name)
        return self._schemas[name]

    def ref(self, name: str) -> TableRef:
        """A :class:`TableRef` expression for an existing table."""
        self._require(name)
        return TableRef(name, self._schemas[name])

    def _require(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(f"no such table: {name!r}")

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def __getitem__(self, name: str) -> Bag:
        self._require(name)
        return self._tables[name]

    @property
    def state(self) -> Mapping[str, Bag]:
        """The current state as a read-only mapping for evaluation."""
        return self._tables

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        """Evaluate a query in the current state."""
        return evaluate(expr, self._tables, counter=counter)

    def total_rows(self) -> int:
        """Total tuple count across all tables (with multiplicity)."""
        return sum(len(bag) for bag in self._tables.values())

    # ------------------------------------------------------------------
    # Direct mutation (bulk loading / bookkeeping)
    # ------------------------------------------------------------------

    def set_table(self, name: str, bag: Bag) -> None:
        """Replace a table's contents wholesale (bypasses transactions)."""
        self._require(name)
        if bag.arity is not None and bag.arity != self._schemas[name].arity:
            raise SchemaError(
                f"cannot set {name!r}: bag arity {bag.arity} vs schema arity {self._schemas[name].arity}"
            )
        self._tables[name] = bag

    def load(self, name: str, rows: Iterable[Row]) -> None:
        """Bulk-insert rows (bypasses transactions; for initial loading)."""
        self.set_table(name, self._tables[name].union_all(Bag(rows)))

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def apply(
        self,
        assignments: Mapping[str, Expr] = {},
        *,
        patches: Mapping[str, tuple[Expr, Expr]] | None = None,
        counter: CostCounter | None = None,
        restrict_to_external: bool = False,
    ) -> None:
        """Execute one simultaneous transaction of assignments and patches.

        ``assignments`` is the abstract-transaction form
        :math:`\\{R_i := Q_i\\}`; ``patches`` maps a table to a
        ``(delete, insert)`` expression pair applied as
        :math:`R := (R \\dot{-} delete) \\uplus insert`.

        All right-hand sides — assignment queries and patch deltas — are
        evaluated against the pre-transaction state (sharing one memo
        table, so common subexpressions are computed once), then
        installed atomically.

        Patches model *indexed in-place updates*: the recorded cost
        (operator ``"patch"``) is the delta size, not the table size.
        This is what makes per-transaction overhead and refresh downtime
        measurements delta-proportional, as the paper assumes.

        With ``restrict_to_external=True`` the transaction is validated
        as a *user* transaction: it may only touch external tables.
        """
        patches = patches if patches is not None else {}
        overlap = set(assignments) & set(patches)
        if overlap:
            raise TransactionError(f"tables both assigned and patched: {sorted(overlap)}")
        memo: dict[Expr, Bag] = {}
        new_values: dict[str, Bag] = {}

        def check_target(name: str, arity: int, kind: str) -> None:
            self._require(name)
            if restrict_to_external and name in self._internal:
                raise TransactionError(f"user transactions may not update internal table {name!r}")
            if arity != self._schemas[name].arity:
                raise SchemaError(
                    f"{kind} of {name!r} has arity {arity}, schema has arity "
                    f"{self._schemas[name].arity}"
                )

        for name, expr in assignments.items():
            check_target(name, expr.schema().arity, "assignment")
            new_values[name] = evaluate(expr, self._tables, counter=counter, memo=memo)
        for name, (delete, insert) in patches.items():
            check_target(name, delete.schema().arity, "patch delete")
            check_target(name, insert.schema().arity, "patch insert")
            delete_value = evaluate(delete, self._tables, counter=counter, memo=memo)
            insert_value = evaluate(insert, self._tables, counter=counter, memo=memo)
            if counter is not None:
                counter.record("patch", len(delete_value) + len(insert_value))
            new_values[name] = self._tables[name].patch(delete_value, insert_value)
        self._tables.update(new_values)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Bag]:
        """Capture the current state (bags are immutable, so this is cheap)."""
        return dict(self._tables)

    def restore(self, snapshot: Mapping[str, Bag]) -> None:
        """Restore a state previously captured with :meth:`snapshot`."""
        for name in snapshot:
            self._require(name)
        self._tables.update(snapshot)

    def clone(self) -> Database:
        """An independent copy sharing the (immutable) bag values."""
        other = Database()
        other._tables = dict(self._tables)
        other._schemas = dict(self._schemas)
        other._internal = set(self._internal)
        return other

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}[{len(bag)}]" for name, bag in self._tables.items())
        return f"Database({parts})"
