"""Database states and simultaneous-assignment transaction execution.

A *database state* (Section 2.1) maps table names to bags.  The
:class:`Database` here holds one current state plus per-table schemas and
an external/internal partition:

* **external** tables are user-updatable base tables;
* **internal** tables store maintenance bookkeeping — materialized view
  tables, log tables :math:`\\blacktriangledown R_i / \\blacktriangle R_i`,
  and view differential tables :math:`\\triangledown MV / \\triangle MV`.
  User transactions are not allowed to touch them (Section 3.1).

Transactions follow the paper's abstract-transaction semantics
(Section 2.2): a transaction is a set of assignments
:math:`\\{R_i := Q_i\\}` whose right-hand sides are *all evaluated in the
pre-transaction state* and then installed simultaneously.  The
``T1 + T2`` composition of Figure 3 is simply the union of two
assignment sets executed this way.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Expr, TableRef
from repro.algebra.schema import Schema
from repro.errors import SchemaError, TransactionError, UnknownTableError
from repro.exec import (
    INTERPRETED,
    SQLITE,
    VECTORIZED,
    Executor,
    default_exec_mode,
    resolve_exec_mode,
)
from repro.exec.indexes import IndexManager
from repro.robustness.faults import fault_point

__all__ = ["Database"]


class Database:
    """A mutable collection of named bag tables with schemas.

    Queries run through one of four engines (see :mod:`repro.exec`):

    * ``exec_mode="compiled"`` (the default) lowers expressions once
      into cached physical plans whose subexpression results are reused
      across calls, guarded by per-table *version stamps* — a monotonic
      clock value bumped on every write to a table;
    * ``exec_mode="vectorized"`` runs the same plans batch-at-a-time
      over columnar multiplicity-vector batches;
    * ``exec_mode="sqlite"`` pushes pushable plan subtrees down into an
      incrementally-mirrored SQLite database, falling back to the
      vectorized kernels per subtree;
    * ``exec_mode="interpreted"`` walks the AST on every call and serves
      as the correctness oracle.

    The database also owns the :class:`~repro.exec.indexes.IndexManager`
    holding hash indexes on stored tables; every write path below
    forwards its delta (or replacement value) so indexes stay current
    incrementally.  Engines that keep further derived state (columnar
    table batches, the SQLite mirror) register *write listeners* via
    :meth:`add_write_listener` and receive the same per-write deltas.
    """

    def __init__(self, *, exec_mode: str | None = None) -> None:
        self._tables: dict[str, Bag] = {}
        self._schemas: dict[str, Schema] = {}
        self._internal: set[str] = set()
        #: Guards every multi-table commit section against a concurrent
        #: :meth:`consistent_cut`.  The critical sections are O(#tables
        #: touched) reference installs — never O(data) — so holding the
        #: mutex costs a writer nothing measurable, and a snapshot pin
        #: can never observe half of a simultaneous transaction.
        self._commit_mutex = threading.RLock()
        self._exec_mode = default_exec_mode() if exec_mode is None else resolve_exec_mode(exec_mode)
        self._versions: dict[str, int] = {}
        self._clock = 0
        self._indexes = IndexManager()
        self._executor: Executor | None = None
        #: Engine governor (set by :meth:`enable_governor`): when live,
        #: every engine-backed evaluation routes through its
        #: degradation ladder instead of hitting the executor directly.
        self._governor = None
        #: Write listeners: objects with ``on_patch(name, delete, insert,
        #: before, after)``, ``on_replace(name, bag)``, ``on_drop(name)``.
        self._listeners: list = []
        #: Path of the snapshot file this state was loaded from, if any
        #: (set by :func:`repro.storage.persistence.load_database`).
        self.durable_origin = None
        #: Whether a write-ahead intent journal guards maintenance on
        #: this database (set by :class:`repro.robustness.DurableWarehouse`).
        self.journaled = False

    # ------------------------------------------------------------------
    # Execution engine
    # ------------------------------------------------------------------

    @property
    def exec_mode(self) -> str:
        return self._exec_mode

    @property
    def indexes(self) -> IndexManager:
        return self._indexes

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            if self._exec_mode == VECTORIZED:
                from repro.exec.vectorized import VectorizedExecutor

                self._executor = VectorizedExecutor(self)
            elif self._exec_mode == SQLITE:
                from repro.exec.pushdown import PushdownExecutor

                self._executor = PushdownExecutor(self)
            else:
                self._executor = Executor(self)
        return self._executor

    def enable_governor(self, **kwargs):
        """Route evaluations through an engine-degradation ladder.

        Idempotent: the first call builds the
        :class:`~repro.robustness.governor.EngineGovernor` (keyword
        arguments are forwarded to it); later calls return the live one.
        Both :meth:`evaluate` and transaction right-hand sides inside
        :meth:`apply` then absorb transient backend errors by retrying
        and, on persistent failure, fall to a lower execution tier
        instead of surfacing the error.
        """
        if self._governor is None:
            from repro.robustness.governor import EngineGovernor

            self._governor = EngineGovernor(self, **kwargs)
        return self._governor

    @property
    def governor(self):
        """The live engine governor, or ``None`` when ungoverned."""
        return self._governor

    def add_write_listener(self, listener) -> None:
        """Register an engine-side mirror for per-write delta forwarding.

        Listeners see every mutation path — patch installs (with the
        pre- and post-patch values), wholesale replacements, restores,
        rollbacks, and drops — in the order they take effect, so derived
        state stays exactly as current as the maintained hash indexes.
        """
        self._listeners.append(listener)

    def _notify_patch(self, name: str, delete: Bag, insert: Bag, before: Bag, after: Bag) -> None:
        for listener in self._listeners:
            listener.on_patch(name, delete, insert, before, after)

    def _notify_replace(self, name: str, bag: Bag) -> None:
        for listener in self._listeners:
            listener.on_replace(name, bag)

    def _notify_drop(self, name: str) -> None:
        for listener in self._listeners:
            listener.on_drop(name)

    def version_of(self, name: str) -> int:
        """The table's current version stamp (bumped on every write)."""
        return self._versions.get(name, -1)

    def _bump(self, name: str) -> None:
        self._clock += 1
        self._versions[name] = self._clock

    def prime(self, *exprs: Expr, counter: CostCounter | None = None) -> None:
        """Compile ``exprs`` now and pre-build the indexes their plans use.

        Scenarios call this at install time while log tables are still
        empty, so index builds are free and all later maintenance is
        incremental.  A no-op in interpreted mode.
        """
        if self._exec_mode == INTERPRETED:
            return
        for expr in exprs:
            self.executor.prime(expr, counter=counter)

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema | Iterable[str],
        *,
        rows: Iterable[Row] = (),
        internal: bool = False,
    ) -> TableRef:
        """Create a table and return a reference to it."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        bag = Bag(rows)
        if bag.arity is not None and bag.arity != schema.arity:
            raise SchemaError(f"initial rows have arity {bag.arity}, schema has arity {schema.arity}")
        with self._commit_mutex:
            self._tables[name] = bag
            self._schemas[name] = schema
            if internal:
                self._internal.add(name)
            self._bump(name)
        return TableRef(name, schema)

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        self._require(name)
        with self._commit_mutex:
            del self._tables[name]
            del self._schemas[name]
            self._internal.discard(name)
            self._versions.pop(name, None)
            self._indexes.drop(name)
        if self._listeners:
            self._notify_drop(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def is_internal(self, name: str) -> bool:
        self._require(name)
        return name in self._internal

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def external_tables(self) -> tuple[str, ...]:
        return tuple(name for name in self._tables if name not in self._internal)

    def internal_tables(self) -> tuple[str, ...]:
        return tuple(name for name in self._tables if name in self._internal)

    def schema_of(self, name: str) -> Schema:
        self._require(name)
        return self._schemas[name]

    def ref(self, name: str) -> TableRef:
        """A :class:`TableRef` expression for an existing table."""
        self._require(name)
        return TableRef(name, self._schemas[name])

    def _require(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(f"no such table: {name!r}")

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def __getitem__(self, name: str) -> Bag:
        self._require(name)
        return self._tables[name]

    @property
    def state(self) -> Mapping[str, Bag]:
        """The current state as a read-only mapping for evaluation."""
        return self._tables

    def evaluate(self, expr: Expr, *, counter: CostCounter | None = None) -> Bag:
        """Evaluate a query in the current state."""
        sanitizer = obs.active_sanitizer()
        if sanitizer is not None and sanitizer.tracking():
            sanitizer.on_read(expr.tables())
        if self._governor is not None:
            return self._governor.evaluate(expr, counter=counter)
        if self._exec_mode == INTERPRETED:
            return evaluate(expr, self._tables, counter=counter)
        return self.executor.evaluate(expr, counter=counter)

    def total_rows(self) -> int:
        """Total tuple count across all tables (with multiplicity)."""
        return sum(len(bag) for bag in self._tables.values())

    # ------------------------------------------------------------------
    # Direct mutation (bulk loading / bookkeeping)
    # ------------------------------------------------------------------

    def set_table(self, name: str, bag: Bag) -> None:
        """Replace a table's contents wholesale (bypasses transactions)."""
        self._require(name)
        if bag.arity is not None and bag.arity != self._schemas[name].arity:
            raise SchemaError(
                f"cannot set {name!r}: bag arity {bag.arity} vs schema arity {self._schemas[name].arity}"
            )
        with self._commit_mutex:
            self._tables[name] = bag
            self._bump(name)
        self._indexes.on_replace(name, bag)
        if self._listeners:
            self._notify_replace(name, bag)

    def load(self, name: str, rows: Iterable[Row]) -> None:
        """Bulk-insert rows (bypasses transactions; for initial loading)."""
        self.set_table(name, self._tables[name].union_all(Bag(rows)))

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def apply(
        self,
        assignments: Mapping[str, Expr] = {},
        *,
        patches: Mapping[str, tuple[Expr, Expr]] | None = None,
        counter: CostCounter | None = None,
        restrict_to_external: bool = False,
    ) -> None:
        """Execute one simultaneous transaction of assignments and patches.

        ``assignments`` is the abstract-transaction form
        :math:`\\{R_i := Q_i\\}`; ``patches`` maps a table to a
        ``(delete, insert)`` expression pair applied as
        :math:`R := (R \\dot{-} delete) \\uplus insert`.

        All right-hand sides — assignment queries and patch deltas — are
        evaluated against the pre-transaction state (sharing one memo
        table, so common subexpressions are computed once), then
        installed atomically.

        Patches model *indexed in-place updates*: the recorded cost
        (operator ``"patch"``) is the delta size, not the table size.
        This is what makes per-transaction overhead and refresh downtime
        measurements delta-proportional, as the paper assumes.

        With ``restrict_to_external=True`` the transaction is validated
        as a *user* transaction: it may only touch external tables.

        The transaction is **exception-safe**: every right-hand side is
        evaluated and every patched bag is staged before anything is
        installed, and the install phase itself (table values, version
        stamps, maintained indexes) rolls back completely if any step
        raises — an error mid-transaction never leaves tables, versions,
        and indexes mutually inconsistent.
        """
        patches = patches if patches is not None else {}
        overlap = set(assignments) & set(patches)
        if overlap:
            raise TransactionError(f"tables both assigned and patched: {sorted(overlap)}")
        with obs.span("apply", assignments=len(assignments), patches=len(patches), counter=counter):
            self._apply(assignments, patches, counter=counter, restrict_to_external=restrict_to_external)

    def _apply(
        self,
        assignments: Mapping[str, Expr],
        patches: Mapping[str, tuple[Expr, Expr]],
        *,
        counter: CostCounter | None = None,
        restrict_to_external: bool = False,
    ) -> None:
        interpreted = self._exec_mode == INTERPRETED
        governor = self._governor
        memo: dict[Expr, Bag] = {}
        # The op stack only changes at span boundaries outside this call,
        # so whether accesses are judged is constant for the whole
        # transaction — hoist the check out of the per-expression loops.
        sanitizer = obs.active_sanitizer()
        if sanitizer is not None and not sanitizer.tracking():
            sanitizer = None

        def run(expr: Expr) -> Bag:
            # Engine-backed modes: the executor's version-stamped memo
            # shares work both within this transaction and with earlier
            # evaluations of the (unchanged) pre-state.  Interpreted: a
            # fresh memo scoped to this transaction's pre-state (see the
            # warning on :func:`repro.algebra.evaluation.evaluate`).
            if sanitizer is not None:
                sanitizer.on_read(expr.tables())
            if governor is not None:
                return governor.evaluate(expr, counter=counter, memo=memo)
            if interpreted:
                return evaluate(expr, self._tables, counter=counter, memo=memo)
            return self.executor.evaluate(expr, counter=counter)

        new_values: dict[str, Bag] = {}
        patch_deltas: dict[str, tuple[Bag, Bag]] = {}

        def check_target(name: str, arity: int, kind: str) -> None:
            self._require(name)
            if restrict_to_external and name in self._internal:
                raise TransactionError(f"user transactions may not update internal table {name!r}")
            if arity != self._schemas[name].arity:
                raise SchemaError(
                    f"{kind} of {name!r} has arity {arity}, schema has arity "
                    f"{self._schemas[name].arity}"
                )

        for name, expr in assignments.items():
            check_target(name, expr.schema().arity, "assignment")
            new_values[name] = run(expr)
        for name, (delete, insert) in patches.items():
            check_target(name, delete.schema().arity, "patch delete")
            check_target(name, insert.schema().arity, "patch insert")
            delete_value = run(delete)
            insert_value = run(insert)
            if counter is not None:
                counter.record("patch", len(delete_value) + len(insert_value))
            if sanitizer is not None:
                # A patch is a read-modify-write of its target table.
                sanitizer.on_read((name,))
            new_values[name] = self._tables[name].patch(delete_value, insert_value)
            patch_deltas[name] = (delete_value, insert_value)
        if sanitizer is not None:
            sanitizer.on_write(new_values)
        if obs.telemetry_enabled():
            obs.metric_inc("transactions")
            for delete_value, insert_value in patch_deltas.values():
                obs.metric_observe("delta_rows", len(delete_value) + len(insert_value))
        self._install(new_values, patch_deltas, counter=counter)

    def _install(
        self,
        new_values: dict[str, Bag],
        patch_deltas: dict[str, tuple[Bag, Bag]],
        *,
        counter: CostCounter | None = None,
    ) -> None:
        """Commit fully staged values all-or-nothing.

        All reads are done by the time this runs; on any failure (index
        maintenance, an injected crash) the tables, version stamps, and
        indexes of every target are restored to their pre-transaction
        state before the exception propagates.
        """
        old_values = {name: self._tables[name] for name in new_values}
        old_versions = {name: self._versions.get(name) for name in new_values}
        old_clock = self._clock
        with self._commit_mutex:
            try:
                for name, bag in new_values.items():
                    fault_point("crash-mid-apply")
                    self._tables[name] = bag
                    self._bump(name)
                    delta = patch_deltas.get(name)
                    if delta is not None:
                        self._indexes.on_patch(name, delta[0], delta[1], counter=counter)
                        if self._listeners:
                            self._notify_patch(name, delta[0], delta[1], old_values[name], bag)
                    else:
                        self._indexes.on_replace(name, bag, counter=counter)
                        if self._listeners:
                            self._notify_replace(name, bag)
            except BaseException:
                for name, old_bag in old_values.items():
                    self._tables[name] = old_bag
                    old_version = old_versions[name]
                    if old_version is None:
                        self._versions.pop(name, None)
                    else:
                        self._versions[name] = old_version
                    # A failed incremental index update may have left the
                    # table's indexes half-maintained; rebuild them from the
                    # restored value.  Engine mirrors get the same signal.
                    self._indexes.on_replace(name, old_bag)
                    if self._listeners:
                        self._notify_replace(name, old_bag)
                self._clock = old_clock
                raise

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Bag]:
        """Capture the current state (bags are immutable, so this is cheap)."""
        return dict(self._tables)

    def consistent_cut(self) -> tuple[dict[str, Bag], dict[str, int], int]:
        """Atomically capture ``(tables, versions, clock)`` for a snapshot pin.

        Unlike :meth:`snapshot`, the copy is taken under the commit mutex,
        so it can never interleave with the install loop of a simultaneous
        transaction: the cut either wholly precedes or wholly follows every
        multi-table commit.  Bags are immutable, so this is an O(#tables)
        reference copy — no data is duplicated.  This is the seam
        :class:`repro.serve.SnapshotRegistry` pins reader snapshots on.
        """
        with self._commit_mutex:
            return dict(self._tables), dict(self._versions), self._clock

    def restore(self, snapshot: Mapping[str, Bag]) -> None:
        """Restore a state previously captured with :meth:`snapshot`."""
        for name in snapshot:
            self._require(name)
        with self._commit_mutex:
            self._tables.update(snapshot)
            for name, bag in snapshot.items():
                self._bump(name)
        for name, bag in snapshot.items():
            self._indexes.on_replace(name, bag)
            if self._listeners:
                self._notify_replace(name, bag)

    def clone(self) -> Database:
        """An independent copy sharing the (immutable) bag values.

        The clone keeps the execution mode and version history but gets
        its own executor and (empty) index manager, so plans, memos, and
        indexes are never shared between divergent states.
        """
        other = Database(exec_mode=self._exec_mode)
        other._tables = dict(self._tables)
        other._schemas = dict(self._schemas)
        other._internal = set(self._internal)
        other._versions = dict(self._versions)
        other._clock = self._clock
        return other

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}[{len(bag)}]" for name, bag in self._tables.items())
        return f"Database({parts})"
