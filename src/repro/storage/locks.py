"""Lock ledger: measuring view *downtime*.

The paper defines downtime as "the execution time required by the
transaction that refreshes the view table", during which an exclusive
write lock blocks all readers of ``MV`` (Section 1.1).  We model that
with a ledger of exclusive-lock critical sections.  Each section records

* wall-clock seconds spent while the lock was held, and
* tuple operations performed inside the section (from a
  :class:`~repro.algebra.evaluation.CostCounter` delta), which gives a
  deterministic, machine-independent downtime proxy.

The experiments report both; the *shape* conclusions (which policy has
the lowest downtime) agree between the two measures.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs
from repro.algebra.evaluation import CostCounter

__all__ = ["LockLedger", "LockSection"]


@dataclass(frozen=True)
class LockSection:
    """One completed exclusive-lock critical section."""

    resource: str
    label: str
    wall_seconds: float
    tuple_ops: int
    #: Name of the thread that held the section.  This is the seam the
    #: online-serving tests assert reader non-blocking on: under
    #: snapshot-isolated reads, no section may ever be attributed to a
    #: reader thread (the RVM601 read-path discipline, extended to the
    #: server), which is deterministic where wall-clock timing is not.
    thread: str = ""


@dataclass
class LockLedger:
    """Records exclusive-lock sections per resource (e.g. per view table)."""

    sections: list[LockSection] = field(default_factory=list)

    @contextmanager
    def exclusive(self, resource: str, *, label: str = "", counter: CostCounter | None = None) -> Iterator[None]:
        """Run a block under an exclusive lock on ``resource``.

        The section's tuple-operation count is the growth of ``counter``
        during the block (0 when no counter is supplied).
        """
        ops_before = counter.tuples_out if counter is not None else 0
        sanitizer = obs.active_sanitizer()
        if sanitizer is not None:
            sanitizer.lock_acquired(resource)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            if sanitizer is not None:
                sanitizer.lock_released(resource)
            ops_after = counter.tuples_out if counter is not None else 0
            ops = ops_after - ops_before
            self.sections.append(
                LockSection(
                    resource=resource,
                    label=label,
                    wall_seconds=elapsed,
                    tuple_ops=ops,
                    thread=threading.current_thread().name,
                )
            )
            if obs.telemetry_enabled():
                # Every exclusive section on a view table is downtime in
                # the paper's model: account it per view and feed the
                # refresh-latency histograms.  (Import here: storage sits
                # below core in the package layering.)
                from repro.core.naming import view_of_mv

                obs.accountant().on_lock_section(view_of_mv(resource), seconds=elapsed, ops=ops, label=label)
                obs.metric_observe("refresh_latency_s", elapsed, buckets=obs.LATENCY_BUCKETS_S)
                obs.metric_observe("refresh_lock_ops", ops)
                obs.metric_inc("lock_sections")

    def downtime_seconds(self, resource: str) -> float:
        """Total wall-clock time ``resource`` was exclusively locked."""
        return sum(section.wall_seconds for section in self.sections if section.resource == resource)

    def downtime_tuple_ops(self, resource: str) -> int:
        """Total tuple operations performed while ``resource`` was locked."""
        return sum(section.tuple_ops for section in self.sections if section.resource == resource)

    def max_section_seconds(self, resource: str) -> float:
        """The longest single critical section (worst-case blocking)."""
        durations = [section.wall_seconds for section in self.sections if section.resource == resource]
        return max(durations, default=0.0)

    def max_section_tuple_ops(self, resource: str) -> int:
        """The most tuple operations in a single critical section."""
        ops = [section.tuple_ops for section in self.sections if section.resource == resource]
        return max(ops, default=0)

    def section_count(self, resource: str) -> int:
        return sum(1 for section in self.sections if section.resource == resource)

    def acquiring_threads(self, resource: str | None = None) -> frozenset[str]:
        """Names of every thread that held an exclusive section.

        Restricted to one ``resource`` when given.  The serving tests use
        this to prove readers never blocked: a reader thread's name must
        not appear here, an ops-counted fact that cannot flake the way a
        wall-clock overlap measurement would.
        """
        return frozenset(
            section.thread
            for section in self.sections
            if resource is None or section.resource == resource
        )

    def sections_for_thread(self, prefix: str) -> list[LockSection]:
        """All sections held by threads whose name starts with ``prefix``."""
        return [section for section in self.sections if section.thread.startswith(prefix)]

    def reset(self) -> None:
        self.sections.clear()
