"""Synthetic workload generators for examples, tests, and benchmarks."""

from repro.workloads.orders import OrdersConfig, OrdersWorkload
from repro.workloads.randgen import RandomExpressionGenerator, RandomWorkloadGenerator
from repro.workloads.retail import RetailWorkload, RetailConfig

__all__ = [
    "RetailWorkload",
    "RetailConfig",
    "OrdersWorkload",
    "OrdersConfig",
    "RandomExpressionGenerator",
    "RandomWorkloadGenerator",
]
