"""Randomized query/state/transaction generation.

The correctness experiments (E3, E4) and several property tests validate
the paper's theorems over *randomized* inputs: random database states,
random core-algebra queries, and random weakly/non-minimal
substitutions.  This module centralizes that generation so tests and
benchmarks sample the same distribution.

Design choices that matter for bug-finding power:

* attribute values are small integers, so joins, duplicate collisions,
  and monus cancellations all actually happen;
* queries may use every core operator, including self-products and
  monus — exactly the territory where the state bug lives (Remark 1);
* products are wrapped in positional renames to keep schemas
  unambiguous, so generated selections can always bind.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.algebra.bag import Bag, Row
from repro.algebra.expr import (
    DupElim,
    Expr,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    rename,
)
from repro.algebra.predicates import Attr, Comparison, Const
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.storage.database import Database

__all__ = ["RandomExpressionGenerator", "RandomWorkloadGenerator"]

_VALUE_RANGE = 4  # small domain => plenty of collisions


class RandomExpressionGenerator:
    """Generates databases, queries, and substitutions from one seed."""

    def __init__(self, seed: int = 0, *, tables: int = 3, max_rows: int = 8) -> None:
        self.rng = random.Random(seed)
        self.table_count = tables
        self.max_rows = max_rows
        self._fresh = 0

    # ------------------------------------------------------------------
    # Databases and states
    # ------------------------------------------------------------------

    def database(self) -> Database:
        """A database with ``tables`` small tables of arity 1–3."""
        db = Database()
        for index in range(self.table_count):
            arity = self.rng.randint(1, 3)
            attrs = tuple(f"t{index}c{position}" for position in range(arity))
            rows = [self.row(arity) for __ in range(self.rng.randint(0, self.max_rows))]
            db.create_table(f"T{index}", attrs, rows=rows)
        return db

    def row(self, arity: int) -> Row:
        return tuple(self.rng.randrange(_VALUE_RANGE) for __ in range(arity))

    def bag(self, arity: int, max_rows: int | None = None) -> Bag:
        limit = max_rows if max_rows is not None else self.max_rows
        return Bag(self.row(arity) for __ in range(self.rng.randint(0, limit)))

    def subbag_of(self, bag: Bag) -> Bag:
        """A random subbag (for weakly minimal deletes)."""
        counts: dict[Row, int] = {}
        for item, count in bag.items():
            keep = self.rng.randint(0, count)
            if keep:
                counts[item] = keep
        return Bag.from_counts(counts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _fresh_names(self, arity: int) -> tuple[str, ...]:
        self._fresh += 1
        return tuple(f"g{self._fresh}c{position}" for position in range(arity))

    def query(self, db: Database, depth: int = 4, *, tables: Sequence[str] | None = None) -> Expr:
        """A random core-algebra query over (a subset of) ``db``'s tables."""
        names = list(tables) if tables is not None else list(db.external_tables())
        return self._gen(db, names, depth, target_arity=None)

    def _leaf(self, db: Database, names: Sequence[str], target_arity: int | None) -> Expr:
        candidates = [name for name in names if target_arity is None or db.schema_of(name).arity == target_arity]
        if candidates:
            return db.ref(self.rng.choice(candidates))
        # No table of the right arity: project one down / build one up.
        name = self.rng.choice(list(names))
        ref = db.ref(name)
        arity = ref.schema().arity
        assert target_arity is not None
        if arity >= target_arity:
            positions = tuple(self.rng.randrange(arity) for __ in range(target_arity))
            return Project(positions, ref, self._fresh_names(target_arity))
        widened = ref
        while widened.schema().arity < target_arity:
            widened = Product(widened, ref)
        extra = widened.schema().arity - target_arity
        positions = tuple(range(target_arity))
        if extra:
            widened = Project(positions, widened, self._fresh_names(target_arity))
        else:
            widened = rename(widened, self._fresh_names(target_arity))
        return widened

    def _gen(self, db: Database, names: Sequence[str], depth: int, target_arity: int | None) -> Expr:
        if depth <= 0:
            return self._leaf(db, names, target_arity)
        choice = self.rng.choice(("leaf", "select", "project", "dedup", "union", "monus", "product"))
        if choice == "leaf":
            return self._leaf(db, names, target_arity)
        if choice == "product":
            if target_arity is not None and target_arity < 2:
                return self._leaf(db, names, target_arity)
            if target_arity is None:
                left = self._gen(db, names, depth - 1, None)
                right = self._gen(db, names, depth - 1, None)
            else:
                left_arity = self.rng.randint(1, target_arity - 1)
                left = self._gen(db, names, depth - 1, left_arity)
                right = self._gen(db, names, depth - 1, target_arity - left_arity)
            product = Product(left, right)
            return rename(product, self._fresh_names(product.schema().arity))
        if choice in ("union", "monus"):
            left = self._gen(db, names, depth - 1, target_arity)
            right = self._gen(db, names, depth - 1, left.schema().arity)
            node = UnionAll if choice == "union" else Monus
            return node(left, rename(right, left.schema().attributes))
        child = self._gen(db, names, depth - 1, target_arity)
        if choice == "dedup":
            return DupElim(child)
        if choice == "project":
            arity = child.schema().arity
            width = target_arity if target_arity is not None else self.rng.randint(1, arity)
            positions = tuple(self.rng.randrange(arity) for __ in range(width))
            return Project(positions, child, self._fresh_names(width))
        # select: compare an attribute with a constant or another attribute
        schema = child.schema()
        left_attr = Attr(self.rng.choice(schema.attributes))
        if self.rng.random() < 0.5 and schema.arity > 1:
            right_term = Attr(self.rng.choice(schema.attributes))
        else:
            right_term = Const(self.rng.randrange(_VALUE_RANGE))
        op = self.rng.choice(("=", "!=", "<", "<=", ">", ">="))
        return Select(Comparison(op, left_attr, right_term), child)

    # ------------------------------------------------------------------
    # Substitutions and transactions
    # ------------------------------------------------------------------

    def substitution(self, db: Database, *, weakly_minimal: bool = True) -> FactoredSubstitution:
        """A random literal factored substitution over ``db``'s tables."""
        deltas: dict[str, tuple[Bag, Bag]] = {}
        schemas = {}
        for name in db.external_tables():
            schema = db.schema_of(name)
            if weakly_minimal:
                delete = self.subbag_of(db[name])
            else:
                delete = self.bag(schema.arity, 4)
            insert = self.bag(schema.arity, 4)
            deltas[name] = (delete, insert)
            schemas[name] = schema
        return FactoredSubstitution.literal(deltas, schemas)

    def transaction(self, db: Database, *, allow_over_delete: bool = False) -> UserTransaction:
        """A random insert/delete transaction over ``db``'s external tables."""
        txn = UserTransaction(db)
        names = list(db.external_tables())
        updated = self.rng.sample(names, k=self.rng.randint(1, len(names)))
        for name in updated:
            schema = db.schema_of(name)
            if self.rng.random() < 0.8:
                txn.insert(name, self.bag(schema.arity, 4))
            if self.rng.random() < 0.6:
                if allow_over_delete:
                    txn.delete(name, self.bag(schema.arity, 4))
                else:
                    txn.delete(name, self.subbag_of(db[name]))
        return txn


class RandomWorkloadGenerator:
    """Streams of random transactions for scenario-level experiments."""

    def __init__(self, seed: int = 0) -> None:
        self._gen = RandomExpressionGenerator(seed)

    def transactions(self, db: Database, count: int, *, allow_over_delete: bool = True) -> list[UserTransaction]:
        return [self._gen.transaction(db, allow_over_delete=allow_over_delete) for __ in range(count)]
