"""The retail workload of Examples 1.1 and 5.4.

Point-of-sale rows stream into a ``sales`` table (large, with
duplicates); a ``customer`` table holds customer records; the view ``V``
joins them to track sales to highly-valued customers::

    CREATE VIEW V (custId, name, score, itemNo, quantity) AS
    SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
    FROM customer c, sales s
    WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'

The paper used a Teradata/Walmart-style trace; we substitute a seeded
synthetic generator with the knobs that matter for maintenance costs:
transaction size, insert/delete mix, the fraction of high-score
customers (view selectivity), and duplicate pressure.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.algebra.bag import Row
from repro.core.transactions import UserTransaction
from repro.storage.database import Database

__all__ = ["RetailConfig", "RetailWorkload", "VIEW_SQL"]

VIEW_SQL = """
CREATE VIEW V (custId, name, score, itemNo, quantity) AS
SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
FROM customer c, sales s
WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'
"""

SALES_ATTRS = ("custId", "itemNo", "quantity", "salesPrice")
CUSTOMER_ATTRS = ("custId", "name", "address", "score")

_SCORES = ("High", "Medium", "Low")


@dataclass(frozen=True)
class RetailConfig:
    """Tunables for the synthetic retail workload."""

    customers: int = 200
    items: int = 50
    initial_sales: int = 1000
    high_score_fraction: float = 0.2
    #: Rows inserted into ``sales`` per transaction.
    txn_inserts: int = 10
    #: Fraction of transactions that also delete previously-sold rows
    #: (returns / corrections).
    delete_fraction: float = 0.2
    #: Probability a generated sale duplicates an existing row exactly.
    duplicate_fraction: float = 0.1
    #: Probability a sale row has quantity 0 (filtered out by the view).
    zero_quantity_fraction: float = 0.05
    #: Fraction of transactions that also re-score an existing customer
    #: (delete + reinsert with a changed score) — the paper's
    #: newly-valued-customer scenario: maintaining the view then has to
    #: look up that customer's accumulated sales history, so refresh
    #: cost depends on *how* the engine finds those rows (base-table
    #: scan vs. index probe).
    promotion_fraction: float = 0.0
    seed: int = 96


class RetailWorkload:
    """Deterministic (seeded) generator of retail tables and transactions."""

    def __init__(self, config: RetailConfig | None = None) -> None:
        self.config = config if config is not None else RetailConfig()
        self._rng = random.Random(self.config.seed)
        self._live_sales: list[Row] = []
        self._customers: list[Row] = []

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------

    def customer_rows(self) -> list[Row]:
        """One row per customer; scores assigned by ``high_score_fraction``."""
        rows: list[Row] = []
        high_cutoff = int(self.config.customers * self.config.high_score_fraction)
        for cust_id in range(self.config.customers):
            score = "High" if cust_id < high_cutoff else self._rng.choice(_SCORES[1:])
            rows.append((cust_id, f"customer-{cust_id}", f"{cust_id} Main St", score))
        self._customers = list(rows)
        return rows

    def _sale_row(self) -> Row:
        if self._live_sales and self._rng.random() < self.config.duplicate_fraction:
            return self._rng.choice(self._live_sales)
        cust_id = self._rng.randrange(self.config.customers)
        item = self._rng.randrange(self.config.items)
        if self._rng.random() < self.config.zero_quantity_fraction:
            quantity = 0
        else:
            quantity = self._rng.randint(1, 5)
        price = round(self._rng.uniform(1.0, 100.0), 2)
        return (cust_id, item, quantity, price)

    def initial_sales_rows(self) -> list[Row]:
        """The sales table's starting contents (also primes deletions)."""
        rows: list[Row] = []
        for __ in range(self.config.initial_sales):
            row = self._sale_row()
            rows.append(row)
            self._live_sales.append(row)  # as-we-go, so duplicates can hit
        return rows

    def setup_database(self, db: Database) -> None:
        """Create and load ``customer`` and ``sales``."""
        db.create_table("customer", CUSTOMER_ATTRS, rows=self.customer_rows())
        db.create_table("sales", SALES_ATTRS, rows=self.initial_sales_rows())

    # ------------------------------------------------------------------
    # Update stream
    # ------------------------------------------------------------------

    def next_transaction(self, db: Database) -> UserTransaction:
        """One point-of-sale transaction: inserts, occasionally returns."""
        txn = UserTransaction(db)
        inserts = [self._sale_row() for __ in range(self.config.txn_inserts)]
        self._live_sales.extend(inserts)
        txn.insert("sales", inserts)
        if self._live_sales and self._rng.random() < self.config.delete_fraction:
            victims_count = min(len(self._live_sales), self._rng.randint(1, self.config.txn_inserts))
            victims = [
                self._live_sales.pop(self._rng.randrange(len(self._live_sales)))
                for __ in range(victims_count)
            ]
            txn.delete("sales", victims)
        # Guard the RNG draw so configs with promotions disabled generate
        # exactly the sequence they did before the knob existed.
        if (
            self.config.promotion_fraction > 0
            and self._customers
            and self._rng.random() < self.config.promotion_fraction
        ):
            index = self._rng.randrange(len(self._customers))
            old = self._customers[index]
            new_score = self._rng.choice([s for s in _SCORES if s != old[3]])
            new = (old[0], old[1], old[2], new_score)
            self._customers[index] = new
            txn.delete("customer", [old])
            txn.insert("customer", [new])
        return txn

    def transactions(self, db: Database, count: int) -> Iterator[UserTransaction]:
        """A stream of ``count`` transactions against ``db``."""
        for __ in range(count):
            yield self.next_transaction(db)

    def schedule(
        self,
        db: Database,
        *,
        horizon: int,
        txns_per_tick: int = 1,
    ) -> list[tuple[int, tuple[UserTransaction, ...]]]:
        """A driver schedule: ``txns_per_tick`` transactions at every tick."""
        return [
            (tick, tuple(self.next_transaction(db) for __ in range(txns_per_tick)))
            for tick in range(1, horizon + 1)
        ]
