"""A TPC-flavoured orders/lineitems workload.

A second synthetic domain beyond the retail example, exercising the
parts of the algebra the retail view does not: multi-table updates in
one transaction, a difference (EXCEPT-style) view, and several views
maintained over the same base tables.

Schema::

    orders(orderId, custId, status)
    lineitems(orderId, sku, qty)

Interesting views:

* ``open_order_lines`` — join: line items of open orders;
* ``empty_orders``    — difference: orders with *no* line items
  (a monus view — exactly the shape where the state bug bites);
* ``order_ids``       — DISTINCT projection (duplicate elimination).

Transactions place orders (insert into both tables), ship items
(delete lineitems), and cancel orders (delete from both tables) —
multi-table updates throughout.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.algebra.bag import Row
from repro.core.transactions import UserTransaction
from repro.storage.database import Database

__all__ = ["OrdersConfig", "OrdersWorkload", "OPEN_ORDER_LINES_SQL", "ORDER_IDS_SQL", "EMPTY_ORDERS_SQL"]

OPEN_ORDER_LINES_SQL = """
CREATE VIEW open_order_lines (orderId, custId, sku, qty) AS
SELECT o.orderId, o.custId, l.sku, l.qty
FROM orders o, lineitems l
WHERE o.orderId = l.orderId AND o.status = 'open'
"""

ORDER_IDS_SQL = "CREATE VIEW order_ids AS SELECT DISTINCT orderId FROM orders"

EMPTY_ORDERS_SQL = """
CREATE VIEW empty_orders AS
SELECT DISTINCT orderId FROM orders
EXCEPT
SELECT DISTINCT orderId FROM lineitems
"""

ORDERS_ATTRS = ("orderId", "custId", "status")
LINEITEMS_ATTRS = ("orderId", "sku", "qty")

_STATUSES = ("open", "shipped", "cancelled")


@dataclass(frozen=True)
class OrdersConfig:
    """Tunables for the orders workload."""

    customers: int = 50
    skus: int = 30
    initial_orders: int = 100
    #: Mean line items per order (0..2*mean uniformly).
    lines_per_order: int = 3
    seed: int = 1996


class OrdersWorkload:
    """Deterministic generator of orders-domain tables and transactions."""

    def __init__(self, config: OrdersConfig | None = None) -> None:
        self.config = config if config is not None else OrdersConfig()
        self._rng = random.Random(self.config.seed)
        self._next_order_id = 0
        self._open_orders: list[Row] = []
        self._live_lines: list[Row] = []

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------

    def _new_order(self, status: str = "open") -> Row:
        self._next_order_id += 1
        return (self._next_order_id, self._rng.randrange(self.config.customers), status)

    def _new_lines(self, order_id: int) -> list[Row]:
        count = self._rng.randint(0, 2 * self.config.lines_per_order)
        return [
            (order_id, self._rng.randrange(self.config.skus), self._rng.randint(1, 9))
            for __ in range(count)
        ]

    def setup_database(self, db: Database) -> None:
        """Create and load ``orders`` and ``lineitems``."""
        orders: list[Row] = []
        lines: list[Row] = []
        for __ in range(self.config.initial_orders):
            order = self._new_order(self._rng.choice(_STATUSES))
            orders.append(order)
            new_lines = self._new_lines(order[0])
            lines.extend(new_lines)
            if order[2] == "open":
                self._open_orders.append(order)
                self._live_lines.extend(new_lines)
        db.create_table("orders", ORDERS_ATTRS, rows=orders)
        db.create_table("lineitems", LINEITEMS_ATTRS, rows=lines)

    # ------------------------------------------------------------------
    # Transactions (all multi-table)
    # ------------------------------------------------------------------

    def place_order(self, db: Database) -> UserTransaction:
        """Insert a new order together with its line items."""
        order = self._new_order()
        lines = self._new_lines(order[0])
        self._open_orders.append(order)
        self._live_lines.extend(lines)
        txn = UserTransaction(db).insert("orders", [order])
        if lines:
            txn.insert("lineitems", lines)
        return txn

    def ship_order(self, db: Database) -> UserTransaction:
        """Flip an open order to shipped: delete + reinsert the order row."""
        if not self._open_orders:
            return self.place_order(db)
        order = self._open_orders.pop(self._rng.randrange(len(self._open_orders)))
        shipped = (order[0], order[1], "shipped")
        return UserTransaction(db).delete("orders", [order]).insert("orders", [shipped])

    def cancel_order(self, db: Database) -> UserTransaction:
        """Remove an open order and all its line items, in one transaction."""
        if not self._open_orders:
            return self.place_order(db)
        order = self._open_orders.pop(self._rng.randrange(len(self._open_orders)))
        doomed = [line for line in self._live_lines if line[0] == order[0]]
        self._live_lines = [line for line in self._live_lines if line[0] != order[0]]
        txn = UserTransaction(db).delete("orders", [order])
        if doomed:
            txn.delete("lineitems", doomed)
        return txn

    def next_transaction(self, db: Database) -> UserTransaction:
        kind = self._rng.random()
        if kind < 0.6:
            return self.place_order(db)
        if kind < 0.85:
            return self.ship_order(db)
        return self.cancel_order(db)

    def transactions(self, db: Database, count: int) -> Iterator[UserTransaction]:
        for __ in range(count):
            yield self.next_transaction(db)
