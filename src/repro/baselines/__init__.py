"""Baseline algorithms the paper compares against or improves upon.

* :mod:`repro.baselines.recompute` — refresh by full recomputation;
* :mod:`repro.baselines.preupdate_bug` — the pre-update incremental
  algorithm naively evaluated in the post-update state (the *state bug*
  victim, Section 1.2);
* :mod:`repro.baselines.hanson` — Hanson-style suspended updates via
  differential files on base tables [Han87, SL76].
"""

from repro.baselines.hanson import HansonDifferentialFiles
from repro.baselines.preupdate_bug import buggy_post_update_refresh
from repro.baselines.recompute import RecomputeScenario

__all__ = ["RecomputeScenario", "buggy_post_update_refresh", "HansonDifferentialFiles"]
