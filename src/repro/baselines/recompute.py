"""Baseline: deferred maintenance by full recomputation.

No auxiliary information is kept at all.  Transactions run unmodified;
``refresh`` recomputes ``Q`` from scratch under the view's write lock.
This is the baseline every incremental technique must beat on refresh
time — and the crossover against the incremental ``refresh_BL`` as the
pending-change volume grows is experiment E7.
"""

from __future__ import annotations

from repro.core import invariants
from repro.core.plan import MaintenancePlan
from repro.core.scenarios import Scenario
from repro.core.transactions import UserTransaction

__all__ = ["RecomputeScenario"]


class RecomputeScenario(Scenario):
    """Zero-bookkeeping deferred maintenance: refresh = recompute."""

    tag = "RC"

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """No auxiliary work: the user transaction runs as-is."""
        return MaintenancePlan(patches=txn.weakly_minimal().patches())

    def refresh(self) -> None:
        """``MV := Q`` under the exclusive lock."""
        with self.ledger.exclusive(self.view.mv_table, label="recompute", counter=self.counter):
            self.db.apply({self.view.mv_table: self.view.query}, counter=self.counter)

    def invariant_holds(self) -> bool:
        """This scenario has no invariant beyond refresh correctness.

        Immediately after :meth:`refresh` the view is consistent; in
        between, nothing relates ``MV`` to the current state.  We report
        the only checkable property: ``MV`` equals the view schema shape.
        """
        return self.db[self.view.mv_table].arity in (None, self.view.schema.arity)

    def is_consistent(self) -> bool:
        return invariants.immediate_invariant(self.db, self.view)
