"""The *state bug* victim: pre-update incremental queries evaluated
post-update.

Prior work ([BLT86, Han87, QW91, GL95]) derives incremental queries that
are correct when evaluated in the **pre-update** state.  Section 1.2 of
the paper shows that evaluating those same queries **after** the base
tables have changed — the natural thing to do in deferred maintenance —
yields wrong multiplicities (Example 1.2) and even wrong tuples
(Example 1.3).

This module implements exactly that faulty procedure, for experiments
E1, E2 and E9: treat the log's recorded deletions/insertions as if they
were a transaction's :math:`\\nabla R / \\triangle R`, differentiate with
the *pre-update* rules, and evaluate the resulting deltas in the current
(post-update) state.
"""

from __future__ import annotations

from repro.algebra.bag import Bag
from repro.algebra.expr import Expr, Monus, UnionAll
from repro.core.differential import differentiate
from repro.core.logs import Log
from repro.core.substitution import FactoredSubstitution
from repro.storage.database import Database

__all__ = ["buggy_post_update_delta", "buggy_post_update_refresh"]


def _log_as_transaction_substitution(log: Log, db: Database) -> FactoredSubstitution:
    """Misread the log as a pending transaction: ∇R := ▼R, ΔR := ▲R.

    (The correct post-update construction uses the *reversed* roles —
    that reversal is exactly what the duality of Section 4 provides and
    what this baseline omits.)
    """
    entries = {name: (log.delete_ref(name), log.insert_ref(name)) for name in log.tables}
    schemas = {name: db.schema_of(name) for name in log.tables}
    return FactoredSubstitution(entries, schemas)


def buggy_post_update_delta(log: Log, db: Database, query: Expr) -> tuple[Expr, Expr]:
    """The pre-update incremental queries, as prior work would build them."""
    eta = _log_as_transaction_substitution(log, db)
    return differentiate(eta, query)


def buggy_post_update_refresh(log: Log, db: Database, query: Expr, mv_table: str) -> Bag:
    """Compute what ``MV`` *would* contain after the faulty refresh.

    Evaluates the pre-update deltas in the current (post-update) state
    and applies them to ``MV``.  Returns the resulting bag without
    committing it, so experiments can compare it against the correct
    refresh on the same database.
    """
    delete, insert = buggy_post_update_delta(log, db, query)
    mv_ref = db.ref(mv_table)
    return db.evaluate(UnionAll(Monus(mv_ref, delete), insert))
