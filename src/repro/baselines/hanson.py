"""Hanson-style suspended updates via differential files [Han87, SL76].

The historical way to dodge the state bug: never actually apply updates
to base tables.  Each base table ``R`` is *virtual*, reconstructed as

.. math::

    R = (B \\dot{-} D) \\uplus A

where ``B`` holds the last-applied ("old") value and ``D`` / ``A`` hold
suspended deletions / insertions.  Because ``B`` still contains the
pre-update state, the **pre-update** incremental algorithm is directly
applicable at refresh time — no duality needed.

The price, which Section 4.2 calls out, is that *every* query against a
base table must evaluate :math:`(B \\dot{-} D) \\uplus A` instead of a
plain scan.  :meth:`HansonDifferentialFiles.query_cost_ratio` measures
that slowdown, which is the baseline's entry in experiment E5.
"""

from __future__ import annotations

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr, Literal, Monus, TableRef, UnionAll
from repro.core.differential import differentiate
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = ["HansonDifferentialFiles"]


def _base_name(table: str) -> str:
    return f"__han_base__{table}"


def _susp_delete_name(table: str) -> str:
    return f"__han_del__{table}"


def _susp_insert_name(table: str) -> str:
    return f"__han_ins__{table}"


class HansonDifferentialFiles:
    """Deferred maintenance with suspended updates on base tables."""

    tag = "HAN"

    def __init__(
        self,
        db: Database,
        view: ViewDefinition,
        *,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
    ) -> None:
        self.db = db
        self.view = view
        self.counter = counter if counter is not None else CostCounter()
        self.ledger = ledger if ledger is not None else LockLedger()
        self._tables = tuple(sorted(view.base_tables()))
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Split each base table into (B, D, A); materialize MV from B."""
        if self._installed:
            return
        for name in self._tables:
            schema = self.db.schema_of(name)
            self.db.create_table(_base_name(name), schema, rows=self.db[name], internal=True)
            self.db.create_table(_susp_delete_name(name), schema, internal=True)
            self.db.create_table(_susp_insert_name(name), schema, internal=True)
        initial = self.db.evaluate(self._query_over_bases(), counter=self.counter)
        self.db.create_table(self.view.mv_table, self.view.schema, rows=initial, internal=True)
        self._installed = True

    def _query_over_bases(self) -> Expr:
        """The view query with every ``R`` replaced by its stored ``B``."""
        mapping = {
            name: TableRef(_base_name(name), self.db.schema_of(name)) for name in self._tables
        }
        return self.view.query.substitute(mapping)

    # ------------------------------------------------------------------
    # Virtual base tables
    # ------------------------------------------------------------------

    def virtual_expr(self, name: str) -> Expr:
        """The reconstruction :math:`(B \\dot{-} D) \\uplus A` for table ``name``."""
        schema = self.db.schema_of(name)
        return UnionAll(
            Monus(TableRef(_base_name(name), schema), TableRef(_susp_delete_name(name), schema)),
            TableRef(_susp_insert_name(name), schema),
        )

    def read_table(self, name: str) -> Bag:
        """What a user query over base table ``name`` must now evaluate."""
        return self.db.evaluate(self.virtual_expr(name), counter=self.counter)

    def query_cost_ratio(self, name: str) -> float:
        """Tuple-op cost of a virtual scan relative to a plain scan."""
        probe = CostCounter()
        self.db.evaluate(self.virtual_expr(name), counter=probe)
        virtual_cost = probe.tuples_out
        probe.reset()
        self.db.evaluate(self.db.ref(name), counter=probe)
        plain_cost = probe.tuples_out
        return virtual_cost / plain_cost if plain_cost else float("inf")

    # ------------------------------------------------------------------
    # Transactions: suspend instead of apply
    # ------------------------------------------------------------------

    def execute(self, txn: UserTransaction) -> None:
        """Record the transaction's deltas into D/A; also keep the real
        tables current so the rest of the system sees normal semantics."""
        txn = txn.weakly_minimal()
        patches: dict[str, tuple[Expr, Expr]] = txn.patches()
        for name in sorted(set(txn.tables) & set(self._tables)):
            nabla = txn.delete_expr(name)
            delta = txn.insert_expr(name)
            schema = self.db.schema_of(name)
            empty = Literal(Bag.empty(), schema)
            susp_insert = TableRef(_susp_insert_name(name), schema)
            # Same weakly minimal folding as the paper's logs, as patches:
            # D := D ⊎ (∇R ∸ A);  A := (A ∸ ∇R) ⊎ ΔR
            patches[_susp_delete_name(name)] = (empty, Monus(nabla, susp_insert))
            patches[_susp_insert_name(name)] = (nabla, delta)
        self.db.apply(patches=patches, counter=self.counter)

    # ------------------------------------------------------------------
    # Refresh: the pre-update algorithm is sound here
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Apply pre-update deltas w.r.t. the stored bases, then absorb
        the suspended updates into ``B``."""
        entries: dict[str, tuple[Expr, Expr]] = {}
        schemas = {}
        for name in self._tables:
            schema = self.db.schema_of(name)
            entries[_base_name(name)] = (
                TableRef(_susp_delete_name(name), schema),
                TableRef(_susp_insert_name(name), schema),
            )
            schemas[_base_name(name)] = schema
        eta = FactoredSubstitution(entries, schemas)
        query_b = self._query_over_bases()
        delete, insert = differentiate(eta, query_b)

        patches: dict[str, tuple[Expr, Expr]] = {self.view.mv_table: (delete, insert)}
        assignments: dict[str, Expr] = {}
        for name in self._tables:
            schema = self.db.schema_of(name)
            # Absorb suspended updates into the base, delta-proportionally.
            patches[_base_name(name)] = (
                TableRef(_susp_delete_name(name), schema),
                TableRef(_susp_insert_name(name), schema),
            )
            assignments[_susp_delete_name(name)] = Literal(Bag.empty(), schema)
            assignments[_susp_insert_name(name)] = Literal(Bag.empty(), schema)
        with self.ledger.exclusive(self.view.mv_table, label="refresh_HAN", counter=self.counter):
            self.db.apply(assignments, patches=patches, counter=self.counter)

    def read_view(self) -> Bag:
        return self.db[self.view.mv_table]

    def is_consistent(self) -> bool:
        """MV equals Q over the *virtual* (current) base tables."""
        mapping = {name: self.virtual_expr(name) for name in self._tables}
        return self.db.evaluate(self.view.query.substitute(mapping)) == self.read_view()
