"""Extensions: the paper's Section 7 future-work items, implemented.

* :mod:`repro.extensions.sharedlog` — *"How should log information be
  stored so that the work done by makesafe_BL[T] is minimal, and
  independent of the number of views supported?"*  A single sequenced
  change log per base table, shared by all views via per-view cursors.
* :mod:`repro.extensions.scoped` — *"Are there algorithms to refresh
  only those parts of a view needed by a given query?"*  Query-scoped
  partial refresh: apply only the differential-table rows a selection
  predicate needs.
* :mod:`repro.extensions.concurrency` — *"What are the problems related
  to concurrency control in the presence of materialized views?"*  A
  reader/refresh blocking simulation quantifying how refresh critical
  sections delay concurrent view readers.
* :mod:`repro.extensions.aggregates` — the aggregation the paper sets
  aside as orthogonal (Example 1.1): COUNT/SUM views maintained
  incrementally from the base query's differential tables.
"""

from repro.extensions.aggregates import AggregateScenario, AggregateSpec, AggregateView
from repro.extensions.concurrency import BlockingSimulation, ReaderStats
from repro.extensions.scoped import scoped_partial_refresh, scoped_query
from repro.extensions.sharedlog import SharedLog, SharedLogScenario

__all__ = [
    "SharedLog",
    "SharedLogScenario",
    "scoped_partial_refresh",
    "scoped_query",
    "BlockingSimulation",
    "ReaderStats",
    "AggregateSpec",
    "AggregateView",
    "AggregateScenario",
]
