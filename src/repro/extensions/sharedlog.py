"""Shared, sequenced change logs (future work item 2 of Section 7).

The paper's ``makesafe_BL`` keeps one log *per view*: a transaction
touching a table read by ``n`` views performs ``n`` log extensions.  The
paper asks how to make per-transaction work independent of the number of
views.  This module answers with a **shared sequenced log**:

* one internal log table per base table, with rows
  ``(seq, op, column…)`` where ``op`` is ``'D'`` or ``'I'``;
* every transaction appends its (weakly minimized) deltas exactly once
  per touched table, tagged with a global sequence number — O(changes),
  independent of the view count;
* each view keeps a *cursor*: the sequence number through which it has
  already refreshed.  Refreshing a view replays the entries past its
  cursor with the same weakly-minimal folding as ``makesafe_BL``
  (Lemma 4), reconstructing the net ``(▼R, ▲R)`` bags, and then applies
  the standard post-update deltas of Section 4;
* entries at or below the minimum cursor are pruned.

:class:`SharedLogScenario` packages this as a drop-in scenario: the
``INV_BL`` invariant holds for every registered view with respect to its
cursor's slice of the log.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr, Literal, Product, UnionAll
from repro.algebra.schema import Schema
from repro.core.differential import differentiate
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = ["SharedLog", "SharedLogScenario"]

DELETE_OP = "D"
INSERT_OP = "I"


def shared_log_name(table: str) -> str:
    """Name of the shared sequenced log for base table ``table``."""
    return f"__shared_log__{table}"


class SharedLog:
    """One sequenced change log per tracked base table, shared by all views."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._tables: set[str] = set()
        self._seq = 0

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    @property
    def current_seq(self) -> int:
        """The sequence number of the most recent recorded transaction."""
        return self._seq

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def track(self, table: str) -> None:
        """Start logging changes to ``table`` (idempotent)."""
        if table in self._tables:
            return
        schema = self._db.schema_of(table)
        log_schema = Schema(("__seq", "__op", *schema.attributes))
        self._db.create_table(shared_log_name(table), log_schema, internal=True)
        self._tables.add(table)

    def _log_ref(self, table: str):
        return self._db.ref(shared_log_name(table))

    # ------------------------------------------------------------------
    # Recording — O(changes), independent of the number of views
    # ------------------------------------------------------------------

    def extend_patches(self, txn: UserTransaction) -> dict[str, tuple[Expr, Expr]]:
        """Append the transaction's deltas, tagged with a fresh sequence
        number — one insert-only patch per touched tracked table, so the
        recording cost is O(changes), independent of the view count."""
        self._seq += 1
        tag_schema = Schema(("__seq", "__op"))
        patches: dict[str, tuple[Expr, Expr]] = {}
        for table in sorted(txn.tables & self._tables):
            log_schema = Schema(("__seq", "__op", *self._db.schema_of(table).attributes))
            pieces: Expr = Literal(Bag.empty(), log_schema)
            delete = txn.delete_expr(table)
            insert = txn.insert_expr(table)
            if not (isinstance(delete, Literal) and not delete.bag):
                tag = Literal(Bag.singleton((self._seq, DELETE_OP)), tag_schema)
                pieces = UnionAll(pieces, Product(tag, delete))
            if not (isinstance(insert, Literal) and not insert.bag):
                tag = Literal(Bag.singleton((self._seq, INSERT_OP)), tag_schema)
                pieces = UnionAll(pieces, Product(tag, insert))
            patches[shared_log_name(table)] = (Literal(Bag.empty(), log_schema), pieces)
        return patches

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def net_deltas_since(self, table: str, cursor: int) -> tuple[Bag, Bag]:
        """The net ``(▼R, ▲R)`` for entries with ``seq > cursor``.

        Replays per-transaction folding in sequence order, so the result
        is exactly the weakly minimal log ``makesafe_BL`` would have
        accumulated over the same transactions (Lemma 4).
        """
        if table not in self._tables:
            raise SchemaError(f"table {table!r} is not tracked by the shared log")
        entries: dict[int, tuple[dict[Row, int], dict[Row, int]]] = {}
        for row, count in self._db[shared_log_name(table)].items():
            seq, op, *values = row
            if seq <= cursor:
                continue
            deletes, inserts = entries.setdefault(seq, ({}, {}))
            side = deletes if op == DELETE_OP else inserts
            key = tuple(values)
            side[key] = side.get(key, 0) + count
        net_delete = Bag.empty()
        net_insert = Bag.empty()
        for seq in sorted(entries):
            delete = Bag.from_counts(entries[seq][0])
            insert = Bag.from_counts(entries[seq][1])
            # ▼ := ▼ ⊎ (∇ ∸ ▲);  ▲ := (▲ ∸ ∇) ⊎ Δ   (simultaneously)
            net_delete, net_insert = (
                net_delete.union_all(delete.monus(net_insert)),
                net_insert.monus(delete).union_all(insert),
            )
        return net_delete, net_insert

    def substitution_since(self, cursor: int, tables: Iterable[str]) -> FactoredSubstitution:
        """The log substitution L̂ for the slice past ``cursor``."""
        deltas: dict[str, tuple[Bag, Bag]] = {}
        schemas: dict[str, Schema] = {}
        for table in tables:
            net_delete, net_insert = self.net_deltas_since(table, cursor)
            # Past queries undo changes: D = recorded inserts, A = deletes.
            deltas[table] = (net_insert, net_delete)
            schemas[table] = self._db.schema_of(table)
        return FactoredSubstitution.literal(deltas, schemas)

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def prune(self, min_cursor: int) -> int:
        """Drop entries no view still needs; returns rows removed."""
        removed = 0
        for table in self._tables:
            name = shared_log_name(table)
            current = self._db[name]
            kept = Bag.from_counts(
                {row: count for row, count in current.items() if row[0] > min_cursor}
            )
            removed += len(current) - len(kept)
            self._db.set_table(name, kept)
        return removed


class SharedLogScenario:
    """Deferred maintenance of *many* views over one shared log.

    Register views with :meth:`add_view`; run transactions with
    :meth:`execute` (per-transaction cost does not grow with the number
    of views); refresh views individually with :meth:`refresh`.
    """

    tag = "SL"

    def __init__(
        self,
        db: Database,
        *,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
    ) -> None:
        self.db = db
        self.shared_log = SharedLog(db)
        self.counter = counter if counter is not None else CostCounter()
        self.ledger = ledger if ledger is not None else LockLedger()
        self._views: dict[str, ViewDefinition] = {}
        self._cursors: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def add_view(self, view: ViewDefinition) -> None:
        """Register and materialize a view; its cursor starts at 'now'."""
        if view.name in self._views:
            raise SchemaError(f"view {view.name!r} already registered")
        for table in sorted(view.base_tables()):
            self.shared_log.track(table)
        initial = self.db.evaluate(view.query, counter=self.counter)
        self.db.create_table(view.mv_table, view.schema, rows=initial, internal=True)
        self._views[view.name] = view
        self._cursors[view.name] = self.shared_log.current_seq

    def views(self) -> tuple[str, ...]:
        return tuple(self._views)

    def cursor(self, name: str) -> int:
        return self._cursors[name]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def execute(self, txn: UserTransaction) -> None:
        """Run the transaction with a single shared-log extension."""
        txn = txn.weakly_minimal()
        patches = txn.patches()
        patches.update(self.shared_log.extend_patches(txn))
        self.db.apply(patches=patches, counter=self.counter)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, name: str) -> None:
        """Bring one view up to date and advance its cursor."""
        try:
            view = self._views[name]
        except KeyError:
            raise PolicyError(f"view {name!r} is not registered") from None
        cursor = self._cursors[name]
        eta = self.shared_log.substitution_since(cursor, sorted(view.base_tables()))
        # Weakly minimal by replay (Lemma 4), so the simplified duality applies:
        # ▼(L,Q) = Add(L̂,Q), ▲(L,Q) = Del(L̂,Q).
        del_hat, add_hat = differentiate(eta, view.query)
        with self.ledger.exclusive(view.mv_table, label="refresh_SL", counter=self.counter):
            self.db.apply(patches={view.mv_table: (add_hat, del_hat)}, counter=self.counter)
        self._cursors[name] = self.shared_log.current_seq
        self.shared_log.prune(min(self._cursors.values()))

    def refresh_all(self) -> None:
        for name in self._views:
            self.refresh(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def read_view(self, name: str) -> Bag:
        return self.db[self._views[name].mv_table]

    def is_consistent(self, name: str) -> bool:
        view = self._views[name]
        return self.db.evaluate(view.query) == self.db[view.mv_table]

    def invariant_holds(self, name: str) -> bool:
        """``INV_BL`` relative to the view's cursor slice of the shared log."""
        view = self._views[name]
        eta = self.shared_log.substitution_since(self._cursors[name], sorted(view.base_tables()))
        past = self.db.evaluate(eta.apply(view.query))
        return past == self.db[view.mv_table]

    def check_invariants(self) -> None:
        from repro.core.invariants import require

        for name in self._views:
            require(self.invariant_holds(name), f"shared-log invariant broken for view {name!r}")

    def log_size(self) -> int:
        """Total rows currently held across all shared log tables."""
        return sum(len(self.db[shared_log_name(table)]) for table in self.shared_log.tables)
