"""Shared, sequenced change logs (future work item 2 of Section 7).

The paper's ``makesafe_BL`` keeps one log *per view*: a transaction
touching a table read by ``n`` views performs ``n`` log extensions.  The
paper asks how to make per-transaction work independent of the number of
views.  This module answers with a **shared sequenced log**:

* one internal log table per base table, with rows
  ``(seq, op, column…)`` where ``op`` is ``'D'`` or ``'I'``;
* every transaction appends its (weakly minimized) deltas exactly once
  per touched table, tagged with a global sequence number — O(changes),
  independent of the view count;
* each view keeps a *cursor*: the sequence number through which it has
  already refreshed.  Refreshing a view replays the entries past its
  cursor with the same weakly-minimal folding as ``makesafe_BL``
  (Lemma 4), reconstructing the net ``(▼R, ▲R)`` bags, and then applies
  the standard post-update deltas of Section 4;
* entries at or below the minimum cursor are pruned.

:class:`SharedLogScenario` packages this as a drop-in scenario: the
``INV_BL`` invariant holds for every registered view with respect to its
cursor's slice of the log.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr, Literal, Product, UnionAll
from repro.algebra.schema import Schema
from repro.core.differential import differentiate
from repro.core.plan import MaintenancePlan
from repro.core.scenarios import Scenario
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError
from repro.exec.group import (
    EpochDeltaCache,
    GroupScheduler,
    GroupTask,
    evaluate_delta_pair,
    subplan_fingerprint,
)
from repro.robustness.faults import fault_point
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = ["SharedLog", "SharedLogScenario", "SharedLogView"]

DELETE_OP = "D"
INSERT_OP = "I"


def shared_log_name(table: str) -> str:
    """Name of the shared sequenced log for base table ``table``."""
    return f"__shared_log__{table}"


class SharedLog:
    """One sequenced change log per tracked base table, shared by all views."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._tables: set[str] = set()
        self._seq = 0

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    @property
    def current_seq(self) -> int:
        """The sequence number of the most recent recorded transaction."""
        return self._seq

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def track(self, table: str) -> None:
        """Start logging changes to ``table`` (idempotent)."""
        if table in self._tables:
            return
        name = shared_log_name(table)
        if self._db.has_table(name):
            # Reattach to a persisted log table (warehouse reload path).
            self._tables.add(table)
            return
        schema = self._db.schema_of(table)
        log_schema = Schema(("__seq", "__op", *schema.attributes))
        self._db.create_table(name, log_schema, internal=True)
        self._tables.add(table)

    def restore_seq(self, seq: int) -> None:
        """Fast-forward the sequence counter (warehouse reload path)."""
        self._seq = max(self._seq, seq)

    def _log_ref(self, table: str):
        return self._db.ref(shared_log_name(table))

    # ------------------------------------------------------------------
    # Recording — O(changes), independent of the number of views
    # ------------------------------------------------------------------

    def extend_patches(self, txn: UserTransaction) -> dict[str, tuple[Expr, Expr]]:
        """Append the transaction's deltas, tagged with a fresh sequence
        number — one insert-only patch per touched tracked table, so the
        recording cost is O(changes), independent of the view count."""
        self._seq += 1
        tag_schema = Schema(("__seq", "__op"))
        patches: dict[str, tuple[Expr, Expr]] = {}
        for table in sorted(txn.tables & self._tables):
            log_schema = Schema(("__seq", "__op", *self._db.schema_of(table).attributes))
            pieces: Expr = Literal(Bag.empty(), log_schema)
            delete = txn.delete_expr(table)
            insert = txn.insert_expr(table)
            if not (isinstance(delete, Literal) and not delete.bag):
                tag = Literal(Bag.singleton((self._seq, DELETE_OP)), tag_schema)
                pieces = UnionAll(pieces, Product(tag, delete))
            if not (isinstance(insert, Literal) and not insert.bag):
                tag = Literal(Bag.singleton((self._seq, INSERT_OP)), tag_schema)
                pieces = UnionAll(pieces, Product(tag, insert))
            patches[shared_log_name(table)] = (Literal(Bag.empty(), log_schema), pieces)
        return patches

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def net_deltas_since(self, table: str, cursor: int) -> tuple[Bag, Bag]:
        """The net ``(▼R, ▲R)`` for entries with ``seq > cursor``.

        Replays per-transaction folding in sequence order, so the result
        is exactly the weakly minimal log ``makesafe_BL`` would have
        accumulated over the same transactions (Lemma 4).
        """
        if table not in self._tables:
            raise SchemaError(f"table {table!r} is not tracked by the shared log")
        entries: dict[int, tuple[dict[Row, int], dict[Row, int]]] = {}
        for row, count in self._db[shared_log_name(table)].items():
            seq, op, *values = row
            if seq <= cursor:
                continue
            deletes, inserts = entries.setdefault(seq, ({}, {}))
            side = deletes if op == DELETE_OP else inserts
            key = tuple(values)
            side[key] = side.get(key, 0) + count
        return self._fold(entries)

    @staticmethod
    def _fold(entries: dict[int, tuple[dict[Row, int], dict[Row, int]]]) -> tuple[Bag, Bag]:
        """Fold per-transaction deltas (in sequence order) into one net pair."""
        net_delete = Bag.empty()
        net_insert = Bag.empty()
        for seq in sorted(entries):
            delete = Bag.from_counts(entries[seq][0])
            insert = Bag.from_counts(entries[seq][1])
            # ▼ := ▼ ⊎ (∇ ∸ ▲);  ▲ := (▲ ∸ ∇) ⊎ Δ   (simultaneously)
            net_delete, net_insert = (
                net_delete.union_all(delete.monus(net_insert)),
                net_insert.monus(delete).union_all(insert),
            )
        return net_delete, net_insert

    def substitution_since(self, cursor: int, tables: Iterable[str]) -> FactoredSubstitution:
        """The log substitution L̂ for the slice past ``cursor``."""
        deltas: dict[str, tuple[Bag, Bag]] = {}
        schemas: dict[str, Schema] = {}
        for table in tables:
            net_delete, net_insert = self.net_deltas_since(table, cursor)
            # Past queries undo changes: D = recorded inserts, A = deletes.
            deltas[table] = (net_insert, net_delete)
            schemas[table] = self._db.schema_of(table)
        return FactoredSubstitution.literal(deltas, schemas)

    # ------------------------------------------------------------------
    # Net-effect compaction
    # ------------------------------------------------------------------

    def compact(self, cursors: Iterable[int]) -> int:
        """Fold log entries into net deltas between cursor boundaries.

        Entries are grouped into segments ``(b_{i-1}, b_i]`` delimited by
        the registered view cursors, each segment is folded with the same
        weakly-minimal recurrence as :meth:`net_deltas_since`, and the
        net pair is re-tagged with the segment's highest existing
        sequence number.  Because folding is associative, replay from
        *any* registered cursor sees exactly the same net ``(▼R, ▲R)``
        afterwards — churn (delete/insert pairs that cancel) simply
        disappears, so both the log footprint and every later
        ``PAST(L, Q)`` replay scale with the **net** change.

        Returns the number of rows removed across all log tables.
        """
        boundaries = sorted(set(cursors))
        removed = 0
        for table in self._tables:
            name = shared_log_name(table)
            current = self._db[name]
            if not current:
                continue
            segments: dict[int, dict[int, tuple[dict[Row, int], dict[Row, int]]]] = {}
            for row, count in current.items():
                seq, op, *values = row
                segment = bisect_left(boundaries, seq)
                entries = segments.setdefault(segment, {})
                deletes, inserts = entries.setdefault(seq, ({}, {}))
                side = deletes if op == DELETE_OP else inserts
                key = tuple(values)
                side[key] = side.get(key, 0) + count
            counts: dict[Row, int] = {}
            for entries in segments.values():
                tag = max(entries)
                net_delete, net_insert = self._fold(entries)
                for values, count in net_delete.items():
                    counts[(tag, DELETE_OP, *values)] = count
                for values, count in net_insert.items():
                    counts[(tag, INSERT_OP, *values)] = count
            compacted = Bag.from_counts(counts)
            if len(compacted) < len(current):
                removed += len(current) - len(compacted)
                self._db.set_table(name, compacted)
        return removed

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def prune(self, min_cursor: int) -> int:
        """Drop entries no view still needs; returns rows removed."""
        removed = 0
        for table in self._tables:
            name = shared_log_name(table)
            current = self._db[name]
            kept = Bag.from_counts(
                {row: count for row, count in current.items() if row[0] > min_cursor}
            )
            removed += len(current) - len(kept)
            self._db.set_table(name, kept)
        return removed


class SharedLogScenario:
    """Deferred maintenance of *many* views over one shared log.

    Register views with :meth:`add_view`; run transactions with
    :meth:`execute` (per-transaction cost does not grow with the number
    of views); refresh views individually with :meth:`refresh`.
    """

    tag = "SL"

    def __init__(
        self,
        db: Database,
        *,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
    ) -> None:
        self.db = db
        self.shared_log = SharedLog(db)
        self.counter = counter if counter is not None else CostCounter()
        self.ledger = ledger if ledger is not None else LockLedger()
        self._views: dict[str, ViewDefinition] = {}
        self._cursors: dict[str, int] = {}
        #: Highest sequence number durably committed by the journal; when
        #: the database is journaled, pruning never passes this floor so
        #: crash recovery can always replay from its snapshot's cursors.
        self._prune_floor: int | None = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def add_view(self, view: ViewDefinition) -> None:
        """Register and materialize a view; its cursor starts at 'now'."""
        if view.name in self._views:
            raise SchemaError(f"view {view.name!r} already registered")
        for table in sorted(view.base_tables()):
            self.shared_log.track(table)
        initial = self.db.evaluate(view.query, counter=self.counter)
        self.db.create_table(view.mv_table, view.schema, rows=initial, internal=True)
        self._views[view.name] = view
        self._cursors[view.name] = self.shared_log.current_seq

    def attach_view(self, view: ViewDefinition, cursor: int) -> None:
        """Re-register a persisted view without rematerializing it."""
        if view.name in self._views:
            raise SchemaError(f"view {view.name!r} already registered")
        for table in sorted(view.base_tables()):
            self.shared_log.track(table)
        self._views[view.name] = view
        self._cursors[view.name] = cursor

    def remove_view(self, name: str) -> None:
        """Unregister a view and drop its materialization."""
        try:
            view = self._views.pop(name)
        except KeyError:
            raise PolicyError(f"view {name!r} is not registered") from None
        self._cursors.pop(name, None)
        self.db.drop_table(view.mv_table)
        self._maybe_prune()

    def views(self) -> tuple[str, ...]:
        return tuple(self._views)

    def cursor(self, name: str) -> int:
        return self._cursors[name]

    def view_definition(self, name: str) -> ViewDefinition:
        return self._views[name]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def execute(self, txn: UserTransaction) -> None:
        """Run the transaction with a single shared-log extension."""
        txn = txn.weakly_minimal()
        patches = txn.patches()
        patches.update(self.shared_log.extend_patches(txn))
        self.db.apply(patches=patches, counter=self.counter)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, name: str) -> None:
        """Bring one view up to date and advance its cursor."""
        try:
            view = self._views[name]
        except KeyError:
            raise PolicyError(f"view {name!r} is not registered") from None
        cursor = self._cursors[name]
        eta = self.shared_log.substitution_since(cursor, sorted(view.base_tables()))
        # Weakly minimal by replay (Lemma 4), so the simplified duality applies:
        # ▼(L,Q) = Add(L̂,Q), ▲(L,Q) = Del(L̂,Q).
        del_hat, add_hat = differentiate(eta, view.query)
        with self.ledger.exclusive(view.mv_table, label="refresh_SL", counter=self.counter):
            fault_point("crash-mid-refresh")
            self.db.apply(patches={view.mv_table: (add_hat, del_hat)}, counter=self.counter)
        self._cursors[name] = self.shared_log.current_seq
        self._maybe_prune()

    def refresh_all(self) -> None:
        for name in self._views:
            self.refresh(name)

    # ------------------------------------------------------------------
    # Group refresh (compaction + delta sharing + scheduling)
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Net-effect compaction of the shared log at the view cursors."""
        return self.shared_log.compact(self._cursors.values())

    def refresh_group(
        self,
        names: Iterable[str] | None = None,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        compact: bool = True,
    ) -> None:
        """Bring a group of views up to date in one epoch.

        Compacts the shared log first (so replay cost is proportional to
        the net change), then schedules one :class:`GroupTask` per view:
        views whose queries fingerprint equal over the same cursor slice
        share a single delta evaluation through the epoch's
        :class:`EpochDeltaCache`, and independent views may evaluate
        concurrently when ``parallel=True``.  Patch application is always
        sequential in registration order, so the result is bag-equal to
        calling :meth:`refresh` on each view in turn.
        """
        members = list(names) if names is not None else list(self._views)
        for name in members:
            if name not in self._views:
                raise PolicyError(f"view {name!r} is not registered")
        if compact:
            self.compact()
        cache = EpochDeltaCache(self.counter)
        tasks = self.group_tasks(list(enumerate(members)))
        scheduler = GroupScheduler(counter=self.counter, parallel=parallel, max_workers=max_workers)
        scheduler.run(tasks, cache)
        self._maybe_prune()

    def group_tasks(self, members: Iterable[tuple[int, str]]) -> list[GroupTask]:
        """Build one refresh task per ``(order, view name)`` for this epoch.

        All tasks share the epoch's target sequence number and one
        substitution memo, so several views reading the same base tables
        from the same cursor replay the log once.
        """
        epoch = self.shared_log.current_seq
        eta_memo: dict[object, FactoredSubstitution] = {}
        return [self._group_task(order, name, epoch, eta_memo) for order, name in members]

    def _group_task(
        self,
        order: int,
        name: str,
        epoch: int,
        eta_memo: dict[object, FactoredSubstitution],
    ) -> GroupTask:
        view = self._views[name]
        cursor = self._cursors[name]
        base = tuple(sorted(view.base_tables()))
        log_tables = tuple(shared_log_name(table) for table in base)

        def eta() -> FactoredSubstitution:
            memo_key = (cursor, base)
            if memo_key not in eta_memo:
                eta_memo[memo_key] = self.shared_log.substitution_since(cursor, base)
            return eta_memo[memo_key]

        def key() -> object:
            stamps = tuple((table, self.db.version_of(table)) for table in base + log_tables)
            return ("SL", subplan_fingerprint(view.query), cursor, stamps)

        def compute(counter: CostCounter | None) -> tuple[Bag, Bag]:
            del_hat, add_hat = differentiate(eta(), view.query)
            # Same patch orientation as refresh(): MV-delete = Add(L̂,Q),
            # MV-insert = Del(L̂,Q) under weak minimality (Lemma 4).
            return evaluate_delta_pair(self.db, add_hat, del_hat, counter)

        def prime() -> None:
            del_hat, add_hat = differentiate(eta(), view.query)
            self.db.prime(add_hat, del_hat, counter=self.counter)

        def apply(deltas: tuple[Bag, Bag]) -> None:
            delete_bag, insert_bag = deltas
            with self.ledger.exclusive(view.mv_table, label="refresh_SL", counter=self.counter):
                fault_point("crash-mid-refresh")
                # The bags were already evaluated (and counted) in
                # compute(); re-emitting them as literals is free, so no
                # counter here — keeps cost parity with refresh().
                self.db.apply(
                    patches={
                        view.mv_table: (
                            Literal(delete_bag, view.schema),
                            Literal(insert_bag, view.schema),
                        )
                    },
                )
            self._cursors[name] = epoch

        return GroupTask(
            name=name,
            order=order,
            key=key,
            compute=compute,
            apply=apply,
            reads=frozenset(base + log_tables),
            writes=frozenset((view.mv_table,)),
            prime=prime,
            # The MV patch is a read-modify-write of the MV table; its
            # read side is covered by the declared write above (RVM604).
            inferred_reads=frozenset(base + log_tables) | {view.mv_table},
            inferred_writes=frozenset((view.mv_table,)),
        )

    # ------------------------------------------------------------------
    # Pruning policy
    # ------------------------------------------------------------------

    def _maybe_prune(self) -> int:
        """Prune consumed entries, deferring past the journal floor.

        On a journaled database, entries above the last durably committed
        watermark are retained even when every cursor has passed them:
        crash recovery replays the pending operation from the *previous*
        checkpoint, whose cursors may still need that slice of the log.
        :meth:`commit_watermark` advances the floor once a checkpoint
        commits.
        """
        threshold = min(self._cursors.values(), default=self.shared_log.current_seq)
        if getattr(self.db, "journaled", False):
            threshold = min(threshold, self._prune_floor or 0)
        return self.shared_log.prune(threshold)

    def commit_watermark(self) -> int:
        """Advance the prune floor to the current minimum cursor.

        Called by the durable warehouse right after a journaled operation
        commits: the just-written checkpoint contains the current
        cursors, so any replay starts at or above them and entries at or
        below the minimum cursor can never be needed again.
        """
        self._prune_floor = min(self._cursors.values(), default=self.shared_log.current_seq)
        return self._maybe_prune()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def read_view(self, name: str) -> Bag:
        return self.db[self._views[name].mv_table]

    def is_consistent(self, name: str) -> bool:
        view = self._views[name]
        return self.db.evaluate(view.query) == self.db[view.mv_table]

    def invariant_holds(self, name: str) -> bool:
        """``INV_BL`` relative to the view's cursor slice of the shared log."""
        view = self._views[name]
        eta = self.shared_log.substitution_since(self._cursors[name], sorted(view.base_tables()))
        past = self.db.evaluate(eta.apply(view.query))
        return past == self.db[view.mv_table]

    def check_invariants(self) -> None:
        from repro.core.invariants import require

        for name in self._views:
            require(self.invariant_holds(name), f"shared-log invariant broken for view {name!r}")

    def log_size(self) -> int:
        """Total rows currently held across all shared log tables."""
        return sum(len(self.db[shared_log_name(table)]) for table in self.shared_log.tables)


class SharedLogView(Scenario):
    """One view of a shared-log group, wearing the Scenario interface.

    Lets :class:`~repro.warehouse.manager.ViewManager` host shared-log
    views next to the per-view scenarios: install/refresh/invariant calls
    delegate to the owning :class:`SharedLogScenario`.  ``make_safe``
    contributes *nothing* per view — the manager appends the group's
    single log extension once per transaction, which is the whole point
    of the shared log (per-transaction cost independent of view count).
    """

    tag = "SL"

    def __init__(
        self,
        db: Database,
        view: ViewDefinition,
        *,
        group: SharedLogScenario,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(db, view, counter=counter, ledger=ledger, strict=strict)
        self.group = group

    def install(self) -> None:
        if self._installed:
            return
        self._lint_on_install()
        self.db.prime(self.view.query, counter=self.counter)
        self.group.add_view(self.view)
        self._installed = True

    def attach(self, cursor: int) -> None:
        """Reattach a persisted view at its saved cursor (reload path)."""
        if self._installed:
            return
        self.group.attach_view(self.view, cursor)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.group.remove_view(self.view.name)
        self._installed = False

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """Per-view contribution is empty — the log extension is per *group*."""
        return MaintenancePlan()

    def refresh(self) -> None:
        self.group.refresh(self.view.name)

    def invariant_holds(self) -> bool:
        return self.group.invariant_holds(self.view.name)
