"""Query-scoped partial refresh (future work item 1 of Section 7).

*"Are there algorithms to refresh only those parts of a view needed by a
given query?"*  Yes, for selection-shaped needs: selections commute with
the per-row patch arithmetic of the differential tables, so applying
only the rows of :math:`\\triangledown MV / \\triangle MV` that satisfy
a predicate ``p`` makes exactly :math:`\\sigma_p(MV)` fresh —

.. math::

    MV := (MV \\dot{-} \\sigma_p(\\triangledown MV))
           \\uplus \\sigma_p(\\triangle MV), \\qquad
    \\triangledown MV := \\sigma_{\\lnot p}(\\triangledown MV), \\quad
    \\triangle MV := \\sigma_{\\lnot p}(\\triangle MV)

After this transaction:

* :math:`\\sigma_p(MV)` equals :math:`\\sigma_p` of the view's
  propagated value (fresh for readers whose queries imply ``p``),
* the ``INV_DT`` / ``INV_C`` invariant still holds (the unapplied
  remainder stays in the differential tables),
* downtime is proportional to the *scoped* differential volume only.

Works for both :class:`~repro.core.scenarios.DiffTableScenario` and
:class:`~repro.core.scenarios.CombinedScenario` (anything with
differential tables).
"""

from __future__ import annotations

from repro.algebra.bag import Bag
from repro.algebra.expr import Literal, Select
from repro.algebra.predicates import Predicate
from repro.core.scenarios import CombinedScenario, DiffTableScenario
from repro.errors import PolicyError

__all__ = ["scoped_partial_refresh", "scoped_query"]


def _require_differential(scenario) -> None:
    if not isinstance(scenario, DiffTableScenario):
        raise PolicyError(
            "scoped refresh needs differential tables (diff_table or combined scenario), "
            f"got {type(scenario).__name__}"
        )


def scoped_partial_refresh(scenario: DiffTableScenario, predicate: Predicate) -> None:
    """Apply only the differential rows satisfying ``predicate`` to ``MV``.

    The view's invariant is preserved; the σ_p slice of the view becomes
    as fresh as the differential tables (for the combined scenario, as
    fresh as the last ``propagate``).
    """
    _require_differential(scenario)
    view = scenario.view
    db = scenario.db
    # Validate the predicate against the view schema eagerly.
    for name in predicate.attributes():
        view.schema.index_of(name)
    dt_delete = db.ref(view.dt_delete_table)
    dt_insert = db.ref(view.dt_insert_table)
    scoped_delete = Select(predicate, dt_delete)
    scoped_insert = Select(predicate, dt_insert)
    empty = Literal(Bag.empty(), view.schema)
    patches = {
        # Apply the hot slice to the view, and remove exactly that slice
        # from the differential tables — all delta-proportional patches.
        view.mv_table: (scoped_delete, scoped_insert),
        view.dt_delete_table: (scoped_delete, empty),
        view.dt_insert_table: (scoped_insert, empty),
    }
    with scenario.ledger.exclusive(
        view.mv_table, label="scoped_partial_refresh", counter=scenario.counter
    ):
        db.apply(patches=patches, counter=scenario.counter)


def scoped_query(scenario: DiffTableScenario, predicate: Predicate) -> Bag:
    """Answer :math:`\\sigma_p(V)` freshly while refreshing only that slice.

    For the combined scenario the pending log is propagated first, so the
    answer reflects *all* changes to date; for the plain differential
    scenario the differential tables already hold everything pending.
    """
    _require_differential(scenario)
    if isinstance(scenario, CombinedScenario):
        scenario.propagate()
    scoped_partial_refresh(scenario, predicate)
    view_slice = Select(predicate, scenario.db.ref(scenario.view.mv_table))
    return scenario.db.evaluate(view_slice, counter=scenario.counter)
