"""Incremental maintenance of aggregate views.

Example 1.1 notes: "In practice, views with aggregation are more likely.
For simplicity, we omit aggregation since it is orthogonal to the
problems that we discuss."  This extension supplies the orthogonal
piece, in the style of the count/sum maintenance the paper cites
([GMS93]): an aggregate view

.. code:: sql

    SELECT g1, …, gk, COUNT(*), SUM(x), … FROM (Q) GROUP BY g1, …, gk

is maintained *from the differential tables of its base query* ``Q``.
The base query is kept under the combined (``INV_C``) scenario; when its
precomputed deltas :math:`(\\triangledown MV, \\triangle MV)` are applied
during a partial refresh, the same delta bags adjust the aggregate rows
group-by-group:

* ``COUNT(*)`` of a group decreases by the group's deleted multiplicity
  and increases by its inserted multiplicity;
* ``SUM(x)`` adjusts by the signed sum of the deleted/inserted values;
* a group whose count reaches zero disappears (and cannot go negative —
  weak minimality of the differentials guarantees deletes are backed by
  existing rows).

Refreshing therefore costs O(|deltas|), never O(|base view|) — the same
downtime story as Policy 2, now for the aggregates analysts actually
read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter
from repro.core.scenarios import CombinedScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import InvariantViolation, SchemaError
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = ["AggregateSpec", "AggregateView", "AggregateScenario"]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``COUNT(*)`` or ``SUM(attr)``.

    ``alias`` overrides the default output column name (``count`` /
    ``sum_<attr>``) — it carries SQL ``AS`` aliases through.
    """

    function: str  # "count" | "sum"
    attribute: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function not in ("count", "sum"):
            raise SchemaError(f"unsupported aggregate {self.function!r} (count/sum only)")
        if self.function == "sum" and self.attribute is None:
            raise SchemaError("SUM needs an attribute")
        if self.function == "count" and self.attribute is not None:
            raise SchemaError("COUNT(*) takes no attribute")

    @property
    def column_name(self) -> str:
        if self.alias is not None:
            return self.alias
        return "count" if self.function == "count" else f"sum_{self.attribute}"


@dataclass(frozen=True)
class AggregateView:
    """An aggregate view over a base bag query."""

    name: str
    base: ViewDefinition
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        base_schema = self.base.schema
        for attr in self.group_by:
            base_schema.index_of(attr)
        for spec in self.aggregates:
            if spec.attribute is not None:
                base_schema.index_of(spec.attribute)
        if not self.aggregates:
            raise SchemaError("an aggregate view needs at least one aggregate")

    @property
    def agg_table(self) -> str:
        return f"__agg__{self.name}"

    @property
    def mv_table(self) -> str:
        """The reader-facing materialized table (alias of :attr:`agg_table`).

        Named for interface compatibility with plain views, so managers
        and lock ledgers treat aggregate views uniformly.
        """
        return self.agg_table

    def output_attributes(self) -> tuple[str, ...]:
        return self.group_by + tuple(spec.column_name for spec in self.aggregates)


class AggregateScenario:
    """Maintains an aggregate view on top of a combined-scenario base."""

    tag = "AGG"

    def __init__(
        self,
        db: Database,
        view: AggregateView,
        *,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
    ) -> None:
        self.db = db
        self.view = view
        self.counter = counter if counter is not None else CostCounter()
        self.ledger = ledger if ledger is not None else LockLedger()
        self.base = CombinedScenario(db, view.base, counter=self.counter, ledger=self.ledger)
        base_schema = view.base.schema
        self._group_positions = base_schema.positions_of(view.group_by)
        self._agg_positions = tuple(
            base_schema.index_of(spec.attribute) if spec.attribute is not None else None
            for spec in view.aggregates
        )
        self._installed = False

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------

    def _group_key(self, row: Row) -> Row:
        return tuple(row[position] for position in self._group_positions)

    def _aggregate_bag(self, rows: Bag) -> dict[Row, list]:
        """Group a bag: key -> [count, sum1, sum2, …]."""
        groups: dict[Row, list] = {}
        for row, multiplicity in rows.items():
            key = self._group_key(row)
            state = groups.setdefault(key, [0] + [0] * len(self.view.aggregates))
            state[0] += multiplicity
            for index, position in enumerate(self._agg_positions):
                if position is not None:
                    state[1 + index] += row[position] * multiplicity
        return groups

    def _state_to_rows(self, groups: dict[Row, list]) -> Bag:
        rows = []
        for key, state in groups.items():
            cells = []
            for index, spec in enumerate(self.view.aggregates):
                cells.append(state[0] if spec.function == "count" else state[1 + index])
            rows.append(key + tuple(cells))
        return Bag(rows)

    def _current_groups(self) -> dict[Row, list]:
        """Decode the stored aggregate table back into group state."""
        groups: dict[Row, list] = {}
        key_width = len(self.view.group_by)
        count_index = next(
            index for index, spec in enumerate(self.view.aggregates) if spec.function == "count"
        )
        for row in self.db[self.view.agg_table].support:
            key = row[:key_width]
            cells = row[key_width:]
            state = [cells[count_index]] + [0] * len(self.view.aggregates)
            for index, spec in enumerate(self.view.aggregates):
                if spec.function == "sum":
                    state[1 + index] = cells[index]
            groups[key] = state
        return groups

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        if not any(spec.function == "count" for spec in self.view.aggregates):
            # The count column is the group-liveness witness; require it.
            raise SchemaError("aggregate views must include COUNT(*) to track group liveness")
        self.base.install()
        groups = self._aggregate_bag(self.db[self.view.base.mv_table])
        self.db.create_table(
            self.view.agg_table,
            self.view.output_attributes(),
            rows=self._state_to_rows(groups),
            internal=True,
        )
        self._installed = True

    def uninstall(self) -> None:
        """Drop the aggregate table and the base view's tables."""
        if not self._installed:
            return
        self.db.drop_table(self.view.agg_table)
        self.base.uninstall()
        self._installed = False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def execute(self, txn: UserTransaction) -> None:
        """Per-transaction work is the base scenario's log extension only."""
        self.base.execute(txn)

    def make_safe(self, txn: UserTransaction):
        """``makesafe`` delegates to the base scenario (log extension only)."""
        return self.base.make_safe(txn)

    def post_execute(self) -> None:
        self.base.post_execute()

    def propagate(self) -> None:
        """Move base-table changes into the base view's differentials."""
        self.base.propagate()

    def partial_refresh(self) -> None:
        """Apply the base deltas to both the base view and the aggregates.

        The delta bags are captured before the base partial refresh
        clears them; the aggregate adjustment is O(|deltas|).
        """
        base_view = self.view.base
        deleted = self.db[base_view.dt_delete_table]
        inserted = self.db[base_view.dt_insert_table]
        with self.ledger.exclusive(self.view.agg_table, label="agg_refresh", counter=self.counter):
            self.base.partial_refresh()
            if not deleted and not inserted:
                return
            groups = self._current_groups()
            for bag, sign in ((deleted, -1), (inserted, +1)):
                for row, multiplicity in bag.items():
                    key = self._group_key(row)
                    state = groups.setdefault(key, [0] + [0] * len(self.view.aggregates))
                    state[0] += sign * multiplicity
                    for index, position in enumerate(self._agg_positions):
                        if position is not None:
                            state[1 + index] += sign * row[position] * multiplicity
            if self.counter is not None:
                self.counter.record("agg_patch", len(deleted) + len(inserted))
            for key in [key for key, state in groups.items() if state[0] == 0]:
                del groups[key]
            if any(state[0] < 0 for state in groups.values()):
                raise InvariantViolation("aggregate count went negative — base deltas not weakly minimal")
            self.db.set_table(self.view.agg_table, self._state_to_rows(groups))

    def refresh(self) -> None:
        self.propagate()
        self.partial_refresh()

    # ------------------------------------------------------------------
    # Reads and checks
    # ------------------------------------------------------------------

    def read_view(self) -> Bag:
        return self.db[self.view.agg_table]

    def expected(self) -> Bag:
        """The aggregate recomputed from scratch (for checks)."""
        base_value = self.db.evaluate(self.view.base.query)
        return self._state_to_rows(self._aggregate_bag(base_value))

    def is_consistent(self) -> bool:
        return self.read_view() == self.expected()

    def invariant_holds(self) -> bool:
        """AGG always equals the grouping of the (possibly stale) base MV."""
        holds = self.base.invariant_holds()
        mirrored = self._state_to_rows(self._aggregate_bag(self.db[self.view.base.mv_table]))
        return holds and mirrored == self.read_view()

    def check_invariant(self) -> None:
        if not self.invariant_holds():
            raise InvariantViolation(f"aggregate view {self.view.name!r}: invariant violated")
