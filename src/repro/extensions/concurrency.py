"""Reader/refresh blocking simulation (future work item 3 of Section 7).

While a refresh transaction holds the exclusive write lock on ``MV``,
readers block (Section 1.1).  This module quantifies that interaction:
given the sequence of refresh critical sections a policy produced
(tuple-operation volumes from the :class:`~repro.storage.locks.LockLedger`),
it simulates a stream of readers arriving over the same timeline and
reports how long they waited.

The mapping from tuple operations to time is a single calibration knob
(``ops_per_second``); conclusions about *which policy blocks readers
less* are independent of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.storage.locks import LockLedger

__all__ = ["ReaderStats", "BlockingSimulation"]


@dataclass
class ReaderStats:
    """Aggregate outcome of one blocking simulation."""

    readers: int = 0
    blocked: int = 0
    waits: list[float] = field(default_factory=list)

    @property
    def blocked_fraction(self) -> float:
        return self.blocked / self.readers if self.readers else 0.0

    def mean_wait(self) -> float:
        return sum(self.waits) / len(self.waits) if self.waits else 0.0

    def max_wait(self) -> float:
        return max(self.waits, default=0.0)

    def total_wait(self) -> float:
        return sum(self.waits)


class BlockingSimulation:
    """Simulate readers arriving while refreshes periodically lock the view.

    ``sections`` are ``(start_time, duration)`` pairs in simulated
    seconds; readers arrive as a Poisson process at ``reader_rate`` per
    second over ``[0, horizon)``.  A reader arriving inside a section
    waits until it ends; readers outside any section proceed instantly.
    """

    def __init__(self, *, reader_rate: float, horizon: float, seed: int = 0) -> None:
        if reader_rate <= 0 or horizon <= 0:
            raise ValueError("reader_rate and horizon must be positive")
        self.reader_rate = reader_rate
        self.horizon = horizon
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Building timelines from ledgers
    # ------------------------------------------------------------------

    @staticmethod
    def sections_from_ledger(
        ledger: LockLedger,
        resource: str,
        *,
        interval: float,
        ops_per_second: float,
    ) -> list[tuple[float, float]]:
        """Place each recorded critical section at its periodic slot.

        The ``i``-th section starts at ``(i + 1) * interval`` and lasts
        ``tuple_ops / ops_per_second`` simulated seconds.
        """
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        sections = []
        index = 0
        for section in ledger.sections:
            if section.resource != resource:
                continue
            start = (index + 1) * interval
            sections.append((start, section.tuple_ops / ops_per_second))
            index += 1
        return sections

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def arrivals(self) -> list[float]:
        """Poisson arrival times over the horizon (seeded)."""
        times = []
        now = 0.0
        while True:
            now += self._rng.expovariate(self.reader_rate)
            if now >= self.horizon:
                return times
            times.append(now)

    def run(self, sections: list[tuple[float, float]]) -> ReaderStats:
        """Simulate reader waits against the given critical sections."""
        stats = ReaderStats()
        ordered = sorted(sections)
        for arrival in self.arrivals():
            stats.readers += 1
            wait = 0.0
            for start, duration in ordered:
                if start <= arrival < start + duration:
                    wait = start + duration - arrival
                    break
                if start > arrival:
                    break
            if wait > 0:
                stats.blocked += 1
                stats.waits.append(wait)
            else:
                stats.waits.append(0.0)
        return stats
