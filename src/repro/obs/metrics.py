"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the *aggregate* companion of the tracer's per-operation
spans: where a span says "this refresh took 3.1 ms and absorbed 412
tuple-ops", the registry says "refresh latency p-buckets over the whole
run", "journal fsyncs so far", "plan-cache hit ratio".  Benchmarks read
:meth:`MetricsRegistry.snapshot`; humans read
:meth:`MetricsRegistry.render_text` (a Prometheus-style text
exposition, kept dependency-free).

Metric names used by the built-in instrumentation are listed in
``docs/observability.md``.  Histograms use **fixed** bucket bounds
chosen at first observation (or passed explicitly), so merging and
comparing snapshots never re-bins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
]

#: Default histogram bounds for wall-clock latencies, in seconds.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default histogram bounds for tuple counts (delta sizes, ops).
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A value that goes up and down (e.g. current staleness)."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the implicit overflow bucket.
    """

    bounds: tuple[float, ...] = SIZE_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min_value: float | None = None
    max_value: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        self.min_value = value if self.min_value is None else min(self.min_value, value)
        self.max_value = value if self.max_value is None else max(self.max_value, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min_value,
            "max": self.max_value,
            "buckets": {
                **{f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)},
                "overflow": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Named metrics, created on first use; safe to snapshot any time."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- creation / recording ------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter()
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge()
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a gauge")
        return metric

    def histogram(self, name: str, *, buckets: tuple[float, ...] = SIZE_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(bounds=buckets)
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a histogram")
        return metric

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, *, buckets: tuple[float, ...] = SIZE_BUCKETS) -> None:
        self.histogram(name, buckets=buckets).observe(value)

    # -- derived -------------------------------------------------------

    def ratio(self, hits: str, misses: str) -> float | None:
        """A hit ratio from two counters; None before any lookup."""
        hit = self._metrics.get(hits)
        miss = self._metrics.get(misses)
        total = (hit.value if isinstance(hit, Counter) else 0) + (
            miss.value if isinstance(miss, Counter) else 0
        )
        if not total:
            return None
        return (hit.value if isinstance(hit, Counter) else 0) / total

    def absorb_counter(self, counter: Any) -> None:
        """Mirror a :class:`~repro.algebra.evaluation.CostCounter`'s cache
        counters into the registry (gauges: the counter is cumulative)."""
        self.set_gauge("plan_cache_hits", counter.plan_hits)
        self.set_gauge("plan_cache_misses", counter.plan_misses)
        self.set_gauge("memo_hits", counter.memo_hits)
        self.set_gauge("index_probes", counter.index_probes)
        self.set_gauge("delta_cache_hits", counter.delta_cache_hits)
        total_plan = counter.plan_hits + counter.plan_misses
        if total_plan:
            self.set_gauge("plan_cache_hit_ratio", counter.plan_hits / total_plan)

    # -- export --------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self) -> dict[str, Any]:
        """The API benchmarks consume: ``{name: metric-snapshot}``."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Prometheus-style plain-text exposition."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {metric.value:g}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
                cumulative += metric.counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {metric.total:g}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._metrics.clear()


class NullMetrics:
    """The default, do-nothing registry."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return Counter()

    def gauge(self, name: str) -> Gauge:
        return Gauge()

    def histogram(self, name: str, *, buckets: tuple[float, ...] = SIZE_BUCKETS) -> Histogram:
        return Histogram(bounds=buckets)

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, *, buckets: tuple[float, ...] = SIZE_BUCKETS) -> None:
        pass

    def ratio(self, hits: str, misses: str) -> None:
        return None

    def absorb_counter(self, counter: Any) -> None:
        pass

    def names(self) -> tuple[str, ...]:
        return ()

    def snapshot(self) -> dict[str, Any]:
        return {}

    def to_json(self) -> str:
        return "{}"

    def render_text(self) -> str:
        return ""

    def reset(self) -> None:
        pass
