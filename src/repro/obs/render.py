"""Trace rendering: ``python -m repro trace`` and friends.

Renders a trace file (or a live :class:`~repro.obs.tracer.Tracer`) as an
indented span tree with durations, absorbed tuple-ops, and the
structured attributes that matter for reading a maintenance epoch::

    group_epoch tasks=16 ........................ 12.41ms  9120 ops
    ├─ batch index=0 views=16 ................... 11.87ms  9120 ops
    │  ├─ delta_compute view=V0 .................  2.03ms  570 ops
    │  ├─ refresh view=V0 scenario=BL ...........  0.31ms  38 ops
    ...
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

__all__ = ["render_span", "render_trace", "render_trace_file", "main"]

#: Attributes hidden from the one-line rendering (too noisy inline).
_HIDDEN = frozenset({"tuple_ops"})


def _format_attrs(attrs: dict[str, Any]) -> str:
    parts = []
    for key in sorted(attrs):
        if key in _HIDDEN:
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _format_cost(span: dict[str, Any]) -> str:
    duration_ms = span.get("duration_s", 0.0) * 1000.0
    ops = span.get("attrs", {}).get("tuple_ops")
    cost = f"{duration_ms:8.3f}ms"
    if ops is not None:
        cost += f"  {ops} ops"
    return cost


def render_span(span: dict[str, Any], *, prefix: str = "", is_last: bool = True, is_root: bool = True) -> list[str]:
    """Render one span dict (the trace-file format) and its subtree."""
    attrs = _format_attrs(span.get("attrs", {}))
    label = span["name"] + (f" {attrs}" if attrs else "")
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    line = f"{prefix}{connector}{label}"
    pad = max(1, 54 - len(line))
    lines = [f"{line} {'.' * pad} {_format_cost(span)}"]
    children = span.get("children", [])
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(children):
        lines.extend(
            render_span(
                child,
                prefix=child_prefix,
                is_last=index == len(children) - 1,
                is_root=False,
            )
        )
    return lines


def render_trace(trace: dict[str, Any]) -> str:
    """Render a whole trace document (``{"spans": [...]}``)."""
    spans = trace.get("spans", [])
    if not spans:
        return "(empty trace)"
    lines: list[str] = []
    for span in spans:
        lines.extend(render_span(span))
    return "\n".join(lines)


def render_trace_file(path: str | Path) -> str:
    document = json.loads(Path(path).read_text())
    return render_trace(document)


def _demo_trace() -> dict[str, Any]:
    """A real traced group-refresh epoch over a tiny shared workload."""
    from repro import obs
    from repro.warehouse import ViewManager

    with obs.observed() as observability:
        manager = ViewManager()
        manager.create_table("sales", ["custId", "itemNo", "quantity"])
        manager.load("sales", [(c, i, 1) for c in range(4) for i in range(3)])
        for index in range(3):
            manager.define_view(
                f"V{index}",
                f"SELECT custId, itemNo FROM sales WHERE quantity != {index + 10}",
                scenario="combined" if index % 2 else "base_log",
            )
        manager.transaction().insert("sales", [(9, 9, 1), (8, 8, 1)]).run()
        manager.refresh_group()
        return observability.tracer.to_dict()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro trace [FILE.json | --demo] [--json]``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Render a repro trace file as a nested span tree.",
    )
    parser.add_argument("file", nargs="?", help="trace JSON written by Tracer.write()")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="trace a small group-refresh epoch in-process and render it",
    )
    parser.add_argument("--json", action="store_true", help="emit the raw trace JSON instead")
    args = parser.parse_args(argv)
    if args.demo:
        document = _demo_trace()
    elif args.file:
        document = json.loads(Path(args.file).read_text())
    else:
        parser.error("pass a trace file or --demo")
        return 2
    try:
        if args.json:
            print(json.dumps(document, indent=2))
        else:
            print(render_trace(document))
    except BrokenPipeError:  # e.g. `python -m repro trace t.json | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
