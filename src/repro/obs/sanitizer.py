"""Eraser-style dynamic lockset sanitizer for the refresh lock discipline.

The static analyzer (:mod:`repro.analysis.concurrency_check`) checks
the *declared* maintenance protocols; this sanitizer checks the code
that actually ran.  It follows the classic lockset algorithm: for each
reader-visible ``MV`` table it maintains a **candidate lockset** — the
intersection of the exclusive locks held at every access observed so
far inside a refresh-family operation.  The Section 5.3 discipline
says that intersection must always contain the view's lock; when it
becomes empty, some access path reached ``MV`` without the lock, and
the sanitizer records a finding with the same ``RVM6xx`` codes the
static pass uses:

* empty lockset at a **read** → RVM601;
* empty lockset at a **write** → RVM602;
* a journaled action whose version-stamp diff shows a written table the
  intent payload never digested → RVM605.

Scope: accesses are tracked only while a refresh-family span
(``refresh`` / ``partial_refresh``) is open on the current thread —
``makesafe`` runs inside the user transaction's atomicity and
``propagate`` is lock-free by design, so their ``MV``-free effects are
not judged.  Lock state and the operation stack are thread-local (the
group scheduler's pool workers compute deltas with no op open and no
locks held, so they contribute no accesses); findings are shared and
deduplicated on ``(code, table, operation)``.

Enable with ``obs.observed(sanitizer=True)`` — the default
:class:`NullSanitizer` costs one attribute check per instrumented site
and keeps tuple-operation accounting bit-identical (the benchmark
regression gate asserts exactly that).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.naming import is_mv_table

__all__ = ["SanitizerFinding", "LocksetSanitizer", "NullSanitizer"]

#: Operations whose MV accesses the lockset algorithm judges — kept in
#: lockstep with :data:`repro.analysis.effects.REFRESH_OPS` (imported
#: lazily there to keep :mod:`repro.obs` import-light); a test pins the
#: two sets equal.
TRACKED_OPS = frozenset({"refresh", "partial_refresh"})

#: Span names that mark a maintenance operation on the op stack.
OP_SPANS = frozenset({"makesafe", "refresh", "partial_refresh", "propagate"})


@dataclass(frozen=True)
class SanitizerFinding:
    """One dynamic lock-discipline violation."""

    code: str
    table: str
    op: str
    view: str
    detail: str

    def format(self) -> str:
        where = f" (view {self.view!r})" if self.view else ""
        return f"{self.code} [{self.op}]{where}: {self.detail}"


class NullSanitizer:
    """The disabled sanitizer: every hook is a no-op."""

    enabled = False
    __slots__ = ()

    def op_enter(self, name: str, view: str) -> None:
        pass

    def op_exit(self, name: str) -> None:
        pass

    def tracking(self) -> bool:
        return False

    def lock_acquired(self, resource: str) -> None:
        pass

    def lock_released(self, resource: str) -> None:
        pass

    def on_read(self, tables) -> None:
        pass

    def on_write(self, tables) -> None:
        pass

    def check_journal_payload(self, kind: str, written, covered) -> None:
        pass


class LocksetSanitizer:
    """Live lockset tracking; see the module docstring for the algorithm."""

    enabled = True

    def __init__(self) -> None:
        self._tls = threading.local()
        self._mutex = threading.Lock()
        #: Open refresh-family ops across all threads; lets
        #: :meth:`tracking` answer ``False`` with one attribute test
        #: while no refresh is running anywhere (the common case).
        self._tracked_open = 0
        self.findings: list[SanitizerFinding] = []
        self._seen: set[tuple[str, str, str]] = set()
        #: Candidate lockset per MV table (Eraser's ``C(v)``): ``None``
        #: until first tracked access, then intersected at every access.
        self._locksets: dict[str, frozenset[str]] = {}

    # -- thread-local state --------------------------------------------

    def _state(self):
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._tls.state = _ThreadState()
        return state

    # -- operation stack (driven by obs.span on op names) --------------

    def op_enter(self, name: str, view: str) -> None:
        self._state().ops.append((name, view))
        if name in TRACKED_OPS:
            with self._mutex:
                self._tracked_open += 1

    def op_exit(self, name: str) -> None:
        ops = self._state().ops
        if ops and ops[-1][0] == name:
            ops.pop()
            if name in TRACKED_OPS:
                with self._mutex:
                    self._tracked_open -= 1

    def current_op(self) -> tuple[str, str] | None:
        ops = self._state().ops
        return ops[-1] if ops else None

    def tracking(self) -> bool:
        """Whether accesses on this thread would currently be judged.

        Call-site fast path: computing an access's table set (e.g.
        ``expr.tables()``) can cost more than the access bookkeeping,
        so instrumented sites skip it entirely outside refresh-family
        operations.
        """
        if not self._tracked_open:
            return False
        ops = self._state().ops
        return bool(ops) and ops[-1][0] in TRACKED_OPS

    # -- lock events (driven by LockLedger.exclusive) ------------------

    def lock_acquired(self, resource: str) -> None:
        held = self._state().held
        held[resource] = held.get(resource, 0) + 1

    def lock_released(self, resource: str) -> None:
        held = self._state().held
        count = held.get(resource, 0) - 1
        if count > 0:
            held[resource] = count
        else:
            held.pop(resource, None)

    def held_locks(self) -> frozenset[str]:
        return frozenset(self._state().held)

    # -- accesses (driven by Database reads/writes) --------------------

    def on_read(self, tables) -> None:
        self._access(tables, "read")

    def on_write(self, tables) -> None:
        self._access(tables, "write")

    def _access(self, tables, kind: str) -> None:
        state = self._state()
        if not state.ops:
            return
        op, view = state.ops[-1]
        if op not in TRACKED_OPS:
            return
        mv_tables = [t for t in tables if is_mv_table(t)]
        if not mv_tables:
            return
        held = frozenset(state.held)
        code = "RVM601" if kind == "read" else "RVM602"
        with self._mutex:
            for table in mv_tables:
                prior = self._locksets.get(table)
                lockset = held if prior is None else prior & held
                self._locksets[table] = lockset
                if not lockset:
                    self._emit(
                        code,
                        table,
                        op,
                        view,
                        f"{kind} of reader-visible table {table!r} during "
                        f"{op!r} with candidate lockset empty (held: "
                        f"{sorted(held) or 'none'})",
                    )

    # -- journal coverage (driven by DurableWarehouse) -----------------

    def check_journal_payload(self, kind: str, written, covered) -> None:
        """Diff actually-written tables against the intent's digest set."""
        missing = sorted(set(written) - set(covered))
        with self._mutex:
            for table in missing:
                self._emit(
                    "RVM605",
                    table,
                    kind,
                    "",
                    f"journaled {kind!r} wrote table {table!r} but the intent "
                    "payload carries no digest for it; recovery could neither "
                    "verify nor roll it back",
                )

    # -- reporting ------------------------------------------------------

    def _emit(self, code: str, table: str, op: str, view: str, detail: str) -> None:
        key = (code, table, op)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(SanitizerFinding(code, table, op, view, detail))

    def report(self):
        """The findings as an :class:`~repro.analysis.diagnostics.AnalysisReport`."""
        from repro.analysis.diagnostics import AnalysisReport, Severity

        report = AnalysisReport()
        for finding in self.findings:
            report.add(finding.code, Severity.ERROR, finding.detail, path=finding.table)
        return report

    def reset(self) -> None:
        with self._mutex:
            self.findings.clear()
            self._seen.clear()
            self._locksets.clear()


class _ThreadState:
    __slots__ = ("ops", "held")

    def __init__(self) -> None:
        self.ops: list[tuple[str, str]] = []
        self.held: dict[str, int] = {}


#: Shared disabled instance (mirrors the other obs null objects).
NULL_SANITIZER = NullSanitizer()
