"""Observability for the maintenance stack: spans, metrics, downtime.

Three cooperating pieces, all zero-dependency and all **off by
default** (the no-op implementations cost a function call at each
instrumented site and change nothing about the cost model):

* :mod:`repro.obs.tracer` — nested spans over every maintenance
  operation (``txn``, ``propagate``, ``refresh``, ``partial_refresh``,
  ``group_epoch``, ``plan_compile``, ``journal_commit``, ``recovery``,
  …), exportable as JSON and rendered by ``python -m repro trace``;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms (refresh latency, delta sizes, cache hit ratios, journal
  fsyncs, lock retries) with text/JSON exporters and a ``snapshot()``
  API the benchmarks consume;
* :mod:`repro.obs.accounting` — per-view downtime/staleness clocks
  implementing the Section 5.3 model (time locked for refresh vs. time
  serving stale answers; staleness in wall-clock seconds *and*
  unpropagated log entries).

Usage::

    from repro import obs

    with obs.observed() as o:          # tracer + metrics + accounting on
        manager.refresh_group()
    print(obs.render.render_trace(o.tracer.to_dict()))
    print(o.metrics.render_text())
    print(o.accounting.snapshot())

or imperatively with :func:`enable` / :func:`disable`.  Instrumented
library code calls the module-level helpers (:func:`span`,
:func:`metric_inc`, …), which dispatch to the currently installed
:class:`Observability` — the shared no-op instance unless enabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import render
from repro.obs.accounting import DowntimeAccountant, NullAccountant, ViewClock
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.sanitizer import (
    NULL_SANITIZER,
    OP_SPANS,
    LocksetSanitizer,
    NullSanitizer,
    SanitizerFinding,
)
from repro.obs.tracer import NULL_HANDLE, NullTracer, Span, SpanHandle, Tracer

__all__ = [
    "Observability",
    "enable",
    "disable",
    "observed",
    "current",
    "is_enabled",
    "telemetry_enabled",
    "active_sanitizer",
    "LocksetSanitizer",
    "NullSanitizer",
    "SanitizerFinding",
    "span",
    "metric_inc",
    "metric_observe",
    "metric_set",
    "accountant",
    "Tracer",
    "NullTracer",
    "Span",
    "SpanHandle",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DowntimeAccountant",
    "NullAccountant",
    "ViewClock",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "render",
]


class Observability:
    """One tracer + one metrics registry + one downtime accountant.

    Plus, optionally, one dynamic lockset sanitizer
    (:class:`~repro.obs.sanitizer.LocksetSanitizer`) — off by default
    like everything else here.
    """

    __slots__ = ("tracer", "metrics", "accounting", "sanitizer", "telemetry", "enabled")

    def __init__(self, tracer=None, metrics=None, accounting=None, sanitizer=None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.accounting = accounting if accounting is not None else DowntimeAccountant()
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        #: Whether any *reporting* piece (tracer/metrics/accounting) is
        #: live.  Instrumented sites that compute values only to feed
        #: those pieces (delta sizes, log watermarks) gate on this, not
        #: on ``enabled`` — a sanitizer-only stack must not pay for
        #: telemetry nobody records.
        self.telemetry = bool(
            getattr(self.tracer, "enabled", False)
            or getattr(self.metrics, "enabled", False)
            or getattr(self.accounting, "enabled", False)
        )
        self.enabled = self.telemetry or bool(getattr(self.sanitizer, "enabled", False))

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.accounting.reset()
        if self.sanitizer.enabled:
            self.sanitizer.reset()


#: The default no-op stack; instrumentation dispatches through
#: :data:`_current`, which points here unless :func:`enable` ran.
NULL_OBS = Observability(NullTracer(), NullMetrics(), NullAccountant(), NULL_SANITIZER)

_current: Observability = NULL_OBS


def current() -> Observability:
    """The currently installed observability stack (no-op by default)."""
    return _current


def is_enabled() -> bool:
    return _current.enabled


def telemetry_enabled() -> bool:
    """Whether tracer/metrics/accounting (not just the sanitizer) are live."""
    return _current.telemetry


def enable(
    *,
    tracer: bool | Tracer = True,
    metrics: bool | MetricsRegistry = True,
    accounting: bool | DowntimeAccountant = True,
    sanitizer: bool | LocksetSanitizer = False,
) -> Observability:
    """Install (and return) a live observability stack.

    Each piece can be toggled off individually (``tracer=False``) or
    replaced with a preconfigured instance.  The lockset ``sanitizer``
    is opt-in (``sanitizer=True``): it changes no results and no tuple
    accounting, but it is extra per-access work.
    """
    global _current
    _current = Observability(
        tracer if not isinstance(tracer, bool) else (Tracer() if tracer else NullTracer()),
        metrics if not isinstance(metrics, bool) else (MetricsRegistry() if metrics else NullMetrics()),
        accounting
        if not isinstance(accounting, bool)
        else (DowntimeAccountant() if accounting else NullAccountant()),
        sanitizer
        if not isinstance(sanitizer, bool)
        else (LocksetSanitizer() if sanitizer else NULL_SANITIZER),
    )
    return _current


def disable() -> None:
    """Restore the default no-op stack."""
    global _current
    _current = NULL_OBS


@contextmanager
def observed(**options: Any) -> Iterator[Observability]:
    """Enable observability for a block; restores the previous stack."""
    global _current
    previous = _current
    stack = enable(**options)
    try:
        yield stack
    finally:
        _current = previous


# ----------------------------------------------------------------------
# Instrumentation helpers (what library call sites use)
# ----------------------------------------------------------------------


class _SanitizedSpan:
    """Span wrapper that pushes/pops the sanitizer's operation stack."""

    __slots__ = ("_inner", "_sanitizer", "_name", "_view")

    def __init__(self, inner, sanitizer, name: str, view: str) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self._name = name
        self._view = view

    def __enter__(self):
        self._sanitizer.op_enter(self._name, self._view)
        return self._inner.__enter__()

    def __exit__(self, *exc_info):
        try:
            return self._inner.__exit__(*exc_info)
        finally:
            self._sanitizer.op_exit(self._name)


def span(name: str, *, counter: Any = None, parent: Any = None, **attrs: Any):
    """Open a span on the current tracer (the shared no-op when disabled).

    When the lockset sanitizer is enabled and the span names a
    maintenance operation (``makesafe`` / ``refresh`` /
    ``partial_refresh`` / ``propagate``), the handle also scopes the
    sanitizer's per-thread operation stack.
    """
    handle = _current.tracer.span(name, counter=counter, parent=parent, **attrs)
    sanitizer = _current.sanitizer
    if sanitizer.enabled and name in OP_SPANS:
        return _SanitizedSpan(handle, sanitizer, name, str(attrs.get("view", "")))
    return handle


def active_sanitizer() -> LocksetSanitizer | None:
    """The live lockset sanitizer, or ``None`` when disabled."""
    sanitizer = _current.sanitizer
    return sanitizer if sanitizer.enabled else None


def metric_inc(name: str, amount: float = 1) -> None:
    _current.metrics.inc(name, amount)


def metric_observe(name: str, value: float, *, buckets: tuple[float, ...] = SIZE_BUCKETS) -> None:
    _current.metrics.observe(name, value, buckets=buckets)


def metric_set(name: str, value: float) -> None:
    _current.metrics.set_gauge(name, value)


def accountant() -> DowntimeAccountant | NullAccountant:
    return _current.accounting
