"""Nested maintenance spans: where refresh wall-time goes.

A :class:`Tracer` records a forest of :class:`Span` trees.  Each span
names one maintenance operation (the taxonomy is fixed — see
``docs/observability.md``), carries structured attributes (view name,
scenario tag, log watermark, tuple-ops absorbed from a
:class:`~repro.algebra.evaluation.CostCounter`), and nests under the
span that was open when it started, so one ``group_epoch`` span contains
its batches, which contain each view's delta evaluation and refresh.

The default tracer installed by :mod:`repro.obs` is a
:class:`NullTracer` whose :meth:`~NullTracer.span` returns a shared
do-nothing handle — instrumentation left in the hot paths costs a
function call and a dict literal, nothing more.  Tuple-operation counts
are never *computed* by the tracer; they are absorbed as deltas of the
cost counter a call site already maintains, so tracing on or off can
never change the experiments' deterministic cost signal.

Spans parent through a thread-local stack.  Work handed to a thread
pool (the parallel group scheduler) passes the enclosing handle
explicitly via ``parent=`` since context does not flow into pool
threads.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Span", "SpanHandle", "Tracer", "NullTracer", "NULL_HANDLE", "TIMING_FIELDS"]

#: Span fields that vary run-to-run even for identical work.  Structural
#: comparisons of span trees (the compiled-vs-interpreted parity grid)
#: ignore exactly these.
TIMING_FIELDS = frozenset({"start_s", "duration_s", "tuple_ops"})


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    children: list[Span] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe encoding (the trace-file format)."""
        return {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "attrs": {key: _jsonable(value) for key, value in self.attrs.items()},
            "children": [child.to_dict() for child in self.children],
        }

    def structure(self) -> dict[str, Any]:
        """The span tree minus timing — what parity tests compare."""
        return {
            "name": self.name,
            "attrs": {
                key: _jsonable(value)
                for key, value in sorted(self.attrs.items())
                if key not in TIMING_FIELDS
            },
            "children": [child.structure() for child in self.children],
        }

    def find(self, name: str) -> list[Span]:
        """All descendant spans (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


class SpanHandle:
    """Context manager for one live span; also the attribute setter."""

    __slots__ = ("_tracer", "_span", "_parent", "_counter", "_ops_before", "_explicit_parent")

    def __init__(self, tracer: Tracer, span: Span, counter: Any = None, parent: SpanHandle | None = None) -> None:
        self._tracer = tracer
        self._span = span
        self._counter = counter
        self._ops_before = 0
        self._explicit_parent = parent

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attrs: Any) -> SpanHandle:
        """Attach (or overwrite) structured attributes on the span."""
        self._span.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous child span (duration 0)."""
        child = Span(name=name, attrs=dict(attrs), start_s=self._tracer.clock() - self._tracer.epoch)
        self._span.children.append(child)

    def __enter__(self) -> SpanHandle:
        if self._counter is not None:
            self._ops_before = self._counter.tuples_out
        self._span.start_s = self._tracer.clock() - self._tracer.epoch
        if self._explicit_parent is not None:
            # Accepts a SpanHandle or a raw Span (Tracer.active()).
            parent = self._explicit_parent
            target = parent._span if isinstance(parent, SpanHandle) else parent
            target.children.append(self._span)
        else:
            self._tracer._push(self._span)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._span.duration_s = (self._tracer.clock() - self._tracer.epoch) - self._span.start_s
        if self._counter is not None:
            self._span.attrs["tuple_ops"] = self._counter.tuples_out - self._ops_before
        if self._explicit_parent is None:
            self._tracer._pop(self._span)


class _NullHandle:
    """The do-nothing span handle shared by every disabled call site."""

    __slots__ = ()

    span = None

    def set(self, **attrs: Any) -> _NullHandle:
        return self

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> _NullHandle:
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects span trees; thread-safe for the parallel scheduler."""

    enabled = True

    def __init__(self, *, clock=time.perf_counter) -> None:
        self.clock = clock
        self.epoch = clock()
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def span(self, name: str, *, counter: Any = None, parent: SpanHandle | None = None, **attrs: Any) -> SpanHandle:
        """Open a span; use as ``with tracer.span("refresh", view=v):``.

        ``counter`` absorbs a cost counter's ``tuples_out`` delta into the
        span's ``tuple_ops`` attribute.  ``parent`` overrides the
        thread-local nesting (needed across thread-pool boundaries).
        """
        return SpanHandle(self, Span(name=name, attrs=dict(attrs)), counter=counter, parent=parent)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            # A span opened with no enclosing span is a root of the
            # forest; registering it while still in flight is fine.
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def active(self) -> Span | None:
        """This thread's innermost open span (to hand pool workers as
        an explicit ``parent=``)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- export --------------------------------------------------------

    def reset(self) -> None:
        self.roots.clear()
        self.epoch = self.clock()
        self._local = threading.local()

    def to_dict(self) -> dict[str, Any]:
        return {"format": "repro-trace-v1", "spans": [span.to_dict() for span in self.roots]}

    def write(self, path: str | Path) -> Path:
        """Export the collected trace as a JSON file."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def find(self, name: str) -> list[Span]:
        found: list[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found


class NullTracer:
    """The default: every span is the shared no-op handle."""

    enabled = False

    roots: tuple = ()

    def span(self, name: str, *, counter: Any = None, parent: Any = None, **attrs: Any) -> _NullHandle:
        return NULL_HANDLE

    def active(self) -> None:
        return None

    def reset(self) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {"format": "repro-trace-v1", "spans": []}

    def find(self, name: str) -> list:
        return []
