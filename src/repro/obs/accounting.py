"""Downtime and staleness accounting — the paper's Section 5.3 model.

The paper defines *downtime* as the execution time of the transaction
that refreshes the view table, during which an exclusive lock blocks
all readers.  Everything outside that lock is time the view *serves
stale answers*.  :class:`DowntimeAccountant` keeps one
:class:`ViewClock` per view and splits its lifetime into exactly those
two measures:

* **downtime** — wall-clock seconds and tuple operations spent inside
  exclusive-lock critical sections on the view table (fed by
  :class:`~repro.storage.locks.LockLedger`), per section and in total;
* **staleness** — how out-of-date the answers served meanwhile are,
  measured in **both** units the experiments need:

  - *wall-clock*: seconds since the first unabsorbed update, sampled at
    each refresh (``staleness_s`` samples) and integrable over the run
    (``stale_seconds``), and
  - *log entries*: recorded-but-unpropagated log tuples (plus pending
    differential rows for ``INV_C``), sampled at the same points.

Policy 1 and Policy 2 at equal ``(k, m)`` differ in exactly these
numbers — Policy 2 trades a bounded ``k`` ticks of staleness for
minimal per-refresh downtime — and E19 (``repro.bench.obs_bench``)
measures that trade-off with this accountant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ViewClock", "DowntimeAccountant", "NullAccountant"]


@dataclass
class ViewClock:
    """Per-view downtime and staleness state."""

    view: str
    #: Total wall-clock seconds the view table was exclusively locked.
    locked_seconds: float = 0.0
    #: Total tuple operations performed while locked.
    locked_ops: int = 0
    #: Completed lock sections (one per refresh/partial_refresh).
    lock_sections: int = 0
    #: Worst single section, in both units.
    max_section_seconds: float = 0.0
    max_section_ops: int = 0
    #: Wall-clock moment the first unabsorbed update landed (None = fresh).
    stale_since: float | None = None
    #: Accumulated seconds spent serving stale answers.
    stale_seconds: float = 0.0
    #: Unpropagated log entries (+ pending differential rows) right now.
    pending_entries: int = 0
    #: Staleness sampled at each refresh completion: (wall_s, entries).
    staleness_samples: list[tuple[float, int]] = field(default_factory=list)
    refreshes: int = 0

    # -- derived -------------------------------------------------------

    def mean_section_seconds(self) -> float:
        return self.locked_seconds / self.lock_sections if self.lock_sections else 0.0

    def mean_section_ops(self) -> float:
        return self.locked_ops / self.lock_sections if self.lock_sections else 0.0

    def max_staleness_seconds(self) -> float:
        return max((sample[0] for sample in self.staleness_samples), default=0.0)

    def max_staleness_entries(self) -> int:
        return max((sample[1] for sample in self.staleness_samples), default=0)

    def snapshot(self) -> dict[str, Any]:
        return {
            "view": self.view,
            "downtime": {
                "locked_seconds": round(self.locked_seconds, 6),
                "locked_ops": self.locked_ops,
                "lock_sections": self.lock_sections,
                "mean_section_seconds": round(self.mean_section_seconds(), 6),
                "mean_section_ops": round(self.mean_section_ops(), 2),
                "max_section_seconds": round(self.max_section_seconds, 6),
                "max_section_ops": self.max_section_ops,
            },
            "staleness": {
                "stale_seconds": round(self.stale_seconds, 6),
                "pending_entries": self.pending_entries,
                "samples": len(self.staleness_samples),
                "max_wall_s": round(self.max_staleness_seconds(), 6),
                "max_entries": self.max_staleness_entries(),
                "refreshes": self.refreshes,
            },
        }


class DowntimeAccountant:
    """Per-view clocks implementing the downtime/staleness split."""

    enabled = True

    def __init__(self, *, clock=time.perf_counter) -> None:
        self._clock = clock
        self._clocks: dict[str, ViewClock] = {}

    def clock(self, view: str) -> ViewClock:
        state = self._clocks.get(view)
        if state is None:
            state = self._clocks[view] = ViewClock(view)
        return state

    def views(self) -> tuple[str, ...]:
        return tuple(sorted(self._clocks))

    # -- downtime (fed by the lock ledger) ------------------------------

    def on_lock_section(self, view: str, *, seconds: float, ops: int, label: str = "") -> None:
        """One completed exclusive-lock critical section on ``view``."""
        state = self.clock(view)
        state.locked_seconds += seconds
        state.locked_ops += ops
        state.lock_sections += 1
        state.max_section_seconds = max(state.max_section_seconds, seconds)
        state.max_section_ops = max(state.max_section_ops, ops)

    # -- staleness -------------------------------------------------------

    def mark_stale(self, view: str, *, pending_entries: int) -> None:
        """An update left ``view`` with unabsorbed changes."""
        state = self.clock(view)
        state.pending_entries = pending_entries
        if pending_entries > 0 and state.stale_since is None:
            state.stale_since = self._clock()

    def mark_fresh(self, view: str, *, residual_entries: int = 0) -> None:
        """A refresh completed; sample and (maybe) close the stale window.

        ``residual_entries`` is what the refresh left behind — zero for a
        full refresh, the still-unpropagated log for Policy 2's
        ``partial_refresh`` (the view is now a bounded ``k`` out of
        date, never fully current).
        """
        state = self.clock(view)
        now = self._clock()
        stale_for = (now - state.stale_since) if state.stale_since is not None else 0.0
        state.stale_seconds += stale_for
        state.staleness_samples.append((stale_for, state.pending_entries))
        state.refreshes += 1
        state.pending_entries = residual_entries
        state.stale_since = now if residual_entries > 0 else None

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {view: self._clocks[view].snapshot() for view in self.views()}

    def reset(self) -> None:
        self._clocks.clear()


class NullAccountant:
    """The default, do-nothing accountant."""

    enabled = False

    def clock(self, view: str) -> ViewClock:
        return ViewClock(view)

    def views(self) -> tuple[str, ...]:
        return ()

    def on_lock_section(self, view: str, *, seconds: float, ops: int, label: str = "") -> None:
        pass

    def mark_stale(self, view: str, *, pending_entries: int) -> None:
        pass

    def mark_fresh(self, view: str, *, residual_entries: int = 0) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def reset(self) -> None:
        pass
