"""Partitioned-maintenance benchmark (E21): ``python -m repro.bench.partition_bench``.

Measures affected-key pruning + partition-at-a-time apply
(:mod:`repro.core.partition_refresh` over a
:class:`~repro.storage.partition.PartitionedDatabase`) against the
unpartitioned whole-table refresh on the retail workload, and writes
``BENCH_partition.json``:

* **unpartitioned** — the baseline: a plain database on the same
  engine; ``refresh_BL`` evaluates the post-update deltas against
  ``PAST`` of the *whole* base tables and re-writes the MV through the
  generic plan path.
* **partitioned** — the subject: hash-partitioned base tables, the
  affected-key set extracted from the pending logs, base references
  rewritten to restricted (indexed) lookups, and the MV patched
  partition-by-partition via ``apply_parts``.

The sweep scales the ``sales`` table (10^5 smoke, 10^5 and 10^6 full)
while each refresh epoch's update stream touches roughly **0.1 % of
the partition keys** — the skewed-churn regime the paper's deferred
scenarios target, where refresh cost should track the affected slice,
not the table.

Correctness is checked two ways after every sweep point: the
partitioned MV must be bag-identical to the unpartitioned baseline's,
and both must digest-match a from-scratch evaluation of the view query
on the **interpreted oracle** over the final base state
(:func:`repro.exec.group.bag_digest`).

Usage::

    python -m repro.bench.partition_bench [--smoke] [--output PATH]

``--smoke`` shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algebra.evaluation import CostCounter, evaluate
from repro.core.scenarios import BaseLogScenario
from repro.exec import COMPILED, VECTORIZED
from repro.exec.group import bag_digest
from repro.sqlfront.compiler import sql_to_view
from repro.storage.database import Database
from repro.storage.partition import PartitionedDatabase
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_e21", "run_all", "SCALES", "SMOKE_SCALES"]

#: (sales rows, engine) sweep points.  The vectorized point stays at the
#: smaller scale so the full run's wall clock is dominated by the 10^6
#: compiled point the acceptance gate reads.
SCALES = ((100_000, COMPILED), (100_000, VECTORIZED), (1_000_000, COMPILED))
SMOKE_SCALES = ((20_000, COMPILED),)

#: Partitions declared per base table (and inherited by the MV).
PARTS = 32
#: Refresh epochs measured per sweep point.
EPOCHS = 3
#: Transactions per epoch; with ``txn_inserts`` sales rows each against
#: ``rows // CUSTOMER_ROW_RATIO`` customers this touches ~0.1 % of keys.
TXNS_PER_EPOCH = 2
CUSTOMER_ROW_RATIO = 50


def _config(rows: int) -> RetailConfig:
    return RetailConfig(
        customers=max(200, rows // CUSTOMER_ROW_RATIO),
        items=500,
        initial_sales=rows,
        txn_inserts=10,
        delete_fraction=0.3,
        promotion_fraction=0.2,
        seed=21,
    )


def _build(rows: int, mode: str, *, partitioned: bool):
    db = PartitionedDatabase(exec_mode=mode) if partitioned else Database(exec_mode=mode)
    workload = RetailWorkload(_config(rows))
    workload.setup_database(db)
    if partitioned:
        db.declare_partitioning("customer", "custId", parts=PARTS, domain="custId")
        db.declare_partitioning("sales", "custId", parts=PARTS, domain="custId")
    view = sql_to_view(VIEW_SQL, db)
    counter = CostCounter()
    scenario = BaseLogScenario(db, view, counter=counter)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        scenario.install()
    return db, workload, scenario


def _drive(db, workload, scenario) -> list[dict[str, float]]:
    """Run the epochs; per-epoch refresh wall and tuple-op counts."""
    epochs: list[dict[str, float]] = []
    counter = scenario.counter
    log = scenario.log
    for __ in range(EPOCHS):
        for txn in workload.transactions(db, TXNS_PER_EPOCH):
            scenario.execute(txn)
        affected = set()
        for table in ("sales", "customer"):  # custId is column 0 in both
            for name in (log.delete_ref(table).name, log.insert_ref(table).name):
                for row in db[name].support:
                    affected.add(row[0])
        marker = counter.tuples_out
        touched = counter.partitions_touched
        start = time.perf_counter()
        scenario.refresh()
        epochs.append(
            {
                "wall_s": round(time.perf_counter() - start, 6),
                "ops": counter.tuples_out - marker,
                "affected_keys": len(affected),
                "partitions_touched": counter.partitions_touched - touched,
            }
        )
    return epochs


def _oracle_digest(db, view) -> str:
    """Digest of the view query evaluated on the interpreted oracle."""
    state = {name: db[name] for name in view.base_tables()}
    return bag_digest(evaluate(view.query, state))


def run_e21(rows: int, mode: str) -> dict[str, object]:
    """One sweep point: unpartitioned vs partitioned refresh at ``rows``."""
    base_db, base_w, base_s = _build(rows, mode, partitioned=False)
    part_db, part_w, part_s = _build(rows, mode, partitioned=True)
    assert part_s._pmaint is not None, "partitioned fast path failed to install"

    base_epochs = _drive(base_db, base_w, base_s)
    part_epochs = _drive(part_db, part_w, part_s)

    base_view = base_s.read_view()
    part_view = part_s.read_view()
    digest = bag_digest(part_view)
    oracle = _oracle_digest(part_db, part_s.view)
    identical = base_view == part_view and digest == oracle

    base_wall = sum(epoch["wall_s"] for epoch in base_epochs)
    part_wall = sum(epoch["wall_s"] for epoch in part_epochs)
    base_ops = sum(epoch["ops"] for epoch in base_epochs)
    part_ops = sum(epoch["ops"] for epoch in part_epochs)
    config = _config(rows)
    affected = max(epoch["affected_keys"] for epoch in part_epochs)
    return {
        "rows": rows,
        "mode": mode,
        "parts": PARTS,
        "customers": config.customers,
        "affected_key_fraction": round(affected / config.customers, 6),
        "unpartitioned": {"epochs": base_epochs, "wall_s": round(base_wall, 6), "ops": base_ops},
        "partitioned": {
            "epochs": part_epochs,
            "wall_s": round(part_wall, 6),
            "ops": part_ops,
            "partitions_touched": part_s.counter.partitions_touched,
            "partition_prunes": part_s.counter.partition_prunes,
            "partition_fallbacks": part_s.counter.partition_fallbacks,
        },
        "wall_speedup": round(base_wall / part_wall, 2) if part_wall else None,
        "tuple_op_reduction": round(base_ops / part_ops, 2) if part_ops else None,
        "digest": digest,
        "oracle_digest": oracle,
        "digest_identical": identical,
    }


def run_all(*, smoke: bool = False) -> dict[str, object]:
    scales = SMOKE_SCALES if smoke else SCALES
    points = [run_e21(rows, mode) for rows, mode in scales]
    return {
        "benchmark": "repro.bench.partition_bench",
        "smoke": smoke,
        "parts": PARTS,
        "epochs": EPOCHS,
        "experiments": {
            "E21_partition_pruning": {
                f"{point['mode']}@{point['rows']}": point for point in points
            }
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workload (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_partition.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_partition.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    print(f"wrote {output}")
    failed = False
    for label, point in results["experiments"]["E21_partition_pruning"].items():
        print(
            f"E21 [{label}]: {point['unpartitioned']['wall_s']}s -> "
            f"{point['partitioned']['wall_s']}s wall ({point['wall_speedup']}x), "
            f"{point['tuple_op_reduction']}x tuple-ops, "
            f"{point['partitioned']['partitions_touched']} partitions touched, "
            f"affected keys {point['affected_key_fraction'] * 100:.2f}%, "
            f"digest {'ok' if point['digest_identical'] else 'MISMATCH'}"
        )
        failed = failed or not point["digest_identical"]
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
