"""Group-refresh benchmark (E18): ``python -m repro.bench.group_bench``.

Measures the three layers of :meth:`ViewManager.refresh_group` against
the per-view baseline on the retail workload, under **both** execution
engines, and writes ``BENCH_group.json``:

* **per_view** — the oracle: every view refreshed in turn through its
  own ``refresh`` (no compaction, no sharing).
* **group** — one epoch: the shared log compacted to net effects,
  structurally identical sub-deltas computed once through the
  epoch-scoped delta cache, independent views batched and (optionally)
  evaluated in parallel.

The sweep holds the base and transaction stream fixed and scales the
number of registered views (4 → 64).  Views cycle through a small pool
of query templates, so most of them share their defining structure with
``views / len(TEMPLATES) - 1`` siblings — the regime Section 7's "open
issues" discussion targets: per-epoch work should scale with the number
of *distinct* view structures, not the number of views.

Usage::

    python -m repro.bench.group_bench [--smoke] [--output PATH]

``--smoke`` shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.exec import COMPILED, INTERPRETED
from repro.warehouse.manager import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_e18", "TEMPLATES"]

MODES = (INTERPRETED, COMPILED)
VIEW_COUNTS = (4, 16, 64)
SMOKE_VIEW_COUNTS = (4, 8)

#: The pool of defining queries; views cycle through it, so a sweep at
#: ``n`` views has ``n / 4`` structurally identical copies of each.
TEMPLATES = (
    VIEW_SQL,
    """
    SELECT c.custId, c.name, s.itemNo
    FROM customer c, sales s
    WHERE c.custId = s.custId AND c.score = 'High'
    """,
    "SELECT custId, itemNo, quantity FROM sales WHERE quantity != 0",
    "SELECT custId, name FROM customer WHERE score = 'High'",
)


def _build(mode: str, views: int, *, smoke: bool) -> tuple[ViewManager, int]:
    """A manager with ``views`` shared-log views and a churny txn stream."""
    txns = 8 if smoke else 30
    config = RetailConfig(
        customers=60,
        initial_sales=120 if smoke else 600,
        txn_inserts=6,
        delete_fraction=0.4,  # returns/corrections: material D/I churn
        seed=18,
    )
    workload = RetailWorkload(config)
    manager = ViewManager(exec_mode=mode)
    workload.setup_database(manager.db)
    for index in range(views):
        manager.define_view(
            f"V{index}", TEMPLATES[index % len(TEMPLATES)], scenario="shared_log"
        )
    for txn in workload.transactions(manager.db, txns):
        manager.execute(txn)
    return manager, txns


def run_e18(
    mode: str, views: int, *, smoke: bool = False, parallel: bool = True
) -> dict[str, object]:
    """One sweep point: per-view oracle vs one group epoch at ``views``."""
    baseline, txns = _build(mode, views, smoke=smoke)
    subject, _ = _build(mode, views, smoke=smoke)

    marker = baseline.counter.tuples_out
    start = time.perf_counter()
    baseline.refresh_all()
    per_view = {
        "ops": baseline.counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
    }

    shared = subject.shared_group()
    log_rows_before = shared.log_size()
    marker = subject.counter.tuples_out
    hits_marker = subject.counter.delta_cache_hits
    start = time.perf_counter()
    subject.refresh_group(parallel=parallel)
    group = {
        "ops": subject.counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
        "delta_cache_hits": subject.counter.delta_cache_hits - hits_marker,
        "log_rows_before": log_rows_before,
        "log_rows_after": shared.log_size(),
    }

    for name in baseline.views():
        assert subject.query(name) == baseline.query(name), name
        assert not subject.is_stale(name), name

    reduction = round(per_view["ops"] / group["ops"], 2) if group["ops"] else None
    return {
        "views": views,
        "txns": txns,
        "per_view": per_view,
        "group": group,
        "tuple_op_reduction": reduction,
        "wall_speedup": (
            round(per_view["wall_s"] / group["wall_s"], 2) if group["wall_s"] else None
        ),
    }


def run_all(*, smoke: bool = False) -> dict[str, object]:
    counts = SMOKE_VIEW_COUNTS if smoke else VIEW_COUNTS
    sweeps = {
        mode: {str(views): run_e18(mode, views, smoke=smoke) for views in counts}
        for mode in MODES
    }
    return {
        "benchmark": "repro.bench.group_bench",
        "smoke": smoke,
        "view_counts": list(counts),
        "templates": len(TEMPLATES),
        "experiments": {"E18_group_refresh": sweeps},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workload (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_group.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_group.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    print(f"wrote {output}")
    for mode, sweep in results["experiments"]["E18_group_refresh"].items():
        for views, point in sweep.items():
            group = point["group"]
            print(
                f"E18 [{mode}] {views} views: {point['per_view']['ops']} -> {group['ops']} "
                f"tuple-ops ({point['tuple_op_reduction']}x), "
                f"{group['delta_cache_hits']} cache hits, "
                f"log {group['log_rows_before']} -> {group['log_rows_after']} rows"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
