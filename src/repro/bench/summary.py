"""Consolidated benchmark summary: ``python -m repro.bench.summary``.

Collects the headline numbers out of every ``BENCH_*.json`` artifact at
the repo root into one ``BENCH_summary.json``, so a reader (or a CI
diff) gets the whole perf trajectory — engine speedups, group-refresh
scaling, observability overhead — from a single small file instead of
spelunking four detailed reports.

Each collector is tolerant of missing files and of older artifact
shapes (pre-multi-engine ``BENCH_exec.json`` had only interpreted and
compiled runs); absent inputs simply produce no section.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

__all__ = ["collect", "main"]


def _load(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _exec_headlines(data: dict[str, Any]) -> dict[str, Any]:
    experiments = data.get("experiments", {})
    out: dict[str, Any] = {
        "smoke": data.get("smoke"),
        "scale": data.get("scale", 1),
        "engines": data.get("engines", ["interpreted", "compiled"]),
    }
    e7 = experiments.get("E7_refresh", {})
    if e7:
        walls = {
            mode: run["refresh_wall_s"]
            for mode, run in e7.items()
            if isinstance(run, dict) and "refresh_wall_s" in run
        }
        out["E7_refresh"] = {
            "refresh_wall_s": walls,
            "wall_speedup_vs_interpreted": e7.get(
                "wall_speedup_vs_interpreted", e7.get("wall_speedup")
            ),
        }
    e13 = experiments.get("E13_shared_views", {})
    if e13:
        walls = {
            mode: run["phases"]["refresh_all"]["wall_s"]
            for mode, run in e13.items()
            if isinstance(run, dict) and "phases" in run
        }
        out["E13_shared_views"] = {
            "refresh_wall_s": walls,
            "refresh_wall_speedup_vs_interpreted": e13.get(
                "refresh_wall_speedup_vs_interpreted", e13.get("refresh_wall_speedup")
            ),
        }
    e18 = experiments.get("E18_group_refresh", {})
    if e18:
        walls = {
            mode: run["refresh_wall_s"]
            for mode, run in e18.items()
            if isinstance(run, dict) and "refresh_wall_s" in run
        }
        out["E18_group_refresh"] = {
            "refresh_wall_s": walls,
            "wall_speedup_vs_interpreted": e18.get("wall_speedup_vs_interpreted"),
        }
    return out


def _group_headlines(data: dict[str, Any]) -> dict[str, Any]:
    runs = data.get("experiments", {}).get("E18_group_refresh", {})
    out: dict[str, Any] = {"smoke": data.get("smoke")}
    for mode, by_views in runs.items():
        if not isinstance(by_views, dict):
            continue
        out[mode] = {
            views: {
                "wall_speedup": run.get("wall_speedup"),
                "tuple_op_reduction": run.get("tuple_op_reduction"),
                "delta_cache_hits": run.get("group", {}).get("delta_cache_hits"),
            }
            for views, run in by_views.items()
            if isinstance(run, dict)
        }
    return out


def _obs_headlines(data: dict[str, Any]) -> dict[str, Any]:
    experiments = data.get("experiments", {})
    out: dict[str, Any] = {"smoke": data.get("smoke")}
    overhead = experiments.get("overhead", {})
    if overhead:
        out["overhead"] = {
            "wall_overhead_ratio": overhead.get("wall_overhead_ratio"),
            "tuple_ops_identical": overhead.get("tuple_ops_identical"),
        }
    e19 = experiments.get("E19_downtime_staleness", {})
    for policy in ("policy1", "policy2"):
        run = e19.get(policy)
        if not isinstance(run, dict):
            continue
        out[policy] = {
            "downtime_total_s": run.get("downtime", {}).get("total_seconds"),
            "staleness_max_entries": run.get("staleness", {}).get("max_entries"),
            "full_refreshes": run.get("driver", {}).get("full_refreshes"),
        }
    return out


def _robust_headlines(data: dict[str, Any]) -> dict[str, Any]:
    grid = data.get("experiments", {}).get("E20_storm_grid", {}).get("grid", {})
    out: dict[str, Any] = {"smoke": data.get("smoke")}
    for engine, cells in grid.items():
        if not isinstance(cells, dict):
            continue
        storm = cells.get("storm", {})
        calm = cells.get("calm", {})
        out[engine] = {
            "storm_success_rate": storm.get("with_ladder", {}).get("success_rate"),
            "storm_ladder_wall_ratio": storm.get("ladder_wall_ratio"),
            "calm_ladder_wall_ratio": calm.get("ladder_wall_ratio"),
        }
    return out


def _partition_headlines(data: dict[str, Any]) -> dict[str, Any]:
    runs = data.get("experiments", {}).get("E21_partition_pruning", {})
    out: dict[str, Any] = {"smoke": data.get("smoke"), "parts": data.get("parts")}
    for label, point in runs.items():
        if not isinstance(point, dict):
            continue
        out[label] = {
            "wall_speedup": point.get("wall_speedup"),
            "affected_key_fraction": point.get("affected_key_fraction"),
            "partitions_touched": point.get("partitioned", {}).get("partitions_touched"),
            "partition_fallbacks": point.get("partitioned", {}).get("partition_fallbacks"),
            "digest_identical": point.get("digest_identical"),
        }
    return out


def _serve_headlines(data: dict[str, Any]) -> dict[str, Any]:
    experiments = data.get("experiments", {})
    out: dict[str, Any] = {"smoke": data.get("smoke")}
    serving = experiments.get("E22_serving", {})
    if serving:
        arm = serving.get("serving", {})
        out["serving"] = {
            "p50_read_latency_s": arm.get("latency_s", {}).get("p50_s"),
            "p99_read_latency_s": arm.get("latency_s", {}).get("p99_s"),
            "reader_lock_sections": arm.get("reader_observable", {}).get("lock_sections"),
            "max_staleness_ticks": arm.get("staleness_ticks", {}).get("max"),
            "digest_mismatches": arm.get("digests", {}).get("mismatches"),
        }
        out["synchronous"] = {
            "p99_read_latency_s": serving.get("synchronous", {})
            .get("latency_s", {})
            .get("p99_s"),
            "reader_lock_sections": serving.get("synchronous", {})
            .get("reader_observable", {})
            .get("lock_sections"),
        }
    concurrent = experiments.get("E22_concurrent_isolation", {})
    if concurrent:
        out["concurrent"] = {
            "threaded_reads": concurrent.get("latency_s", {}).get("reads"),
            "isolation_violations": concurrent.get("isolation_violations"),
            "reader_lock_sections": concurrent.get("reader_lock_sections"),
            "distinct_states_observed": concurrent.get("distinct_states_observed"),
        }
    return out


_COLLECTORS = {
    "BENCH_exec.json": ("exec", _exec_headlines),
    "BENCH_group.json": ("group", _group_headlines),
    "BENCH_obs.json": ("obs", _obs_headlines),
    "BENCH_robust.json": ("robust", _robust_headlines),
    "BENCH_partition.json": ("partition", _partition_headlines),
    "BENCH_serve.json": ("serve", _serve_headlines),
}


def collect(root: Path) -> dict[str, Any]:
    """Headline numbers from every known ``BENCH_*.json`` under ``root``."""
    summary: dict[str, Any] = {"benchmark": "repro.bench.summary", "sources": {}}
    for filename, (section, collector) in _COLLECTORS.items():
        data = _load(root / filename)
        if data is None:
            continue
        summary["sources"][section] = filename
        summary[section] = collector(data)
    # Any other BENCH_*.json (e.g. smoke variants) are listed but not parsed.
    known = set(_COLLECTORS) | {"BENCH_summary.json"}
    extras = sorted(
        path.name for path in root.glob("BENCH_*.json") if path.name not in known
    )
    if extras:
        summary["unparsed_artifacts"] = extras
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[3],
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the summary (default: BENCH_summary.json under --root)",
    )
    args = parser.parse_args(argv)
    output = args.output if args.output is not None else args.root / "BENCH_summary.json"
    summary = collect(args.root)
    output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {output} ({len(summary.get('sources', {}))} sources)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
