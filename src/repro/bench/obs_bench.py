"""E19 — observability benchmark: ``python -m repro.bench.obs_bench``.

Measures two things the observability layer exists for, and writes a
machine-readable ``BENCH_obs.json``:

* **E19_downtime_staleness** — Policy 1 vs Policy 2 at equal ``(k, m)``
  over the retail workload, measured with the
  :class:`~repro.obs.accounting.DowntimeAccountant`'s per-view clocks:
  per-refresh downtime (seconds *and* tuple-ops per exclusive-lock
  section) and staleness (wall-clock seconds *and* unpropagated log
  entries at each refresh).  The Section 5.3 ordering must reproduce:
  Policy 2's per-refresh downtime is strictly lower — its
  ``partial_refresh`` only applies precomputed differentials — while
  it serves answers a bounded ``k`` ticks stale.
* **overhead** — the same E7-shaped refresh workload run with
  observability disabled and enabled.  The tuple-op counts must be
  *identical* (spans absorb the cost counter, never add to it; the
  disabled path is a function call and a dict literal per site), and
  the enabled/disabled wall-clock ratio quantifies what turning the
  full stack on costs.

Usage::

    python -m repro.bench.obs_bench [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.core.policies import MaintenanceDriver, Policy1, Policy2
from repro.core.scenarios import BaseLogScenario, CombinedScenario
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_policy_comparison", "run_overhead_check"]


def _retail(*, smoke: bool, seed: int = 96):
    config = RetailConfig(
        customers=80 if smoke else 150,
        initial_sales=400 if smoke else 1500,
        txn_inserts=8 if smoke else 12,
        seed=seed,
    )
    workload = RetailWorkload(config)
    db = Database()
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    return db, view, workload


# ----------------------------------------------------------------------
# E19: Policy 1 vs Policy 2 through the downtime accountant
# ----------------------------------------------------------------------


def _run_policy(policy, *, smoke: bool, horizon: int, txns_per_tick: int) -> dict[str, object]:
    """One full simulated day under ``policy``, observed.

    ``query_every=1`` reads the view at every tick, so the driver's
    staleness samples measure how out-of-date *served answers* were in
    simulated ticks, alongside the accountant's wall-clock/log-entry
    samples taken at each refresh.
    """
    db, view, workload = _retail(smoke=smoke)
    with obs.observed() as observability:
        scenario = CombinedScenario(db, view)
        scenario.install()
        driver = MaintenanceDriver(scenario, policy)
        driver.run(
            workload.schedule(db, horizon=horizon, txns_per_tick=txns_per_tick),
            horizon=horizon,
            query_every=1,
        )
        clock = observability.accounting.clock(view.name)
        spans = {
            name: len(observability.tracer.find(name))
            for name in ("propagate", "partial_refresh", "refresh", "makesafe")
            if observability.tracer.find(name)
        }
        # Staleness at each refresh completion, in both units.
        samples = [{"wall_s": round(wall, 6), "entries": entries} for wall, entries in clock.staleness_samples]
        return {
            "policy": f"{type(policy).__name__}(k={policy.k}, m={policy.m})",
            "downtime": {
                "lock_sections": clock.lock_sections,
                "total_seconds": round(clock.locked_seconds, 6),
                "total_ops": clock.locked_ops,
                "mean_section_seconds": round(clock.mean_section_seconds(), 6),
                "mean_section_ops": round(clock.mean_section_ops(), 2),
                "max_section_seconds": round(clock.max_section_seconds, 6),
                "max_section_ops": clock.max_section_ops,
            },
            "staleness": {
                "samples": samples,
                "max_wall_s": round(clock.max_staleness_seconds(), 6),
                "max_entries": clock.max_staleness_entries(),
                "residual_entries_after_run": clock.pending_entries,
                "max_ticks_served": driver.stats.max_staleness(),
                "mean_ticks_served": round(driver.stats.mean_staleness(), 3),
                "ticks_behind_after_run": driver.now - driver.mv_reflects,
            },
            "driver": {
                "transactions": driver.stats.transactions,
                "propagates": driver.stats.propagates,
                "partial_refreshes": driver.stats.partial_refreshes,
                "full_refreshes": driver.stats.full_refreshes,
            },
            "spans": spans,
        }


def run_policy_comparison(*, smoke: bool = False, k: int = 2, m: int = 7) -> dict[str, object]:
    """Policy 1 vs Policy 2 at equal ``(k, m)`` — the Section 5.3 trade.

    The default ``m = 7`` is deliberately not a multiple of ``k``: when
    ``k`` divides ``m``, every ``partial_refresh`` tick also carries a
    ``propagate``, and Policy 2 comes out fully fresh at each refresh —
    hiding exactly the bounded-``k`` residual staleness the policy
    trades for its lower downtime.
    """
    # An odd multiple of the (odd) m: the run ends on a partial_refresh
    # tick that does NOT coincide with a propagate, so Policy 2's
    # residual staleness is visible in the end-of-run clocks.
    horizon = m if smoke else 3 * m
    txns_per_tick = 2 if smoke else 5
    policy1 = _run_policy(Policy1(k=k, m=m), smoke=smoke, horizon=horizon, txns_per_tick=txns_per_tick)
    policy2 = _run_policy(Policy2(k=k, m=m), smoke=smoke, horizon=horizon, txns_per_tick=txns_per_tick)
    return {
        "config": {"k": k, "m": m, "horizon": horizon, "txns_per_tick": txns_per_tick},
        "policy1": policy1,
        "policy2": policy2,
        "ordering": {
            # The paper's claim at equal (k, m): Policy 2 refreshes with
            # strictly less work under the lock (it never computes deltas
            # there), at the price of a bounded-k residual staleness.
            "policy2_lower_max_section_ops": (
                policy2["downtime"]["max_section_ops"] < policy1["downtime"]["max_section_ops"]
            ),
            "policy2_lower_mean_section_ops": (
                policy2["downtime"]["mean_section_ops"] < policy1["downtime"]["mean_section_ops"]
            ),
            "policy2_residual_staleness": policy2["staleness"]["residual_entries_after_run"] > 0,
            "policy2_staleness_bounded_by_k": policy2["staleness"]["ticks_behind_after_run"] <= k,
            # horizon is a multiple of m, so Policy 1 ends on refresh_C.
            "policy1_fresh_after_full_refresh": policy1["staleness"]["ticks_behind_after_run"] == 0,
        },
    }


# ----------------------------------------------------------------------
# Overhead: the no-op path must not move the cost model (or the clock)
# ----------------------------------------------------------------------


def _e7_shaped_run(*, smoke: bool, enabled: bool, sanitizer: bool = False) -> dict[str, object]:
    """An E7-shaped transaction stream + refresh, observed or not.

    ``sanitizer=True`` runs under the dynamic lockset sanitizer *only*
    (tracer/metrics/accounting stay as ``enabled`` says) — the
    regression gate's ``--sanitizer-guard`` uses this to price the
    sanitizer's overhead in isolation.
    """
    initial_sales = 200 if smoke else 800
    pending = initial_sales
    config = RetailConfig(customers=80, initial_sales=initial_sales, txn_inserts=20, seed=96)
    workload = RetailWorkload(config)
    db = Database()
    workload.setup_database(db)

    def run() -> tuple[int, float]:
        scenario = BaseLogScenario(db, sql_to_view(VIEW_SQL, db))
        scenario.install()
        applied = 0
        start = time.perf_counter()
        while applied < pending:
            scenario.execute(workload.next_transaction(db))
            applied += config.txn_inserts
        scenario.refresh()
        wall = time.perf_counter() - start
        ops = scenario.counter.tuples_out
        scenario.uninstall()
        return ops, wall

    if enabled or sanitizer:
        with obs.observed(
            tracer=enabled, metrics=enabled, accounting=enabled, sanitizer=sanitizer
        ) as stack:
            ops, wall = run()
            findings = len(stack.sanitizer.findings) if sanitizer else 0
    else:
        obs.disable()
        ops, wall = run()
        findings = 0
    result = {"ops": ops, "wall_s": round(wall, 6)}
    if sanitizer:
        result["sanitizer_findings"] = findings
    return result


def run_overhead_check(*, smoke: bool = False, repeats: int = 3) -> dict[str, object]:
    """Tuple-op identity and wall-clock overhead, disabled vs enabled.

    Wall times take the *minimum* over ``repeats`` runs to damp noise;
    the tuple-op counts must match exactly on every run.
    """
    disabled = [_e7_shaped_run(smoke=smoke, enabled=False) for _ in range(repeats)]
    enabled = [_e7_shaped_run(smoke=smoke, enabled=True) for _ in range(repeats)]
    ops_disabled = {run["ops"] for run in disabled}
    ops_enabled = {run["ops"] for run in enabled}
    wall_disabled = min(run["wall_s"] for run in disabled)
    wall_enabled = min(run["wall_s"] for run in enabled)
    return {
        "repeats": repeats,
        "disabled": {"ops": sorted(ops_disabled), "best_wall_s": wall_disabled},
        "enabled": {"ops": sorted(ops_enabled), "best_wall_s": wall_enabled},
        "tuple_ops_identical": ops_disabled == ops_enabled and len(ops_disabled) == 1,
        "wall_overhead_ratio": round(wall_enabled / wall_disabled, 4) if wall_disabled else None,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_all(*, smoke: bool = False) -> dict[str, object]:
    return {
        "benchmark": "repro.bench.obs_bench",
        "smoke": smoke,
        "experiments": {
            "E19_downtime_staleness": run_policy_comparison(smoke=smoke),
            "overhead": run_overhead_check(smoke=smoke),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workloads (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_obs.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_obs.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    e19 = results["experiments"]["E19_downtime_staleness"]
    overhead = results["experiments"]["overhead"]
    print(f"wrote {output}")
    print(
        "E19 per-refresh downtime (max section ops): "
        f"Policy 1 {e19['policy1']['downtime']['max_section_ops']} vs "
        f"Policy 2 {e19['policy2']['downtime']['max_section_ops']} "
        f"(Policy 2 lower: {e19['ordering']['policy2_lower_max_section_ops']})"
    )
    print(
        "E19 staleness: Policy 2 max "
        f"{e19['policy2']['staleness']['max_entries']} log entries, "
        f"{e19['policy2']['staleness']['ticks_behind_after_run']} ticks behind after run "
        f"(bounded by k={e19['config']['k']})"
    )
    print(
        f"overhead: tuple-ops identical={overhead['tuple_ops_identical']}, "
        f"wall ratio={overhead['wall_overhead_ratio']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
