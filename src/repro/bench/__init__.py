"""Experiment harness: measurement helpers and report formatting."""

from repro.bench.harness import ExperimentResult, measure_cost, measure_wall
from repro.bench.report import format_table

__all__ = ["ExperimentResult", "measure_cost", "measure_wall", "format_table"]
