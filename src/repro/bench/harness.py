"""Measurement helpers shared by the experiment benchmarks.

Every experiment reports two cost signals:

* wall-clock seconds (`measure_wall`) — what the paper means by refresh
  time / downtime, on our hardware;
* tuple-operation counts (`measure_cost`) — deterministic, so the
  comparative *shape* of results is reproducible across machines.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.algebra.evaluation import CostCounter

__all__ = ["measure_wall", "measure_cost", "ExperimentResult"]


def measure_wall(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def measure_cost(counter: CostCounter, fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` and return ``(result, tuple_ops_delta)`` on ``counter``."""
    before = counter.tuples_out
    result = fn()
    return result, counter.tuples_out - before


@dataclass
class ExperimentResult:
    """Accumulates the rows of one experiment's report table."""

    experiment: str
    description: str = ""
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add(self, **cells: Any) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def report(self) -> str:
        from repro.bench.report import format_table

        header = f"== {self.experiment} ==" + (f"  {self.description}" if self.description else "")
        return header + "\n" + format_table(self.rows)
