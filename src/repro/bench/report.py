"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["format_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Format dict rows as an aligned text table.

    Column order follows first appearance unless ``columns`` is given.
    Missing cells render as ``-``.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    rendered = [[format_cell(row.get(column, "-")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(line[index].ljust(widths[index]) for index in range(len(columns))) for line in rendered)
    return f"{header}\n{rule}\n{body}"
