"""E22 — online serving benchmark: ``python -m repro.bench.serve_bench``.

Drives the :class:`~repro.serve.ViewServer` over the seeded retail
workload and writes a machine-readable ``BENCH_serve.json`` with the
Section 5.3 claim, restated for a serving system:

* **E22_serving** — Policy 2 as the online path.  A deterministic
  lockstep run pairs the server with an interpreted-oracle twin fed the
  byte-identical seeded schedule: every served read must digest
  bit-identically to the oracle, reader-observable exclusive-lock
  downtime must be exactly zero (no lock section is ever attributed to
  a reader thread), staleness must stay bounded by the configured
  ``(k, m)``, and p50/p99 read latency is reported from the raw
  open-loop samples alongside the `MetricsRegistry` histograms.
* **synchronous arm** — the same workload with readers calling
  ``read_fresh`` (refresh under the exclusive lock, then read): the
  pre-snapshot serving model.  Its reader threads *do* acquire the
  ``MV`` lock, giving the nonzero reader-observable downtime the
  deferred path removes.
* **concurrent arm** — N real reader threads against a background
  worker pool, checking snapshot isolation under actual concurrency:
  every digest observed by any reader must be one of the states the
  deterministic run published.

Usage::

    python -m repro.bench.serve_bench [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro import obs
from repro.robustness.journal import bag_digest
from repro.serve import ServeConfig, ViewServer
from repro.storage.database import Database
from repro.warehouse.manager import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_serving_comparison", "run_concurrent_isolation", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _build_server(
    exec_mode: str | None, *, smoke: bool, k: int, m: int, policy=None, seed: int = 96
):
    config = RetailConfig(
        customers=60 if smoke else 120,
        initial_sales=300 if smoke else 1200,
        txn_inserts=6 if smoke else 10,
        seed=seed,
    )
    workload = RetailWorkload(config)
    db = Database(exec_mode=exec_mode) if exec_mode is not None else Database()
    workload.setup_database(db)
    server = ViewServer(ServeConfig(k=k, m=m, policy=policy), manager=ViewManager(db))
    server.define_view("V", VIEW_SQL, scenario="combined")
    return server, workload, config


def _latency_summary(samples: list[float]) -> dict[str, float]:
    return {
        "reads": len(samples),
        "p50_s": round(percentile(samples, 0.50), 9),
        "p99_s": round(percentile(samples, 0.99), 9),
        "max_s": round(max(samples, default=0.0), 9),
    }


# ----------------------------------------------------------------------
# E22: deterministic lockstep vs the interpreted oracle
# ----------------------------------------------------------------------


def run_serving_comparison(
    *, smoke: bool = False, k: int = 2, m: int = 7, reads_per_tick: int = 16
) -> dict[str, object]:
    """Policy-2 serving vs the synchronous read-fresh path, oracle-checked.

    Both arms and the interpreted oracle replay the identical seeded
    schedule, so every comparison below is digest-for-digest
    deterministic; only the wall-clock latency numbers vary run to run.
    """
    horizon = 3 * m if smoke else 6 * m
    txns_per_tick = 2 if smoke else 4

    server, workload, _ = _build_server(None, smoke=smoke, k=k, m=m)
    oracle, oracle_workload, _ = _build_server("interpreted", smoke=smoke, k=k, m=m)

    latencies: list[float] = []
    staleness_samples: list[int] = []
    post_refresh_staleness: list[int] = []
    digest_matches = 0
    digest_mismatches = 0

    with obs.observed() as stack:
        for _ in range(horizon):
            txns = [workload.next_transaction(server.db) for _ in range(txns_per_tick)]
            oracle_txns = [
                oracle_workload.next_transaction(oracle.db) for _ in range(txns_per_tick)
            ]
            ran = server.tick(txns)
            oracle.tick(oracle_txns)
            for _ in range(reads_per_tick):
                started = time.perf_counter()
                value = server.read("V")
                latencies.append(time.perf_counter() - started)
                staleness_samples.append(server.staleness_ticks("V"))
            digest = bag_digest(server.read("V"))
            if digest == bag_digest(oracle.read("V")):
                digest_matches += 1
            else:
                digest_mismatches += 1
            if any(action == "partial_refresh" for _, action in ran):
                post_refresh_staleness.append(server.staleness_ticks("V"))
        clock = stack.accounting.clock("V")
        metrics = stack.metrics.snapshot()

    reader_sections = server.ledger.sections_for_thread("reader")
    serving = {
        "latency_s": _latency_summary(latencies),
        "staleness_ticks": {
            "max": max(staleness_samples, default=0),
            "mean": round(sum(staleness_samples) / max(1, len(staleness_samples)), 3),
            "post_refresh_max": max(post_refresh_staleness, default=0),
            "bound_post_refresh": k,
            "bound_overall": k + m,
        },
        "digests": {"matches": digest_matches, "mismatches": digest_mismatches},
        "reader_observable": {
            "lock_sections": len(reader_sections),
            "lock_ops": sum(section.tuple_ops for section in reader_sections),
            "lock_seconds": round(sum(s.wall_seconds for s in reader_sections), 9),
        },
        "maintenance_downtime": {
            "lock_sections": clock.lock_sections,
            "total_ops": clock.locked_ops,
            "mean_section_ops": round(clock.mean_section_ops(), 2),
            "max_section_ops": clock.max_section_ops,
        },
        "snapshots": server.registry.stats(),
        "metrics": {
            "reads_served": metrics.get("reads_served"),
            "read_latency_s": metrics.get("read_latency_s"),
            "read_staleness_ticks": metrics.get("read_staleness_ticks"),
        },
    }

    # Synchronous arm: a dedicated reader thread calls read_fresh once per
    # tick — refresh-under-lock on the reader's own thread, the pre-MVCC
    # serving model.  Joined per tick, so the run stays deterministic.
    sync_server, sync_workload, _ = _build_server(None, smoke=smoke, k=k, m=m)
    sync_latencies: list[float] = []

    def _sync_read() -> None:
        started = time.perf_counter()
        sync_server.read_fresh("V")
        sync_latencies.append(time.perf_counter() - started)

    for _ in range(horizon):
        txns = [sync_workload.next_transaction(sync_server.db) for _ in range(txns_per_tick)]
        sync_server.tick(txns)
        reader = threading.Thread(name="reader-sync", target=_sync_read)
        reader.start()
        reader.join()
    sync_sections = sync_server.ledger.sections_for_thread("reader")
    synchronous = {
        "latency_s": _latency_summary(sync_latencies),
        "reader_observable": {
            "lock_sections": len(sync_sections),
            "lock_ops": sum(section.tuple_ops for section in sync_sections),
            "lock_seconds": round(sum(s.wall_seconds for s in sync_sections), 9),
        },
    }

    return {
        "config": {
            "k": k,
            "m": m,
            "horizon": horizon,
            "txns_per_tick": txns_per_tick,
            "reads_per_tick": reads_per_tick,
        },
        "serving": serving,
        "synchronous": synchronous,
        "ordering": {
            "reader_downtime_zero_when_serving": serving["reader_observable"]["lock_sections"] == 0,
            "reader_downtime_nonzero_when_synchronous": (
                synchronous["reader_observable"]["lock_ops"] > 0
            ),
            "digests_identical_to_oracle": digest_mismatches == 0 and digest_matches == horizon,
            "staleness_bounded_by_k_at_refresh": (
                serving["staleness_ticks"]["post_refresh_max"] <= k
            ),
            "staleness_bounded_by_k_plus_m": serving["staleness_ticks"]["max"] <= k + m,
        },
    }


# ----------------------------------------------------------------------
# Concurrent isolation: real reader threads vs a background worker pool
# ----------------------------------------------------------------------


def run_concurrent_isolation(
    *,
    smoke: bool = False,
    k: int = 2,
    m: int = 7,
    readers: int = 4,
    reads_per_reader: int = 10_000,
) -> dict[str, object]:
    """N reader threads + a worker pool; every observed state must be real.

    With background workers, a propagate may lag its queueing tick and
    absorb later transactions, so the legitimate MV states are exactly
    ``V`` evaluated at the tick-boundary prefixes of the seeded schedule
    (transactions commit only inside ``tick``'s mutex hold).  An
    interpreted twin refreshing every tick enumerates that prefix-state
    digest set; any read outside it is a torn or mid-epoch leak.
    """
    from repro.core.policies import PeriodicRefresh

    horizon = 3 * m if smoke else 6 * m
    txns_per_tick = 2 if smoke else 4
    server, workload, _ = _build_server(None, smoke=smoke, k=k, m=m)
    oracle, oracle_workload, _ = _build_server(
        "interpreted", smoke=smoke, k=k, m=m, policy=PeriodicRefresh(m=1)
    )
    server.start_workers(2)
    known = {bag_digest(oracle.read("V"))}

    stop = threading.Event()
    latencies: dict[str, list[float]] = {}
    observed: dict[str, set[str]] = {}

    def _reader(name: str) -> None:
        mine_lat: list[float] = []
        mine_digests: set[str] = set()
        index = 0
        # Open-loop: keep reading (with a small think time) until the
        # writer finishes its epochs, up to a hard per-reader cap.
        while not stop.is_set() and index < reads_per_reader:
            started = time.perf_counter()
            if index % 5 == 4:
                # Every fifth read runs a pinned multi-read session: both
                # reads must come from the same immutable cut.
                with server.pin() as handle:
                    first = server.read_at(handle, "V")
                    second = server.read_at(handle, "V")
                    assert first is second
                    value = first
            else:
                value = server.read("V")
            mine_lat.append(time.perf_counter() - started)
            mine_digests.add(bag_digest(value))
            index += 1
            time.sleep(0.0005)
        latencies[name] = mine_lat
        observed[name] = mine_digests

    threads = [
        threading.Thread(name=f"reader-{index}", target=_reader, args=(f"reader-{index}",))
        for index in range(readers)
    ]
    for thread in threads:
        thread.start()
    for _ in range(horizon):
        txns = [workload.next_transaction(server.db) for _ in range(txns_per_tick)]
        server.tick(txns)
        oracle_txns = [
            oracle_workload.next_transaction(oracle.db) for _ in range(txns_per_tick)
        ]
        oracle.tick(oracle_txns)
        known.add(bag_digest(oracle.read("V")))
    server.wait_idle()
    stop.set()
    for thread in threads:
        thread.join()
    server.stop_workers()

    all_latencies = [sample for samples in latencies.values() for sample in samples]
    seen = set().union(*observed.values()) if observed else set()
    unknown = seen - known
    reader_sections = server.ledger.sections_for_thread("reader")
    return {
        "config": {
            "k": k,
            "m": m,
            "horizon": horizon,
            "readers": readers,
            "reads_per_reader": reads_per_reader,
        },
        "latency_s": _latency_summary(all_latencies),
        "reader_lock_sections": len(reader_sections),
        "distinct_states_observed": len(seen),
        "isolation_violations": len(unknown),
        "worker_actions": server.actions_run,
        "snapshots": server.registry.stats(),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_all(*, smoke: bool = False) -> dict[str, object]:
    comparison = run_serving_comparison(smoke=smoke)
    concurrent = run_concurrent_isolation(smoke=smoke)
    return {
        "benchmark": "repro.bench.serve_bench",
        "smoke": smoke,
        "experiments": {
            "E22_serving": comparison,
            "E22_concurrent_isolation": concurrent,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workloads (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_serve.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_serve.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    e22 = results["experiments"]["E22_serving"]
    concurrent = results["experiments"]["E22_concurrent_isolation"]
    print(f"wrote {output}")
    print(
        "E22 reader-observable downtime: serving "
        f"{e22['serving']['reader_observable']['lock_ops']} lock ops vs synchronous "
        f"{e22['synchronous']['reader_observable']['lock_ops']} "
        f"(zero when serving: {e22['ordering']['reader_downtime_zero_when_serving']})"
    )
    print(
        "E22 read latency: serving p50 "
        f"{e22['serving']['latency_s']['p50_s'] * 1e6:.1f}us / p99 "
        f"{e22['serving']['latency_s']['p99_s'] * 1e6:.1f}us over "
        f"{e22['serving']['latency_s']['reads']} reads; synchronous p99 "
        f"{e22['synchronous']['latency_s']['p99_s'] * 1e6:.1f}us"
    )
    print(
        "E22 staleness: max "
        f"{e22['serving']['staleness_ticks']['max']} ticks (bound {e22['config']['k'] + e22['config']['m']}), "
        f"post-refresh max {e22['serving']['staleness_ticks']['post_refresh_max']} "
        f"(bound k={e22['config']['k']}); digests identical to oracle: "
        f"{e22['ordering']['digests_identical_to_oracle']}"
    )
    print(
        "E22 concurrency: "
        f"{concurrent['latency_s']['reads']} threaded reads, "
        f"{concurrent['distinct_states_observed']} states observed, "
        f"{concurrent['isolation_violations']} isolation violations, "
        f"{concurrent['reader_lock_sections']} reader lock sections"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
