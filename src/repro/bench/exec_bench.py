"""Compiled-engine benchmark: ``python -m repro.bench.exec_bench``.

Runs the E7 (incremental-vs-recompute) and E13 (shared-view scaling)
workloads at their largest sizes under **both** execution engines and
writes a machine-readable ``BENCH_exec.json`` so future changes have a
perf trajectory to compare against.

The E1–E16 experiment suite itself is pinned to the interpreted engine
(see ``benchmarks/conftest.py``) because it reproduces the *paper's*
cost model; this module measures the *system-level* win of the compiled
engine on the same workloads:

* **E7_refresh** — the ``refresh_BL`` call at the largest pending-change
  volume (3× the base table).  The compiled engine serves the deltas'
  equi-joins from hash indexes and reuses memoized subexpression
  results; index maintenance is *deferred*, so the refresh ops include
  the one-time sync of changes accumulated by the transaction stream.
* **E13_shared_views** — sixteen join views over one base, a transaction
  stream, then ``refresh`` of every view.  Reported per phase: install
  (plan/memo sharing across structurally identical view queries),
  transactions (index maintenance is deferred, so this phase matches the
  interpreted engine op-for-op — the whole point of deferral), and the
  refresh phase, which pays the deferred index sync exactly once.

Usage::

    python -m repro.bench.exec_bench [--smoke] [--output PATH]

``--smoke`` shrinks the workloads for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algebra.evaluation import CostCounter
from repro.core.plan import MaintenancePlan
from repro.core.scenarios import BaseLogScenario
from repro.core.views import ViewDefinition
from repro.exec import COMPILED, INTERPRETED
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_e7_refresh", "run_e13_shared_views"]

MODES = (INTERPRETED, COMPILED)


def _counter_summary(counter: CostCounter) -> dict[str, object]:
    return {
        "plan_hits": counter.plan_hits,
        "plan_misses": counter.plan_misses,
        "memo_hits": counter.memo_hits,
        "index_probes": counter.index_probes,
        "delta_cache_hits": counter.delta_cache_hits,
        "operators": dict(counter.by_operator),
    }


def _ratio(interpreted: float, compiled: float) -> float | None:
    if not compiled:
        return None
    return round(interpreted / compiled, 2)


# ----------------------------------------------------------------------
# E7: refresh_BL at the largest pending-change volume
# ----------------------------------------------------------------------


def run_e7_refresh(mode: str, *, smoke: bool = False) -> dict[str, object]:
    """One E7-shaped run; returns the refresh-phase cost under ``mode``."""
    initial_sales = 300 if smoke else 1500
    pending = initial_sales if smoke else 3 * initial_sales  # the largest E7 fraction
    config = RetailConfig(customers=150, initial_sales=initial_sales, txn_inserts=25, seed=96)
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    scenario = BaseLogScenario(db, view)
    scenario.install()
    applied = 0
    while applied < pending:
        scenario.execute(workload.next_transaction(db))
        applied += config.txn_inserts
    before = scenario.counter.tuples_out
    start = time.perf_counter()
    scenario.refresh()
    wall = time.perf_counter() - start
    assert scenario.is_consistent()
    return {
        "pending_rows": pending,
        "refresh_ops": scenario.counter.tuples_out - before,
        "refresh_wall_s": round(wall, 6),
        "counters": _counter_summary(scenario.counter),
    }


# ----------------------------------------------------------------------
# E13: many views over one base — install, transactions, refresh_all
# ----------------------------------------------------------------------


def run_e13_shared_views(mode: str, *, smoke: bool = False) -> dict[str, object]:
    """E13's scaling shape at its largest size (16 views), per phase."""
    views = 4 if smoke else 16
    txns = 10 if smoke else 30
    config = RetailConfig(customers=80, initial_sales=200 if smoke else 800, txn_inserts=8, seed=5)
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    base_view = sql_to_view(VIEW_SQL, db)

    phases: dict[str, dict[str, object]] = {}
    scenarios: list[BaseLogScenario] = []

    start = time.perf_counter()
    for index in range(views):
        scenario = BaseLogScenario(db, ViewDefinition(f"V{index}", base_view.query))
        scenario.install()
        scenarios.append(scenario)
    counter = scenarios[0].counter
    for scenario in scenarios[1:]:
        scenario.counter = counter
    phases["install"] = {"ops": counter.tuples_out, "wall_s": round(time.perf_counter() - start, 6)}

    marker = counter.tuples_out
    start = time.perf_counter()
    for txn in workload.transactions(db, txns):
        plan = MaintenancePlan(patches=txn.weakly_minimal().patches())
        for scenario in scenarios:
            plan = plan.merge(scenario.make_safe(txn))
        plan.execute(db, counter=counter)
    phases["transactions"] = {
        "ops": counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
    }

    marker = counter.tuples_out
    start = time.perf_counter()
    for scenario in scenarios:
        scenario.refresh()
    phases["refresh_all"] = {
        "ops": counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
    }
    for scenario in scenarios:
        assert scenario.is_consistent()
    return {
        "views": views,
        "txns": txns,
        "phases": phases,
        "total_ops": counter.tuples_out,
        "counters": _counter_summary(counter),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_all(*, smoke: bool = False) -> dict[str, object]:
    e7 = {mode: run_e7_refresh(mode, smoke=smoke) for mode in MODES}
    e13 = {mode: run_e13_shared_views(mode, smoke=smoke) for mode in MODES}
    e13_refresh = {mode: e13[mode]["phases"]["refresh_all"] for mode in MODES}
    return {
        "benchmark": "repro.bench.exec_bench",
        "smoke": smoke,
        "experiments": {
            "E7_refresh": {
                **{mode: e7[mode] for mode in MODES},
                "tuple_op_reduction": _ratio(
                    e7[INTERPRETED]["refresh_ops"], e7[COMPILED]["refresh_ops"]
                ),
                "wall_speedup": _ratio(
                    e7[INTERPRETED]["refresh_wall_s"], e7[COMPILED]["refresh_wall_s"]
                ),
            },
            "E13_shared_views": {
                **{mode: e13[mode] for mode in MODES},
                "refresh_tuple_op_reduction": _ratio(
                    e13_refresh[INTERPRETED]["ops"], e13_refresh[COMPILED]["ops"]
                ),
                "refresh_wall_speedup": _ratio(
                    e13_refresh[INTERPRETED]["wall_s"], e13_refresh[COMPILED]["wall_s"]
                ),
                "total_tuple_op_reduction": _ratio(
                    e13[INTERPRETED]["total_ops"], e13[COMPILED]["total_ops"]
                ),
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workloads (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_exec.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_exec.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    e7 = results["experiments"]["E7_refresh"]
    e13 = results["experiments"]["E13_shared_views"]
    print(f"wrote {output}")
    print(
        f"E7 refresh: {e7[INTERPRETED]['refresh_ops']} -> {e7[COMPILED]['refresh_ops']} tuple-ops "
        f"({e7['tuple_op_reduction']}x), wall {e7['wall_speedup']}x"
    )
    print(
        f"E13 refresh_all: {e13[INTERPRETED]['phases']['refresh_all']['ops']} -> "
        f"{e13[COMPILED]['phases']['refresh_all']['ops']} tuple-ops "
        f"({e13['refresh_tuple_op_reduction']}x), wall {e13['refresh_wall_speedup']}x, "
        f"end-to-end {e13['total_tuple_op_reduction']}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
