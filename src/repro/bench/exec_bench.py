"""Execution-engine benchmark: ``python -m repro.bench.exec_bench``.

Runs the E7 (incremental-vs-recompute), E13 (shared-view scaling), and
E18 (group-refresh) workloads under every execution engine —
interpreted, compiled, vectorized, sqlite — and writes a
machine-readable ``BENCH_exec.json`` so future changes have a perf
trajectory to compare against.

The E1–E16 experiment suite itself is pinned to the interpreted engine
(see ``benchmarks/conftest.py``) because it reproduces the *paper's*
cost model; this module measures the *system-level* win of the engine
tiers on the same workloads:

* **E7_refresh** — the ``refresh_BL`` call after a heavy backlog of
  pending changes (three times the initial ``sales`` table, so deferral
  has something to defer), with ``--scale`` growing base and backlog
  together while the *view* stays small: the high-score segment is a
  fixed number of customers at every scale.  The update stream also
  re-scores customers (``promotion_fraction``), so refresh deltas join
  customer changes against the full sales history — the paper's
  newly-valued-customer scenario.  The interpreted engine pays Python
  per intermediate row of that backlog; the sqlite engine pays C per
  row and Python only per *output* row, which is what the pushdown is
  for.
* **E13_shared_views** — sixteen join views over one base, a transaction
  stream, then ``refresh`` of every view.  Reported per phase: install
  (plan/memo sharing across structurally identical view queries),
  transactions (maintenance is deferred, so this phase matches the
  interpreted engine op-for-op — the whole point of deferral), and the
  refresh phase, which pays the deferred sync exactly once.
* **E18_group_refresh** — one group-refresh epoch over a pool of
  shared-log views (log compaction + cross-view delta sharing + the
  parallel scheduler), which exercises every engine from worker threads.

Every run digests its final view contents; ``run_all`` asserts each
engine's digest is bit-identical to the interpreted oracle's, so a
reported speedup can never come from computing something different.

Usage::

    python -m repro.bench.exec_bench [--smoke] [--scale N]
        [--engines interpreted,compiled,vectorized,sqlite] [--output PATH]

``--smoke`` shrinks the workloads for CI; ``--scale N`` multiplies the
base-data sizes and the pending-change backlog together
(``--scale 10`` is the headline configuration).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.core.plan import MaintenancePlan
from repro.core.scenarios import BaseLogScenario
from repro.core.views import ViewDefinition
from repro.exec import COMPILED, INTERPRETED, SQLITE, VECTORIZED, resolve_exec_mode
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.warehouse.manager import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_all", "run_e7_refresh", "run_e13_shared_views", "run_e18_group_refresh"]

MODES = (INTERPRETED, COMPILED, VECTORIZED, SQLITE)


def _digest(*bags: Bag) -> str:
    """A deterministic content digest of view bags (order-insensitive)."""
    payload = repr([sorted(bag.items(), key=repr) for bag in bags]).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _counter_summary(counter: CostCounter) -> dict[str, object]:
    return {
        "plan_hits": counter.plan_hits,
        "plan_misses": counter.plan_misses,
        "memo_hits": counter.memo_hits,
        "index_probes": counter.index_probes,
        "delta_cache_hits": counter.delta_cache_hits,
        "operators": dict(counter.by_operator),
    }


def _ratio(baseline: float, subject: float) -> float | None:
    if not subject:
        return None
    return round(baseline / subject, 2)


# ----------------------------------------------------------------------
# E7: refresh_BL at the largest pending-change volume
# ----------------------------------------------------------------------


def run_e7_refresh(mode: str, *, smoke: bool = False, scale: int = 1) -> dict[str, object]:
    """One E7-shaped run; returns the refresh-phase cost under ``mode``."""
    initial_sales = (300 if smoke else 1500) * scale
    # The backlog is three times the base and scales with it, while the
    # High segment is a *fixed* customer count at every scale: refresh
    # output stays small and constant, so the engines differ purely in
    # what they pay per intermediate row (Python vs. pushed-down C).
    pending = 3 * initial_sales
    customers = (50 if smoke else 150) * scale
    config = RetailConfig(
        customers=customers,
        initial_sales=initial_sales,
        txn_inserts=25,
        promotion_fraction=0.02,
        high_score_fraction=(10 if smoke else 30) / customers,
        seed=96,
    )
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    scenario = BaseLogScenario(db, view)
    scenario.install()
    applied = 0
    while applied < pending:
        scenario.execute(workload.next_transaction(db))
        applied += config.txn_inserts
    before = scenario.counter.tuples_out
    start = time.perf_counter()
    scenario.refresh()
    wall = time.perf_counter() - start
    assert scenario.is_consistent()
    return {
        "pending_rows": pending,
        "refresh_ops": scenario.counter.tuples_out - before,
        "refresh_wall_s": round(wall, 6),
        "view_digest": _digest(db[view.mv_table]),
        "counters": _counter_summary(scenario.counter),
    }


# ----------------------------------------------------------------------
# E13: many views over one base — install, transactions, refresh_all
# ----------------------------------------------------------------------


def run_e13_shared_views(mode: str, *, smoke: bool = False, scale: int = 1) -> dict[str, object]:
    """E13's scaling shape at its largest size (16 views), per phase."""
    views = 4 if smoke else 16
    txns = (10 if smoke else 30) * scale
    customers = (40 if smoke else 80) * scale
    config = RetailConfig(
        customers=customers,
        initial_sales=(200 if smoke else 800) * scale,
        txn_inserts=25,
        promotion_fraction=0.02,
        high_score_fraction=(8 if smoke else 16) / customers,
        seed=5,
    )
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    base_view = sql_to_view(VIEW_SQL, db)

    phases: dict[str, dict[str, object]] = {}
    scenarios: list[BaseLogScenario] = []

    start = time.perf_counter()
    for index in range(views):
        scenario = BaseLogScenario(db, ViewDefinition(f"V{index}", base_view.query))
        scenario.install()
        scenarios.append(scenario)
    counter = scenarios[0].counter
    for scenario in scenarios[1:]:
        scenario.counter = counter
    phases["install"] = {"ops": counter.tuples_out, "wall_s": round(time.perf_counter() - start, 6)}

    marker = counter.tuples_out
    start = time.perf_counter()
    for txn in workload.transactions(db, txns):
        plan = MaintenancePlan(patches=txn.weakly_minimal().patches())
        for scenario in scenarios:
            plan = plan.merge(scenario.make_safe(txn))
        plan.execute(db, counter=counter)
    phases["transactions"] = {
        "ops": counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
    }

    marker = counter.tuples_out
    start = time.perf_counter()
    for scenario in scenarios:
        scenario.refresh()
    phases["refresh_all"] = {
        "ops": counter.tuples_out - marker,
        "wall_s": round(time.perf_counter() - start, 6),
    }
    for scenario in scenarios:
        assert scenario.is_consistent()
    return {
        "views": views,
        "txns": txns,
        "phases": phases,
        "total_ops": counter.tuples_out,
        "view_digest": _digest(*(db[scenario.view.mv_table] for scenario in scenarios)),
        "counters": _counter_summary(counter),
    }


# ----------------------------------------------------------------------
# E18: one group-refresh epoch over a pool of shared-log views
# ----------------------------------------------------------------------


def run_e18_group_refresh(mode: str, *, smoke: bool = False, scale: int = 1) -> dict[str, object]:
    """One group-refresh epoch (compaction + delta sharing + parallel
    leaders) at the E18 sweep's large view count, under ``mode``."""
    from repro.bench.group_bench import TEMPLATES

    views = 4 if smoke else 16
    txns = 8 if smoke else 30
    config = RetailConfig(
        customers=60,
        initial_sales=(120 if smoke else 600) * scale,
        txn_inserts=6,
        delete_fraction=0.4,
        seed=18,
    )
    workload = RetailWorkload(config)
    manager = ViewManager(exec_mode=mode)
    workload.setup_database(manager.db)
    for index in range(views):
        manager.define_view(f"V{index}", TEMPLATES[index % len(TEMPLATES)], scenario="shared_log")
    for txn in workload.transactions(manager.db, txns):
        manager.execute(txn)

    marker = manager.counter.tuples_out
    start = time.perf_counter()
    manager.refresh_group(parallel=True)
    wall = time.perf_counter() - start
    names = sorted(manager.views())
    for name in names:
        assert not manager.is_stale(name), name
    return {
        "views": views,
        "txns": txns,
        "refresh_ops": manager.counter.tuples_out - marker,
        "refresh_wall_s": round(wall, 6),
        "view_digest": _digest(*(manager.query(name) for name in names)),
        "counters": _counter_summary(manager.counter),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _speedups(runs: dict[str, dict[str, object]], key: str) -> dict[str, float | None]:
    baseline = runs.get(INTERPRETED)
    if baseline is None:
        return {}
    return {
        mode: _ratio(baseline[key], runs[mode][key]) for mode in runs if mode != INTERPRETED
    }


def _check_digests(experiment: str, runs: dict[str, dict[str, object]]) -> None:
    baseline = runs.get(INTERPRETED)
    if baseline is None:
        return
    for mode, run in runs.items():
        if run["view_digest"] != baseline["view_digest"]:
            raise AssertionError(
                f"{experiment}: {mode} produced view contents differing from the "
                f"interpreted oracle ({run['view_digest']} != {baseline['view_digest']})"
            )


def run_all(
    *, smoke: bool = False, scale: int = 1, engines: tuple[str, ...] = MODES
) -> dict[str, object]:
    e7 = {mode: run_e7_refresh(mode, smoke=smoke, scale=scale) for mode in engines}
    e13 = {mode: run_e13_shared_views(mode, smoke=smoke, scale=scale) for mode in engines}
    e18 = {mode: run_e18_group_refresh(mode, smoke=smoke, scale=scale) for mode in engines}
    _check_digests("E7_refresh", e7)
    _check_digests("E13_shared_views", e13)
    _check_digests("E18_group_refresh", e18)
    e13_refresh = {mode: e13[mode]["phases"]["refresh_all"] for mode in engines}
    results: dict[str, object] = {
        "benchmark": "repro.bench.exec_bench",
        "smoke": smoke,
        "scale": scale,
        "engines": list(engines),
        "experiments": {
            "E7_refresh": {
                **{mode: e7[mode] for mode in engines},
                "wall_speedup_vs_interpreted": _speedups(e7, "refresh_wall_s"),
            },
            "E13_shared_views": {
                **{mode: e13[mode] for mode in engines},
                "refresh_wall_speedup_vs_interpreted": {
                    mode: _ratio(
                        e13_refresh[INTERPRETED]["wall_s"], e13_refresh[mode]["wall_s"]
                    )
                    for mode in engines
                    if mode != INTERPRETED
                }
                if INTERPRETED in engines
                else {},
            },
            "E18_group_refresh": {
                **{mode: e18[mode] for mode in engines},
                "wall_speedup_vs_interpreted": _speedups(e18, "refresh_wall_s"),
            },
        },
    }
    if INTERPRETED in engines and COMPILED in engines:
        experiments = results["experiments"]
        experiments["E7_refresh"]["tuple_op_reduction"] = _ratio(
            e7[INTERPRETED]["refresh_ops"], e7[COMPILED]["refresh_ops"]
        )
        experiments["E7_refresh"]["wall_speedup"] = _ratio(
            e7[INTERPRETED]["refresh_wall_s"], e7[COMPILED]["refresh_wall_s"]
        )
        experiments["E13_shared_views"]["refresh_tuple_op_reduction"] = _ratio(
            e13_refresh[INTERPRETED]["ops"], e13_refresh[COMPILED]["ops"]
        )
        experiments["E13_shared_views"]["refresh_wall_speedup"] = _ratio(
            e13_refresh[INTERPRETED]["wall_s"], e13_refresh[COMPILED]["wall_s"]
        )
        experiments["E13_shared_views"]["total_tuple_op_reduction"] = _ratio(
            e13[INTERPRETED]["total_ops"], e13[COMPILED]["total_ops"]
        )
    return results


def _parse_engines(spec: str) -> tuple[str, ...]:
    engines = tuple(resolve_exec_mode(part) for part in spec.split(",") if part.strip())
    if not engines:
        raise argparse.ArgumentTypeError("at least one engine is required")
    return engines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workloads (for CI)")
    parser.add_argument(
        "--scale", type=int, default=1, help="multiply base-data sizes (10 = headline run)"
    )
    parser.add_argument(
        "--engines",
        type=_parse_engines,
        default=MODES,
        help="comma-separated engine list (default: all four)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_exec.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_exec.json"

    results = run_all(smoke=args.smoke, scale=args.scale, engines=tuple(args.engines))
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    experiments = results["experiments"]
    print(f"wrote {output}")
    for name, wall_key, speedup_key in (
        ("E7_refresh", "refresh_wall_s", "wall_speedup_vs_interpreted"),
        ("E18_group_refresh", "refresh_wall_s", "wall_speedup_vs_interpreted"),
    ):
        runs = experiments[name]
        walls = ", ".join(
            f"{mode}={runs[mode][wall_key]}s" for mode in results["engines"] if mode in runs
        )
        print(f"{name}: {walls}")
        if runs.get(speedup_key):
            print(f"  wall speedup vs interpreted: {runs[speedup_key]}")
    e13 = experiments["E13_shared_views"]
    walls = ", ".join(
        f"{mode}={e13[mode]['phases']['refresh_all']['wall_s']}s"
        for mode in results["engines"]
    )
    print(f"E13_shared_views refresh_all: {walls}")
    if e13.get("refresh_wall_speedup_vs_interpreted"):
        print(f"  wall speedup vs interpreted: {e13['refresh_wall_speedup_vs_interpreted']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
