"""E20 — robustness benchmark: ``python -m repro.bench.robust_bench``.

Prices the self-healing layer, and writes a machine-readable
``BENCH_robust.json``: the retail maintenance workload (transactions,
propagates, partial refreshes, full refreshes) runs under a seeded
p = 0.05 transient-fault storm on every ``flaky-*`` backend seam, once
*without* the engine governor and once *with* it, on each of the four
execution engines.  Per cell:

* **refresh success rate** — the fraction of maintenance operations
  that completed without a client-visible error.  Ungoverned, a storm
  hit on the sqlite tier's pushdown seam surfaces as a raw
  ``sqlite3.OperationalError`` to whoever asked for the refresh;
  governed, the ladder retries, demotes, and re-promotes, so the
  acceptance bar is a success rate of exactly 1.0 on every engine.
* **wall-clock overhead** — governed-vs-ungoverned wall time on the
  same storm, and a no-storm governed/ungoverned baseline pair that
  prices the ladder's bookkeeping alone (one gate check per
  evaluation when every breaker is closed).

Engines whose seams the storm cannot reach (the in-process tiers) show
1.0 success on both arms — the grid localizes the exposure to the
sqlite tier and shows the ladder closing exactly that gap.

Usage::

    python -m repro.bench.robust_bench [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.robustness.faults import INJECTOR
from repro.warehouse.manager import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["main", "run_storm_grid", "ENGINES"]

ENGINES = ("interpreted", "compiled", "vectorized", "sqlite")

STORM_SEED = 1996
STORM_PROBABILITY = 0.05


def _build_manager(engine: str, *, governed: bool, config: RetailConfig) -> tuple[ViewManager, RetailWorkload]:
    workload = RetailWorkload(config)
    manager = ViewManager(
        exec_mode=engine,
        governed=governed,
        governor_opts={"sleep": lambda delay: None} if governed else None,
    )
    manager.create_table("customer", ("custId", "name", "address", "score"))
    manager.load("customer", workload.customer_rows())
    manager.create_table("sales", ("custId", "itemNo", "quantity", "salesPrice"))
    manager.load("sales", workload.initial_sales_rows())
    manager.define_view("V", VIEW_SQL, scenario="combined")
    return manager, workload


def _drive(
    engine: str,
    *,
    governed: bool,
    txns: int,
    storm: bool,
    config: RetailConfig,
) -> dict[str, object]:
    """One full workload run; every maintenance op individually scored.

    The storm is armed *after* setup so both arms rain on the same
    phase of the run, and each op catches client-visible errors
    (anything a caller of ``refresh`` would have to handle) instead of
    aborting the run — the success rate is the metric.
    """
    manager, workload = _build_manager(engine, governed=governed, config=config)
    INJECTOR.reset()
    if storm:
        INJECTOR.arm_storm(seed=STORM_SEED, probability=STORM_PROBABILITY)
    ops: list = []
    for index in range(txns):
        txn = manager.transaction()
        txn.insert("sales", [workload._sale_row() for __ in range(config.txn_inserts)])
        ops.append(("txn", txn.run))
        if index % 2 == 1:
            ops.append(("propagate", lambda: manager.propagate("V")))
        if index % 3 == 2:
            ops.append(("partial_refresh", lambda: manager.partial_refresh("V")))
        if index % 4 == 3:
            ops.append(("refresh", lambda: manager.refresh("V")))
    ops.append(("refresh", lambda: manager.refresh("V")))
    attempted = 0
    failed: dict[str, int] = {}
    last_error = None
    start = time.perf_counter()
    for kind, op in ops:
        attempted += 1
        try:
            op()
        except Exception as exc:  # the client-visible seam being priced
            failed[kind] = failed.get(kind, 0) + 1
            last_error = type(exc).__name__
    wall = time.perf_counter() - start
    INJECTOR.reset()
    failures = sum(failed.values())
    result = {
        "ops_attempted": attempted,
        "ops_failed": failures,
        "success_rate": round((attempted - failures) / attempted, 4),
        "wall_s": round(wall, 6),
    }
    if failures:
        result["failed_by_kind"] = dict(sorted(failed.items()))
        result["last_error"] = last_error
    return result


def run_storm_grid(*, smoke: bool = False) -> dict[str, object]:
    """The 4-engine × {ungoverned, governed} grid, stormy and calm."""
    txns = 8 if smoke else 24
    config = RetailConfig(
        customers=24 if smoke else 60,
        items=10,
        initial_sales=60 if smoke else 240,
        txn_inserts=4 if smoke else 8,
        seed=96,
    )
    grid: dict[str, object] = {}
    for engine in ENGINES:
        governed_counters: dict[str, int] = {}
        stack = obs.enable(tracer=False, accounting=False)
        try:
            with_ladder = _drive(engine, governed=True, txns=txns, storm=True, config=config)
            governed_counters = {
                name: snap["value"]
                for name, snap in stack.metrics.snapshot().items()
                if snap.get("type") == "counter"
                and name in ("engine_demotions", "engine_repromotions", "faults_injected", "mirror_resyncs")
            }
        finally:
            obs.disable()
        without_ladder = _drive(engine, governed=False, txns=txns, storm=True, config=config)
        calm_with = _drive(engine, governed=True, txns=txns, storm=False, config=config)
        calm_without = _drive(engine, governed=False, txns=txns, storm=False, config=config)
        grid[engine] = {
            "storm": {
                "without_ladder": without_ladder,
                "with_ladder": with_ladder,
                "ladder_wall_ratio": (
                    round(with_ladder["wall_s"] / without_ladder["wall_s"], 4)
                    if without_ladder["wall_s"]
                    else None
                ),
                "governor_counters": governed_counters,
            },
            "calm": {
                "without_ladder": {"wall_s": calm_without["wall_s"]},
                "with_ladder": {"wall_s": calm_with["wall_s"]},
                "ladder_wall_ratio": (
                    round(calm_with["wall_s"] / calm_without["wall_s"], 4)
                    if calm_without["wall_s"]
                    else None
                ),
            },
        }
    return {
        "config": {
            "storm_seed": STORM_SEED,
            "storm_probability": STORM_PROBABILITY,
            "txns": txns,
            "engines": list(ENGINES),
        },
        "grid": grid,
        "claims": {
            # The acceptance bar: governed, every engine absorbs the
            # storm completely — no maintenance op errors to the client.
            "governed_success_all_engines": all(
                grid[engine]["storm"]["with_ladder"]["success_rate"] == 1.0
                for engine in ENGINES
            ),
        },
    }


def run_all(*, smoke: bool = False) -> dict[str, object]:
    return {
        "benchmark": "repro.bench.robust_bench",
        "smoke": smoke,
        "experiments": {"E20_storm_grid": run_storm_grid(smoke=smoke)},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="shrunk workloads (for CI)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON (default: BENCH_robust.json at the repo root)",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parents[3] / "BENCH_robust.json"

    results = run_all(smoke=args.smoke)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")

    grid = results["experiments"]["E20_storm_grid"]
    print(f"wrote {output}")
    for engine in ENGINES:
        cell = grid["grid"][engine]["storm"]
        print(
            f"{engine:>12}: storm success "
            f"{cell['without_ladder']['success_rate']:.2%} ungoverned → "
            f"{cell['with_ladder']['success_rate']:.2%} governed "
            f"(wall ratio {cell['ladder_wall_ratio']})"
        )
    print(f"governed success on all engines: {grid['claims']['governed_success_all_engines']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
