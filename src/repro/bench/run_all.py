"""Regenerate every experiment table: ``python -m repro.bench.run_all``.

A thin convenience wrapper over the benchmark suite — runs
``pytest benchmarks/ --benchmark-only``, then the multi-engine
benchmark (:mod:`repro.bench.exec_bench`, which writes the
machine-readable ``BENCH_exec.json`` perf trajectory), then the
observability benchmark (:mod:`repro.bench.obs_bench` →
``BENCH_obs.json``), consolidates every ``BENCH_*.json`` headline into
``BENCH_summary.json`` (:mod:`repro.bench.summary`), and finally
concatenates the report tables from ``benchmarks/reports/`` in
experiment order, so a single command reproduces everything quoted in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    repo_root = Path(__file__).resolve().parents[3]
    benchmarks = repo_root / "benchmarks"
    if not benchmarks.is_dir():
        print(f"benchmarks directory not found at {benchmarks}", file=sys.stderr)
        return 2
    command = [sys.executable, "-m", "pytest", str(benchmarks), "--benchmark-only", "-q"]
    print("$", " ".join(command))
    completed = subprocess.run(command, cwd=repo_root)

    from repro.bench import exec_bench, obs_bench, summary

    exec_args = ["--smoke"] if "--smoke" in argv else []
    print("$", "python -m repro.bench.exec_bench", *exec_args)
    exec_rc = exec_bench.main(exec_args)

    print("$", "python -m repro.bench.obs_bench", *exec_args)
    obs_rc = obs_bench.main(exec_args)

    print("$", "python -m repro.bench.summary")
    summary_rc = summary.main([])

    reports = benchmarks / "reports"
    if reports.is_dir():
        def experiment_number(path: Path) -> int:
            match = re.match(r"E(\d+)", path.stem)
            return int(match.group(1)) if match else 999

        print("\n" + "=" * 70)
        print("EXPERIMENT TABLES")
        print("=" * 70)
        for path in sorted(reports.glob("E*.txt"), key=experiment_number):
            print()
            print(path.read_text().rstrip())
    return completed.returncode or exec_rc or obs_rc or summary_rc


if __name__ == "__main__":
    raise SystemExit(main())
