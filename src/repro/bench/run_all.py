"""Regenerate every experiment table: ``python -m repro.bench.run_all``.

A thin convenience wrapper over the benchmark suite — runs
``pytest benchmarks/ --benchmark-only`` and then concatenates the
report tables from ``benchmarks/reports/`` in experiment order, so a
single command reproduces everything quoted in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    repo_root = Path(__file__).resolve().parents[3]
    benchmarks = repo_root / "benchmarks"
    if not benchmarks.is_dir():
        print(f"benchmarks directory not found at {benchmarks}", file=sys.stderr)
        return 2
    command = [sys.executable, "-m", "pytest", str(benchmarks), "--benchmark-only", "-q"]
    print("$", " ".join(command))
    completed = subprocess.run(command, cwd=repo_root)
    reports = benchmarks / "reports"
    if reports.is_dir():
        def experiment_number(path: Path) -> int:
            match = re.match(r"E(\d+)", path.stem)
            return int(match.group(1)) if match else 999

        print("\n" + "=" * 70)
        print("EXPERIMENT TABLES")
        print("=" * 70)
        for path in sorted(reports.glob("E*.txt"), key=experiment_number):
            print()
            print(path.read_text().rstrip())
    return completed.returncode


if __name__ == "__main__":
    raise SystemExit(main())
