"""Benchmark regression gate: ``python -m repro.bench.regression_gate``.

Reads a ``BENCH_exec.json`` produced by :mod:`repro.bench.exec_bench`
and fails (exit 1) if the vectorized engine's refresh wall time exceeds
the compiled engine's on any experiment — the invariant CI enforces so
the columnar kernels can never silently regress behind the row-at-a-time
engine they were built to beat.

Timing on shared CI runners is noisy, so the comparison allows a small
headroom factor (``--tolerance``, default 1.2): vectorized must stay
within ``tolerance × compiled``.  Set ``--tolerance 1.0`` for a strict
local check.  Experiments missing either engine are skipped (the gate
only judges what was measured).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["check", "main"]

_EXPERIMENT_WALLS = {
    "E7_refresh": lambda run: run["refresh_wall_s"],
    "E13_shared_views": lambda run: run["phases"]["refresh_all"]["wall_s"],
    "E18_group_refresh": lambda run: run["refresh_wall_s"],
}


def check(
    data: dict, *, tolerance: float = 1.2, subject: str = "vectorized", baseline: str = "compiled"
) -> list[str]:
    """Violation messages (empty list = gate passes)."""
    violations: list[str] = []
    for name, wall_of in _EXPERIMENT_WALLS.items():
        runs = data.get("experiments", {}).get(name, {})
        subject_run = runs.get(subject)
        baseline_run = runs.get(baseline)
        if not isinstance(subject_run, dict) or not isinstance(baseline_run, dict):
            continue
        subject_wall = wall_of(subject_run)
        baseline_wall = wall_of(baseline_run)
        if subject_wall > tolerance * baseline_wall:
            violations.append(
                f"{name}: {subject} wall {subject_wall}s exceeds "
                f"{tolerance}x {baseline} wall {baseline_wall}s"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        type=Path,
        nargs="?",
        default=Path(__file__).resolve().parents[3] / "BENCH_exec.json",
        help="exec_bench JSON to judge (default: BENCH_exec.json at the repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.2,
        help="headroom factor for CI timing noise (1.0 = strict)",
    )
    parser.add_argument("--subject", default="vectorized", help="engine under test")
    parser.add_argument("--baseline", default="compiled", help="engine it must not lose to")
    args = parser.parse_args(argv)

    data = json.loads(args.report.read_text())
    violations = check(
        data, tolerance=args.tolerance, subject=args.subject, baseline=args.baseline
    )
    if violations:
        for violation in violations:
            print(f"REGRESSION: {violation}", file=sys.stderr)
        return 1
    judged = [
        name
        for name in _EXPERIMENT_WALLS
        if args.subject in data.get("experiments", {}).get(name, {})
        and args.baseline in data.get("experiments", {}).get(name, {})
    ]
    print(
        f"gate passed: {args.subject} within {args.tolerance}x {args.baseline} "
        f"on {', '.join(judged) if judged else 'no experiments (nothing measured)'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
