"""Benchmark regression gate: ``python -m repro.bench.regression_gate``.

Reads a ``BENCH_exec.json`` produced by :mod:`repro.bench.exec_bench`
and fails (exit 1) if the vectorized engine's refresh wall time exceeds
the compiled engine's on any experiment — the invariant CI enforces so
the columnar kernels can never silently regress behind the row-at-a-time
engine they were built to beat.

Timing on shared CI runners is noisy, so the comparison allows a small
headroom factor (``--tolerance``, default 1.2): vectorized must stay
within ``tolerance × compiled``.  Set ``--tolerance 1.0`` for a strict
local check.  Experiments missing either engine are skipped (the gate
only judges what was measured).

``--sanitizer-guard`` runs a second, self-contained gate for the
dynamic lockset sanitizer (:mod:`repro.obs.sanitizer`): on two pinned
smoke workloads (the E7-shaped refresh stream and an 8-view group
epoch) the sanitizer-disabled tuple-op counts must be **bit-identical**
to the checked-in baselines in ``bench/baselines/sanitizer_ops.json``,
the sanitizer-enabled counts must match them too (tracking changes no
accounting), the clean workloads must produce zero findings, and the
sanitizer's wall-clock overhead must stay within
``--sanitizer-tolerance`` (default 1.05×, judged on the median wall
ratio over ``--repeats`` interleaved plain/sanitized run pairs).

``--serve-guard`` judges a :mod:`repro.bench.serve_bench` report
(``BENCH_serve.json``): snapshot reads must be bit-identical to the
interpreted oracle, readers must acquire **zero** exclusive view locks,
concurrent readers must observe only legitimate prefix states, staleness
must stay within Policy 2's ``(k, m)`` bounds, and p99 read latency must
stay within ``--tolerance`` of the pinned SLO in
``bench/baselines/serve_slo.json``.

``--governor-guard`` gates the engine governor
(:mod:`repro.robustness.governor`) the same way: on a pinned retail
maintenance workload, run per engine with the governor disabled and
enabled — with no faults armed, the ladder must be pure bookkeeping.
Tuple-op counts and the final view digest must be **bit-identical**
across the two arms, and no breaker may trip (a trip on a healthy
backend would mean the governor is demoting spuriously).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

__all__ = ["check", "sanitizer_guard", "governor_guard", "serve_guard", "main"]

_REPO_ROOT = Path(__file__).resolve().parents[3]
_SANITIZER_BASELINE = _REPO_ROOT / "bench" / "baselines" / "sanitizer_ops.json"
_SERVE_BASELINE = _REPO_ROOT / "bench" / "baselines" / "serve_slo.json"

_EXPERIMENT_WALLS = {
    "E7_refresh": lambda run: run["refresh_wall_s"],
    "E13_shared_views": lambda run: run["phases"]["refresh_all"]["wall_s"],
    "E18_group_refresh": lambda run: run["refresh_wall_s"],
}


def check(
    data: dict, *, tolerance: float = 1.2, subject: str = "vectorized", baseline: str = "compiled"
) -> list[str]:
    """Violation messages (empty list = gate passes)."""
    violations: list[str] = []
    for name, wall_of in _EXPERIMENT_WALLS.items():
        runs = data.get("experiments", {}).get(name, {})
        subject_run = runs.get(subject)
        baseline_run = runs.get(baseline)
        if not isinstance(subject_run, dict) or not isinstance(baseline_run, dict):
            continue
        subject_wall = wall_of(subject_run)
        baseline_wall = wall_of(baseline_run)
        if subject_wall > tolerance * baseline_wall:
            violations.append(
                f"{name}: {subject} wall {subject_wall}s exceeds "
                f"{tolerance}x {baseline} wall {baseline_wall}s"
            )
    # The columnar kernels must also beat the *interpreted* oracle on the
    # E7 refresh stream (>= 1.0x, modulo the CI headroom) — being merely
    # "close to compiled" is not enough if both fell behind the baseline.
    e7 = data.get("experiments", {}).get("E7_refresh", {})
    vectorized = e7.get("vectorized")
    interpreted = e7.get("interpreted")
    if isinstance(vectorized, dict) and isinstance(interpreted, dict):
        vectorized_wall = vectorized["refresh_wall_s"]
        interpreted_wall = interpreted["refresh_wall_s"]
        if vectorized_wall > tolerance * interpreted_wall:
            violations.append(
                f"E7_refresh: vectorized wall {vectorized_wall}s exceeds "
                f"{tolerance}x interpreted wall {interpreted_wall}s "
                "(vectorized must stay >= 1.0x the interpreted oracle)"
            )
    return violations


# ----------------------------------------------------------------------
# Partitioned-maintenance guard
# ----------------------------------------------------------------------


def partition_guard(data: dict) -> list[str]:
    """Violation messages for the partition-pruning gate (empty = pass).

    Judges a ``BENCH_partition.json`` artifact: every sweep point's
    partitioned view must digest-identical to both the unpartitioned
    same-engine baseline and the interpreted oracle, pruning must never
    have fallen back to a whole-table plan, and each epoch's partitioned
    apply must touch at most the affected-partition count (bounded above
    by the affected-key count and the declared partition count).
    """
    violations: list[str] = []
    runs = data.get("experiments", {}).get("E21_partition_pruning", {})
    if not runs:
        return ["no E21_partition_pruning experiments in report"]
    for label, point in runs.items():
        if not isinstance(point, dict):
            continue
        if not point.get("digest_identical"):
            violations.append(
                f"{label}: partitioned digest {point.get('digest')} diverges from "
                f"the unpartitioned interpreted oracle {point.get('oracle_digest')}"
            )
        partitioned = point.get("partitioned", {})
        fallbacks = partitioned.get("partition_fallbacks", 0)
        if fallbacks:
            violations.append(
                f"{label}: {fallbacks} whole-table fallback(s) on a workload the "
                "analyzer declared fully prunable"
            )
        parts = point.get("parts", 0)
        for index, epoch in enumerate(partitioned.get("epochs", [])):
            touched = epoch.get("partitions_touched", 0)
            bound = min(parts, epoch.get("affected_keys", 0)) if parts else 0
            if touched > bound:
                violations.append(
                    f"{label} epoch {index}: touched {touched} partitions, more "
                    f"than the affected-partition bound {bound} "
                    f"({epoch.get('affected_keys')} affected keys, {parts} parts)"
                )
    return violations


# ----------------------------------------------------------------------
# Sanitizer overhead guard
# ----------------------------------------------------------------------


def _e7_smoke_run(sanitizer: bool) -> tuple[int, float, int]:
    from repro.bench.obs_bench import _e7_shaped_run

    result = _e7_shaped_run(smoke=True, enabled=False, sanitizer=sanitizer)
    return result["ops"], result["wall_s"], result.get("sanitizer_findings", 0)


def _group_smoke_run(sanitizer: bool) -> tuple[int, float, int]:
    from repro import obs
    from repro.bench.group_bench import _build

    manager, _ = _build("compiled", 8, smoke=True)
    marker = manager.counter.tuples_out
    findings = 0
    start = time.perf_counter()
    if sanitizer:
        with obs.observed(
            tracer=False, metrics=False, accounting=False, sanitizer=True
        ) as stack:
            manager.refresh_group(parallel=False)
            findings = len(stack.sanitizer.findings)
    else:
        obs.disable()
        manager.refresh_group(parallel=False)
    wall = time.perf_counter() - start
    return manager.counter.tuples_out - marker, wall, findings


_SANITIZER_WORKLOADS = {
    "e7_smoke": _e7_smoke_run,
    "group_smoke_8_views": _group_smoke_run,
}


def sanitizer_guard(
    baseline_path: Path = _SANITIZER_BASELINE, *, tolerance: float = 1.05, repeats: int = 15
) -> list[str]:
    """Violation messages for the sanitizer overhead gate (empty = pass)."""
    baseline = json.loads(Path(baseline_path).read_text())["workloads"]
    violations: list[str] = []
    for name, runner in _SANITIZER_WORKLOADS.items():
        expected = baseline[name]["ops"]
        # Interleave the two variants so clock/cache drift over the batch
        # biases neither side.
        plain, sanitized = [], []
        for _ in range(repeats):
            plain.append(runner(False))
            sanitized.append(runner(True))
        plain_ops = {ops for ops, _, _ in plain}
        sanitized_ops = {ops for ops, _, _ in sanitized}
        if plain_ops != {expected}:
            violations.append(
                f"{name}: sanitizer-disabled tuple ops {sorted(plain_ops)} != "
                f"baseline {expected}"
            )
        if sanitized_ops != {expected}:
            violations.append(
                f"{name}: sanitizer-enabled tuple ops {sorted(sanitized_ops)} != "
                f"baseline {expected} (tracking must not change accounting)"
            )
        findings = sum(count for _, _, count in sanitized)
        if findings:
            violations.append(
                f"{name}: clean workload produced {findings} sanitizer finding(s)"
            )
        # Single smoke runs finish in a few milliseconds, where scheduler
        # jitter swamps any single measurement.  Each adjacent
        # plain/sanitized pair runs under the same machine conditions, so
        # its wall ratio is drift-free; the median over pairs then
        # discards outlier runs in either direction.
        ratios = sorted(
            (s_wall / p_wall if p_wall else 1.0)
            for (_, p_wall, _), (_, s_wall, _) in zip(plain, sanitized)
        )
        ratio = ratios[len(ratios) // 2]
        if ratio > tolerance:
            violations.append(
                f"{name}: sanitizer wall overhead {ratio:.3f}x exceeds {tolerance}x "
                f"(median of {repeats} interleaved run pairs)"
            )
    return violations


# ----------------------------------------------------------------------
# View-server SLO guard
# ----------------------------------------------------------------------


def serve_guard(
    data: dict, baseline: dict, *, tolerance: float = 1.2
) -> list[str]:
    """Violation messages for the view-server SLO gate (empty = pass).

    Judges a ``BENCH_serve.json`` artifact against the pinned SLOs in
    ``bench/baselines/serve_slo.json``:

    * **Correctness is strict** — snapshot reads must be bit-identical
      to the interpreted oracle, zero reader-attributed exclusive lock
      sections, zero isolation violations under concurrent workers, and
      staleness within Policy 2's ``(k, m)`` bounds.
    * **Latency is tolerant** — p99 read latency must stay within
      ``tolerance ×`` the pinned baseline (CI runners are noisy; the
      pin itself carries ~100x headroom over a quiet local run).
    """
    violations: list[str] = []
    serving_run = data.get("experiments", {}).get("E22_serving")
    if not isinstance(serving_run, dict):
        return ["no E22_serving experiment in report"]
    serving = serving_run.get("serving", {})

    observable = serving.get("reader_observable", {})
    if observable.get("lock_sections", -1) != 0 or observable.get("lock_ops", -1) != 0:
        violations.append(
            "E22_serving: readers observed exclusive view locks "
            f"(sections={observable.get('lock_sections')}, "
            f"ops={observable.get('lock_ops')}); snapshot reads must never "
            "touch the maintenance lock path"
        )

    digests = serving.get("digests", {})
    if digests.get("mismatches", -1) != 0 or not digests.get("matches"):
        violations.append(
            f"E22_serving: {digests.get('mismatches')} digest mismatch(es) over "
            f"{digests.get('matches', 0)} checks; snapshot reads must be "
            "bit-identical to the interpreted oracle"
        )

    staleness = serving.get("staleness_ticks", {})
    if staleness.get("max", 1 << 30) > staleness.get("bound_overall", 0):
        violations.append(
            f"E22_serving: staleness max {staleness.get('max')} ticks exceeds "
            f"the k+m bound {staleness.get('bound_overall')}"
        )
    if staleness.get("post_refresh_max", 1 << 30) > staleness.get("bound_post_refresh", 0):
        violations.append(
            f"E22_serving: post-refresh staleness {staleness.get('post_refresh_max')} "
            f"ticks exceeds the k bound {staleness.get('bound_post_refresh')}"
        )

    for flag, value in serving_run.get("ordering", {}).items():
        if not value:
            violations.append(f"E22_serving: ordering check {flag!r} failed")

    p99 = serving.get("latency_s", {}).get("p99_s")
    pinned = baseline.get("p99_read_latency_s")
    if p99 is None or pinned is None:
        violations.append("E22_serving: p99 read latency missing from report or baseline")
    elif p99 > tolerance * pinned:
        violations.append(
            f"E22_serving: p99 read latency {p99}s exceeds {tolerance}x the "
            f"pinned SLO {pinned}s"
        )

    concurrent = data.get("experiments", {}).get("E22_concurrent_isolation")
    if not isinstance(concurrent, dict):
        violations.append("no E22_concurrent_isolation experiment in report")
    else:
        if concurrent.get("isolation_violations", -1) != 0:
            violations.append(
                f"E22_concurrent_isolation: {concurrent.get('isolation_violations')} "
                "read(s) observed a state outside the legitimate prefix-state set"
            )
        if concurrent.get("reader_lock_sections", -1) != 0:
            violations.append(
                f"E22_concurrent_isolation: {concurrent.get('reader_lock_sections')} "
                "exclusive lock section(s) attributed to reader threads"
            )
    return violations


# ----------------------------------------------------------------------
# Engine-governor purity guard
# ----------------------------------------------------------------------

_GOVERNOR_ENGINES = ("interpreted", "compiled", "vectorized", "sqlite")


def _governor_run(engine: str, governed: bool) -> tuple[int, str, dict | None]:
    """One pinned retail maintenance run; (tuple ops, view digest, snapshot)."""
    from repro.bench.robust_bench import _build_manager
    from repro.robustness.journal import bag_digest
    from repro.workloads.retail import RetailConfig

    config = RetailConfig(customers=16, items=8, initial_sales=48, txn_inserts=4, seed=96)
    manager, workload = _build_manager(engine, governed=governed, config=config)
    marker = manager.counter.tuples_out
    for index in range(4):
        txn = manager.transaction()
        txn.insert("sales", [workload._sale_row() for __ in range(config.txn_inserts)])
        txn.run()
        if index % 2 == 1:
            manager.propagate("V")
    manager.refresh("V")
    governor = manager.db.governor
    snapshot = governor.snapshot() if governor is not None else None
    return manager.counter.tuples_out - marker, bag_digest(manager.query("V")), snapshot


def governor_guard(*, engines: tuple[str, ...] = _GOVERNOR_ENGINES) -> list[str]:
    """Violation messages for the governor purity gate (empty = pass).

    With no faults armed, the governor must be invisible: identical
    tuple-op accounting, identical view contents, zero breaker trips.
    """
    from repro.robustness.faults import INJECTOR

    if INJECTOR.armed():
        return ["governor guard requires a disarmed fault injector"]
    violations: list[str] = []
    for engine in engines:
        plain_ops, plain_digest, _ = _governor_run(engine, governed=False)
        governed_ops, governed_digest, snapshot = _governor_run(engine, governed=True)
        if governed_ops != plain_ops:
            violations.append(
                f"{engine}: governed tuple ops {governed_ops} != ungoverned "
                f"{plain_ops} (the ladder must not change accounting)"
            )
        if governed_digest != plain_digest:
            violations.append(
                f"{engine}: governed view digest diverges from ungoverned run"
            )
        trips = sum(b["trips"] for b in snapshot["breakers"].values())
        if trips:
            violations.append(
                f"{engine}: {trips} breaker trip(s) on a healthy backend "
                f"(snapshot: {snapshot['breakers']})"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        type=Path,
        nargs="?",
        default=Path(__file__).resolve().parents[3] / "BENCH_exec.json",
        help="exec_bench JSON to judge (default: BENCH_exec.json at the repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.2,
        help="headroom factor for CI timing noise (1.0 = strict)",
    )
    parser.add_argument("--subject", default="vectorized", help="engine under test")
    parser.add_argument("--baseline", default="compiled", help="engine it must not lose to")
    parser.add_argument(
        "--sanitizer-guard",
        action="store_true",
        help="run the lockset-sanitizer overhead gate instead of the exec-bench gate",
    )
    parser.add_argument(
        "--governor-guard",
        action="store_true",
        help="run the engine-governor purity gate instead of the exec-bench gate",
    )
    parser.add_argument(
        "--partition-guard",
        action="store_true",
        help="judge a partition_bench report (digest parity with the "
        "interpreted oracle, zero fallbacks, touched <= affected partitions) "
        "instead of the exec-bench gate",
    )
    parser.add_argument(
        "--partition-report",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_partition.json",
        help="partition_bench JSON for --partition-guard",
    )
    parser.add_argument(
        "--serve-guard",
        action="store_true",
        help="judge a serve_bench report (zero reader lock acquisitions, "
        "digests bit-identical to the oracle, staleness within (k, m), p99 "
        "read latency within --tolerance of the pinned SLO) instead of the "
        "exec-bench gate",
    )
    parser.add_argument(
        "--serve-report",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_serve.json",
        help="serve_bench JSON for --serve-guard",
    )
    parser.add_argument(
        "--serve-baseline",
        type=Path,
        default=_SERVE_BASELINE,
        help="pinned read-latency SLO for the serve guard",
    )
    parser.add_argument(
        "--sanitizer-baseline",
        type=Path,
        default=_SANITIZER_BASELINE,
        help="pinned tuple-op baselines for the sanitizer guard",
    )
    parser.add_argument(
        "--sanitizer-tolerance",
        type=float,
        default=1.05,
        help="wall-clock headroom for the sanitizer guard (1.0 = strict)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=15,
        help="run pairs per workload for the sanitizer guard",
    )
    args = parser.parse_args(argv)

    if args.partition_guard:
        violations = partition_guard(json.loads(args.partition_report.read_text()))
        if violations:
            for violation in violations:
                print(f"REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(
            "gate passed: partitioned digests bit-identical to the interpreted "
            "oracle, zero whole-table fallbacks, every epoch within its "
            f"affected-partition bound ({args.partition_report.name})"
        )
        return 0

    if args.serve_guard:
        violations = serve_guard(
            json.loads(args.serve_report.read_text()),
            json.loads(args.serve_baseline.read_text()),
            tolerance=args.tolerance,
        )
        if violations:
            for violation in violations:
                print(f"REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(
            "gate passed: zero reader-observable lock acquisitions, snapshot "
            "digests bit-identical to the interpreted oracle, staleness within "
            f"(k, m), p99 read latency within {args.tolerance}x the pinned SLO "
            f"({args.serve_report.name})"
        )
        return 0

    if args.governor_guard:
        violations = governor_guard()
        if violations:
            for violation in violations:
                print(f"REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(
            "gate passed: governed and ungoverned tuple ops and view digests "
            f"bit-identical, zero breaker trips on {', '.join(_GOVERNOR_ENGINES)}"
        )
        return 0

    if args.sanitizer_guard:
        violations = sanitizer_guard(
            args.sanitizer_baseline,
            tolerance=args.sanitizer_tolerance,
            repeats=args.repeats,
        )
        if violations:
            for violation in violations:
                print(f"REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(
            "gate passed: sanitizer-disabled and -enabled tuple ops bit-identical "
            f"to baselines, wall overhead within {args.sanitizer_tolerance}x on "
            f"{', '.join(_SANITIZER_WORKLOADS)}"
        )
        return 0

    data = json.loads(args.report.read_text())
    violations = check(
        data, tolerance=args.tolerance, subject=args.subject, baseline=args.baseline
    )
    if violations:
        for violation in violations:
            print(f"REGRESSION: {violation}", file=sys.stderr)
        return 1
    judged = [
        name
        for name in _EXPERIMENT_WALLS
        if args.subject in data.get("experiments", {}).get(name, {})
        and args.baseline in data.get("experiments", {}).get(name, {})
    ]
    print(
        f"gate passed: {args.subject} within {args.tolerance}x {args.baseline} "
        f"on {', '.join(judged) if judged else 'no experiments (nothing measured)'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
