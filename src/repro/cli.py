"""An interactive warehouse shell: ``python -m repro``.

A small SQL console over a :class:`~repro.warehouse.ViewManager`, good
for demos and for poking at maintenance state:

.. code:: text

    $ python -m repro
    repro> CREATE TABLE sales (custId, itemNo, quantity, salesPrice);
    repro> INSERT INTO sales VALUES (1, 10, 2, 5.0);
    repro> CREATE VIEW V AS SELECT custId FROM sales WHERE quantity != 0;
    repro> SELECT custId FROM sales;
    repro> .stale V
    repro> .refresh V
    repro> .save warehouse.db

SQL statements end with ``;`` and may span lines.  Dot-commands act
immediately:

=================  ==================================================
``.tables``        list tables (and their sizes)
``.views``         list views and their staleness
``.scenario NAME`` scenario for subsequent CREATE VIEW (default: combined)
``.refresh V``     bring view ``V`` up to date
``.propagate V``   run ``propagate_C`` (combined-scenario views)
``.stale V``       is the view stale?
``.plan V``        show the view's incremental refresh queries
``.analyze V``     self-maintainability and refresh footprint
``.stats``         cost-counter and downtime summary
``.governor``      engine fallback-ladder status (``.governor on`` enables)
``.save FILE``     persist the warehouse (tables + views) to SQLite
``.open FILE``     load a warehouse saved with ``.save``
``.help``          this text
``.quit``          exit
=================  ==================================================
"""

from __future__ import annotations

import sys
from collections.abc import Iterable

from repro.bench.report import format_table
from repro.errors import ReproError
from repro.sqlfront.compiler import (
    compile_aggregate_view,
    compile_delete,
    compile_insert,
    compile_query,
    compile_update,
    compile_view,
)
from repro.sqlfront.parser import (
    CreateTable,
    CreateView,
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
    parse_script,
)
from repro.core.transactions import UserTransaction
from repro.warehouse import ViewManager

__all__ = ["WarehouseShell", "main"]

_HELP = __doc__.split("SQL statements end", 1)[1]


class _QueryCatalog:
    """Table resolution for shell queries: view names read their MV tables."""

    def __init__(self, manager: ViewManager) -> None:
        self._manager = manager

    def ref(self, name: str):
        if name in self._manager.views():
            return self._manager.db.ref(self._manager.scenario(name).view.mv_table)
        return self._manager.db.ref(name)


class WarehouseShell:
    """Stateful line-oriented shell around one :class:`ViewManager`."""

    def __init__(self) -> None:
        self.manager = ViewManager()
        self.default_scenario = "combined"
        self._buffer: list[str] = []

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Process one input line; returns text to display (may be '')."""
        stripped = line.strip()
        if not stripped:
            return ""
        if not self._buffer and stripped.startswith("."):
            return self._dot_command(stripped)
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement_text = "\n".join(self._buffer)
            self._buffer.clear()
            return self._run_sql(statement_text)
        return ""

    @property
    def pending(self) -> bool:
        """Whether a multi-line statement is being accumulated."""
        return bool(self._buffer)

    # ------------------------------------------------------------------
    # SQL statements
    # ------------------------------------------------------------------

    def _run_sql(self, text: str) -> str:
        try:
            statements = parse_script(text)
        except ReproError as error:
            return f"error: {error}"
        outputs = []
        for statement in statements:
            try:
                outputs.append(self._run_statement(statement))
            except ReproError as error:
                outputs.append(f"error: {error}")
        return "\n".join(output for output in outputs if output)

    def _run_statement(self, statement) -> str:
        manager = self.manager
        if isinstance(statement, CreateTable):
            manager.create_table(statement.name, statement.columns)
            return f"table {statement.name} created"
        if isinstance(statement, CreateView):
            core = statement.query
            if hasattr(core, "is_aggregate") and core.is_aggregate():
                aggregate = compile_aggregate_view(statement.name, core, manager.db)
                from repro.extensions.aggregates import AggregateScenario

                scenario = AggregateScenario(
                    manager.db, aggregate, counter=manager.counter, ledger=manager.ledger
                )
                scenario.install()
                manager._scenarios[statement.name] = scenario
                return f"aggregate view {statement.name} materialized"
            view = compile_view(statement, manager.db)
            manager.define_view(view.name, view, scenario=self.default_scenario)
            return f"view {view.name} materialized ({self.default_scenario} scenario)"
        if isinstance(statement, (InsertStatement, DeleteStatement, UpdateStatement)):
            txn = UserTransaction(manager.db)
            if isinstance(statement, InsertStatement):
                compile_insert(statement, manager.db, txn)
            elif isinstance(statement, UpdateStatement):
                compile_update(statement, manager.db, txn)
            else:
                compile_delete(statement, manager.db, txn)
            manager.execute(txn)
            return "ok"
        # A query: evaluate and render.  Views are queryable by name,
        # resolving to their materialized tables (possibly stale — use
        # .refresh first for fresh reads).
        expr = compile_query(statement, _QueryCatalog(manager))
        result = manager.db.evaluate(expr, counter=manager.counter)
        return self._render_rows(expr.schema().attributes, result)

    @staticmethod
    def _render_rows(attributes: Iterable[str], bag) -> str:
        rows = [dict(zip(attributes, row)) for row in sorted(bag, key=repr)]
        if not rows:
            return "(empty)"
        return format_table(rows) + f"\n({len(rows)} row{'s' if len(rows) != 1 else ''})"

    # ------------------------------------------------------------------
    # Dot commands
    # ------------------------------------------------------------------

    def _dot_command(self, line: str) -> str:
        parts = line.split()
        command, args = parts[0], parts[1:]
        try:
            handler = getattr(self, f"_cmd_{command[1:]}")
        except AttributeError:
            return f"unknown command {command}; try .help"
        try:
            return handler(*args)
        except TypeError:
            return f"wrong arguments for {command}; try .help"
        except ReproError as error:
            return f"error: {error}"

    def _cmd_help(self) -> str:
        return _HELP.strip()

    def _cmd_quit(self) -> str:
        raise EOFError

    def _cmd_tables(self) -> str:
        rows = [
            {"table": name, "rows": len(self.manager.db[name]),
             "kind": "internal" if self.manager.db.is_internal(name) else "external"}
            for name in sorted(self.manager.db.table_names())
        ]
        return format_table(rows) if rows else "(no tables)"

    def _cmd_views(self) -> str:
        rows = [
            {
                "view": name,
                "scenario": self.manager.scenario(name).tag,
                "stale": self.manager.is_stale(name),
                "rows": len(self.manager.query(name)),
            }
            for name in self.manager.views()
        ]
        return format_table(rows) if rows else "(no views)"

    def _cmd_scenario(self, name: str) -> str:
        from repro.warehouse.manager import SCENARIOS

        if name not in SCENARIOS:
            return f"unknown scenario {name!r}; pick one of {sorted(SCENARIOS)}"
        self.default_scenario = name
        return f"new views will use the {name} scenario"

    def _cmd_refresh(self, view: str) -> str:
        self.manager.refresh(view)
        return f"{view} refreshed"

    def _cmd_propagate(self, view: str) -> str:
        self.manager.propagate(view)
        return f"{view} propagated"

    def _cmd_stale(self, view: str) -> str:
        return "stale" if self.manager.is_stale(view) else "fresh"

    def _cmd_stats(self) -> str:
        counter = self.manager.counter
        lines = [f"tuple ops: {counter.tuples_out}  (evaluations: {counter.evaluations})"]
        for view in self.manager.views():
            seconds = self.manager.downtime_seconds(view)
            lines.append(f"view {view}: downtime {seconds * 1000:.3f} ms")
        return "\n".join(lines)

    def _cmd_governor(self, action: str = "") -> str:
        """Engine-governor status: ladder, active tier, breaker states."""
        db = self.manager.db
        if action == "on":
            governor = db.enable_governor()
            return f"governor enabled (ladder: {' → '.join(governor.ladder)})"
        if action:
            return "usage: .governor [on]"
        governor = db.governor
        if governor is None:
            return "(ungoverned — `.governor on` enables the fallback ladder)"
        snapshot = governor.snapshot()
        header = (
            f"mode {snapshot['mode']}, active tier {snapshot['active_tier']} "
            f"(ladder: {' → '.join(governor.ladder)})"
        )
        if not snapshot["breakers"]:
            return header + "\n(no breakers — the interpreted floor never demotes)"
        rows = [
            {"tier": tier, "breaker": info["state"], "trips": info["trips"]}
            for tier, info in snapshot["breakers"].items()
        ]
        return header + "\n" + format_table(rows)

    def _cmd_plan(self, name: str) -> str:
        """Show the view's post-update incremental queries (▼/▲)."""
        from repro.core.differential import post_update_delta
        from repro.core.scenarios import BaseLogScenario, DiffTableScenario

        scenario = self.manager.scenario(name)
        base = getattr(scenario, "base", scenario)  # aggregates wrap a base
        if not isinstance(base, (BaseLogScenario, DiffTableScenario)) or not hasattr(base, "log"):
            return f"view {name} has no log-based refresh plan (scenario {scenario.tag})"
        view_delete, view_insert = post_update_delta(base.log, base.view.query)
        return (
            f"refresh plan for {name} (evaluated post-update, applied as a patch):\n"
            f"  delete ▼(L,Q) = {view_delete}\n"
            f"  insert ▲(L,Q) = {view_insert}"
        )

    def _cmd_analyze(self, name: str) -> str:
        """Static analysis: SP class, maintenance footprint, self-maintainability."""
        from repro.core.analysis import (
            is_select_project,
            is_self_maintainable,
            maintenance_footprint,
        )

        scenario = self.manager.scenario(name)
        base = getattr(scenario, "base", scenario)
        view = base.view
        footprint = sorted(maintenance_footprint(view, self.manager.db))
        lines = [
            f"view {name}:",
            f"  select-project class : {'yes' if is_select_project(view.query) else 'no'}",
            f"  self-maintainable    : {'yes' if is_self_maintainable(view, self.manager.db) else 'no'}",
            f"  refresh reads tables : {footprint if footprint else '(none — log only)'}",
        ]
        return "\n".join(lines)

    def _cmd_save(self, path: str) -> str:
        from repro.warehouse.persistence import save_warehouse

        save_warehouse(self.manager, path)
        return f"saved to {path} ({len(self.manager.views())} views)"

    def _cmd_open(self, path: str) -> str:
        from repro.warehouse.persistence import load_warehouse

        self.manager = load_warehouse(path)
        self.default_scenario = "combined"
        return (
            f"opened {path} ({len(self.manager.db.table_names())} tables, "
            f"{len(self.manager.views())} views reattached)"
        )


def run_stream(shell: WarehouseShell, lines: Iterable[str], out) -> None:
    for line in lines:
        try:
            output = shell.handle_line(line)
        except EOFError:
            return
        if output:
            print(output, file=out)


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``python -m repro [lint …| recover FILE | trace … | serve … | script.sql …]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "recover":
        from repro.robustness.recovery import main as recover_main

        return recover_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.render import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.demo import main as serve_main

        return serve_main(argv[1:])
    shell = WarehouseShell()
    if argv:
        for path in argv:
            with open(path) as handle:
                run_stream(shell, handle, sys.stdout)
        return 0
    print("repro warehouse shell — .help for commands, .quit to exit")
    while True:
        prompt = "  ...> " if shell.pending else "repro> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        try:
            output = shell.handle_line(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
