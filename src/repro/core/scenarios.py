"""The view-maintenance scenarios and their algorithms (Figure 3).

Four scenario classes, one per invariant of Figure 1:

* :class:`ImmediateScenario` — ``INV_IM``; every user transaction is
  extended with the incremental view update (pre-update deltas).
* :class:`BaseLogScenario` — ``INV_BL``; transactions only extend the
  log, ``refresh`` applies post-update deltas and clears the log.
* :class:`DiffTableScenario` — ``INV_DT``; transactions fold pre-update
  deltas into the view differential tables, ``refresh`` just applies
  them (minimal work under the view's write lock).
* :class:`CombinedScenario` — ``INV_C``; transactions only extend the
  log, ``propagate`` moves log contents into the differential tables
  *without locking the view*, and ``partial_refresh`` applies the
  differential tables under the lock.  This combination achieves both
  low per-transaction overhead and low view downtime (Section 5.3).

Each ``makesafe``/refresh operation is expressed as a
:class:`~repro.core.plan.MaintenancePlan` whose table updates run as
*patches* — delta-proportional indexed updates — so the cost accounting
matches the paper's argument: log extension costs O(|ΔT|), applying
differential tables costs O(|∇MV| + |ΔMV|), and only the computation of
incremental queries pays join-shaped costs.

All maintenance work is accounted in a
:class:`~repro.algebra.evaluation.CostCounter` and all view-locking
critical sections in a :class:`~repro.storage.locks.LockLedger`, so the
experiments can compare overhead and downtime across scenarios.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod

from repro import obs
from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr, Literal, Monus, min_expr
from repro.core import invariants
from repro.core.differential import post_update_delta, pre_update_delta
from repro.core.logs import Log
from repro.core.plan import MaintenancePlan
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import InvariantViolation
from repro.robustness.faults import fault_point
from repro.storage.database import Database
from repro.storage.locks import LockLedger

__all__ = [
    "Scenario",
    "ImmediateScenario",
    "BaseLogScenario",
    "DiffTableScenario",
    "CombinedScenario",
]


class Scenario(ABC):
    """Common machinery for one materialized view under one scenario."""

    #: Short scenario tag matching the paper's invariant subscripts.
    tag: str = "?"

    def __init__(
        self,
        db: Database,
        view: ViewDefinition,
        *,
        counter: CostCounter | None = None,
        ledger: LockLedger | None = None,
        strict: bool = False,
    ) -> None:
        self.db = db
        self.view = view
        self.counter = counter if counter is not None else CostCounter()
        self.ledger = ledger if ledger is not None else LockLedger()
        #: When True, install-time lint findings raise instead of warn.
        self.strict = strict
        self._installed = False
        #: Partition-pruned fast path (see :mod:`repro.core.partition_refresh`);
        #: set at install time by the deferred scenarios when the database
        #: is partitioned and the maintenance plan is prunable.
        self._pmaint = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _lint_on_install(self) -> None:
        """Run the static analyzer over the view definition.

        Warn-by-default: findings are emitted as
        :class:`~repro.analysis.diagnostics.AnalysisWarning`; with
        ``strict=True`` they raise :class:`~repro.errors.AnalysisError`.
        """
        from repro.analysis.diagnostics import AnalysisWarning
        from repro.analysis.lint import lint_view

        report = lint_view(self.view, self.db, properties=False)
        # RVM401: maintenance state on this database is persistent, but
        # no write-ahead journal guards it — a crash inside refresh /
        # propagate / makesafe can leave MV, logs, and differentials
        # mutually inconsistent on disk (see repro.robustness).
        if getattr(self.db, "durable_origin", None) is not None and not getattr(self.db, "journaled", False):
            from repro.analysis.diagnostics import Severity

            report.add(
                "RVM401",
                Severity.WARNING,
                f"view {self.view.name!r} is installed on persistent database "
                f"{self.db.durable_origin} without journaling; use "
                "repro.robustness.DurableWarehouse (or accept that a crash during "
                "maintenance leaves the snapshot unrecoverable)",
                path=self.view.name,
            )
        if self.strict:
            report.raise_if_failed(context=f"install of view {self.view.name!r}")
        else:
            for diagnostic in report.errors + report.warnings:
                warnings.warn(diagnostic.format(), AnalysisWarning, stacklevel=4)

    def install(self) -> None:
        """Create and initialize ``MV`` and the scenario's auxiliary tables."""
        if self._installed:
            return
        self._lint_on_install()
        # Compile the view query and pre-build the indexes its plan can
        # use, so every later delta evaluation probes instead of scans
        # (a no-op under the interpreted oracle).
        self.db.prime(self.view.query, counter=self.counter)
        initial = self.db.evaluate(self.view.query, counter=self.counter)
        self.db.create_table(self.view.mv_table, self.view.schema, rows=initial, internal=True)
        self._install_auxiliary()
        self._installed = True

    def _install_auxiliary(self) -> None:
        """Create scenario-specific auxiliary tables (default: none)."""

    def uninstall(self) -> None:
        """Drop ``MV`` and every auxiliary table this scenario created."""
        if not self._installed:
            return
        self._uninstall_auxiliary()
        self.db.drop_table(self.view.mv_table)
        self._installed = False

    def _uninstall_auxiliary(self) -> None:
        """Drop scenario-specific auxiliary tables (default: none)."""

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @abstractmethod
    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """``makesafe[T]``: the plan combining T with auxiliary updates."""

    def execute(self, txn: UserTransaction) -> None:
        """Run ``makesafe[T]`` against the database."""
        with obs.span("makesafe", view=self.view.name, scenario=self.tag, counter=self.counter):
            self.make_safe(txn).execute(self.db, counter=self.counter)
            self.post_execute()
        self._note_stale()

    def post_execute(self) -> None:
        """Optional normalization run after each transaction (default: none)."""

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    @abstractmethod
    def refresh(self) -> None:
        """Bring ``MV`` up to date: afterwards :math:`Q \\equiv MV`."""

    def _refresh_lock(self, label: str):
        """The exclusive section guarding reader-visible ``MV`` state.

        Every refresh-family operation takes this lock around its ``MV``
        reads and writes; :meth:`_refresh_lock_resources` is the static
        declaration of the same fact, consumed by
        ``maintenance_protocol()``.  Keeping acquisition and declaration
        on one seam means the concurrency analyzer and the runtime code
        cannot silently drift apart.
        """
        return self.ledger.exclusive(self.view.mv_table, label=label, counter=self.counter)

    def _refresh_lock_resources(self) -> frozenset[str]:
        """Resources :meth:`_refresh_lock` holds exclusively."""
        return frozenset((self.view.mv_table,))

    def maintenance_protocol(self) -> tuple:
        """This scenario's operations as inferred effect sets.

        Returns :class:`~repro.analysis.effects.OpEffects` entries built
        from the same delta expressions and plan constructors the
        runtime operations use, for the Section 5.3 lock-discipline
        checks in :mod:`repro.analysis.concurrency_check`.
        """
        return ()

    def read_view(self) -> Bag:
        """The current contents of ``MV`` (what a reader sees)."""
        return self.db[self.view.mv_table]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @abstractmethod
    def invariant_holds(self) -> bool:
        """Check this scenario's Figure 1 invariant (full recomputation)."""

    def check_invariant(self) -> None:
        """Raise :class:`InvariantViolation` when the invariant is broken."""
        if not self.invariant_holds():
            raise InvariantViolation(
                f"scenario {self.tag}: invariant violated for view {self.view.name!r}"
            )

    def is_consistent(self) -> bool:
        """Whether ``MV`` currently equals ``Q`` (i.e. no refresh pending)."""
        return invariants.immediate_invariant(self.db, self.view)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def staleness_entries(self) -> int:
        """Unabsorbed update entries pending for ``MV`` right now.

        The staleness unit of Section 5.3's second axis: recorded log
        tuples plus pending differential rows, depending on the
        invariant.  Immediate maintenance is never stale.
        """
        return 0

    def _note_stale(self) -> None:
        """Record post-transaction staleness on the active accountant."""
        if obs.telemetry_enabled():
            obs.accountant().mark_stale(self.view.name, pending_entries=self.staleness_entries())

    def _note_fresh(self, residual_entries: int | None = None) -> None:
        """Record a completed refresh (``residual_entries`` left behind)."""
        if obs.telemetry_enabled():
            residual = self.staleness_entries() if residual_entries is None else residual_entries
            obs.accountant().mark_fresh(self.view.name, residual_entries=residual)
            obs.metric_inc("refreshes")

    # Shared helpers ----------------------------------------------------

    def _mv_ref(self):
        return self.db.ref(self.view.mv_table)


def _log_delta_task(scenario, *, order: int):
    """Build a :class:`~repro.exec.group.GroupTask` for a log-driven scenario.

    The shareable *compute* half evaluates the post-update deltas of
    Figure 2; the cache key renames the per-view log tables to canonical
    placeholders and digests their contents, so structurally identical
    views over identical recorded changes share one evaluation per
    group-refresh epoch.  The *apply* half is scenario-specific
    (``scenario._apply_group_deltas``).
    """
    from repro.analysis.effects import EffectSet, plan_effects, read_footprint
    from repro.exec.group import GroupTask, evaluate_delta_pair, subplan_fingerprint

    view = scenario.view
    log = scenario.log
    view_delete, view_insert = post_update_delta(log, view.query)
    rename = log.canonical_rename()
    base = tuple(sorted(view.base_tables()))

    # Independently inferred footprint: the compiled delta plans' read
    # sets plus the apply plans' structural effects — *not* the declared
    # reads/writes below, so a drifted declaration is detectable (RVM604).
    inferred = EffectSet(reads=read_footprint(scenario.db, view_delete, view_insert))
    for apply_plan in scenario._group_apply_plans(view_delete, view_insert):
        inferred = inferred | plan_effects(scenario.db, apply_plan)

    def key():
        stamps = tuple((table, scenario.db.version_of(table)) for table in base)
        return (
            "log",
            subplan_fingerprint(view_delete, rename),
            subplan_fingerprint(view_insert, rename),
            stamps,
            log.content_digests(),
        )

    def compute(counter):
        return evaluate_delta_pair(scenario.db, view_delete, view_insert, counter)

    def prime():
        scenario.db.prime(view_delete, view_insert, counter=scenario.counter)

    return GroupTask(
        name=view.name,
        order=order,
        key=key,
        compute=compute,
        apply=scenario._apply_group_deltas,
        reads=frozenset(base) | frozenset(log.table_names()),
        writes=scenario._group_writes(),
        prime=prime,
        inferred_reads=inferred.reads,
        inferred_writes=inferred.writes,
    )


class ImmediateScenario(Scenario):
    """Immediate maintenance: ``INV_IM`` (Section 3.2).

    ``makesafe_IM[T]`` augments ``T`` with
    :math:`MV := (MV \\dot{-} \\nabla(T,Q)) \\uplus \\Delta(T,Q)`, the
    incremental queries being evaluated in the pre-update state — which
    is exactly what simultaneous-assignment execution provides.
    """

    tag = "IM"

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        txn = txn.weakly_minimal()
        plan = MaintenancePlan(patches=txn.patches())
        nabla, delta = pre_update_delta(txn, self.db, self.view.query)
        plan.add_patch(self.view.mv_table, nabla, delta)
        return plan

    def refresh(self) -> None:
        """No-op: the view is consistent after every transaction."""

    def maintenance_protocol(self) -> tuple:
        from repro.analysis.effects import EffectSet, OpEffects, Step, read_footprint

        mv = self.view.mv_table
        # makesafe_IM patches MV inside the user transaction's own
        # atomicity, so it holds no maintenance lock — and needs none.
        makesafe = OpEffects(
            op="makesafe",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step(
                    "mv_patch",
                    EffectSet(
                        reads=read_footprint(self.db, self.view.query) | {mv},
                        writes=frozenset((mv,)),
                    ),
                ),
            ),
        )
        return (makesafe,)

    def invariant_holds(self) -> bool:
        return invariants.immediate_invariant(self.db, self.view)


class BaseLogScenario(Scenario):
    """Deferred maintenance with base logs: ``INV_BL`` (Section 3.3)."""

    tag = "BL"

    def __init__(self, db, view, *, counter=None, ledger=None, strict: bool = False) -> None:
        super().__init__(db, view, counter=counter, ledger=ledger, strict=strict)
        self.log = Log(db, view.base_tables(), owner=view.name)

    def _install_auxiliary(self) -> None:
        self.log.install()
        self._prime_refresh_path()
        from repro.core.partition_refresh import PartitionedMaintenance

        self._pmaint = PartitionedMaintenance.probe(self)

    def _prime_refresh_path(self) -> None:
        """Compile the refresh deltas and pre-build their indexes *now*.

        The log tables are still empty at install time, so the one-time
        ``index_build`` scans are free; each log index is then maintained
        incrementally through the per-transaction log patches, and every
        refresh finds a current index to probe.
        """
        view_delete, view_insert = post_update_delta(self.log, self.view.query)
        self.db.prime(view_delete, view_insert, counter=self.counter)

    def _uninstall_auxiliary(self) -> None:
        self.log.uninstall()

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """``makesafe_BL[T]``: T plus the weakly-minimal log extension."""
        txn = txn.weakly_minimal()
        plan = MaintenancePlan(patches=txn.patches())
        for table, (delete, insert) in self.log.extend_patches(txn).items():
            plan.add_patch(table, delete, insert)
        return plan

    def refresh(self) -> None:
        """``refresh_BL``: apply post-update deltas to ``MV``, clear the log.

        The incremental queries are computed here, under the view's
        exclusive lock — this is why refresh time can be high in this
        scenario (motivating ``INV_C``).

        On a partitioned database with a prunable plan, the whole
        operation is delegated to the affected-partition fast path.
        """
        if self._pmaint is not None and self._pmaint.refresh_log(self):
            return
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=self.tag,
            log_watermark=self.log.recorded_changes() if obs.telemetry_enabled() else 0,
            counter=self.counter,
        ):
            view_delete, view_insert = post_update_delta(self.log, self.view.query)
            plan = MaintenancePlan(assignments=self.log.clear_assignments())
            plan.add_patch(self.view.mv_table, view_delete, view_insert)
            with self._refresh_lock("refresh_BL"):
                fault_point("crash-mid-refresh")
                plan.execute(self.db, counter=self.counter)
        self._note_fresh(0)

    def compact_log(self) -> None:
        """Net-effect log compaction before a (group) refresh.

        Cancels :math:`\\blacktriangledown R \\min \\blacktriangle R` from
        both log sides (sound under Lemma 4's weak minimality; preserves
        ``PAST(L, Q)`` exactly), so the refresh deltas scale with the net
        change rather than the raw churn.
        """
        self.log.compact(counter=self.counter)

    def group_refresh_task(self, *, order: int):
        """This view's contribution to a group-refresh epoch."""
        return _log_delta_task(self, order=order)

    def partitioned_group_tasks(self, *, order: int, hot_threshold: int = 64):
        """Partition-chunked group tasks, or ``None`` when ineligible.

        On a partitioned database with a chunk-safe plan this replaces
        the single whole-log task with one read-only compute task per
        affected partition chunk (declared under partition-granular
        resources, so independent chunks evaluate in parallel) plus one
        finalize task running the normal group apply.
        """
        if self._pmaint is None:
            return None
        return self._pmaint.chunked_group_tasks(
            self, order=order, hot_threshold=hot_threshold
        )

    def _group_writes(self) -> frozenset[str]:
        return frozenset((self.view.mv_table, *self.log.table_names()))

    def _group_apply_plans(self, view_delete: Expr, view_insert: Expr) -> tuple[MaintenancePlan, ...]:
        """The apply-side plans of a group refresh, for effect inference.

        Structurally identical to the plan :meth:`_apply_group_deltas`
        builds (the runtime version substitutes evaluated delta bags as
        literals, which have empty footprints — the symbolic deltas here
        are a superset).
        """
        plan = MaintenancePlan(assignments=self.log.clear_assignments())
        plan.add_patch(self.view.mv_table, view_delete, view_insert)
        return (plan,)

    def maintenance_protocol(self) -> tuple:
        from repro.analysis.effects import EffectSet, OpEffects, Step, plan_effects, read_footprint

        log_tables = frozenset(self.log.table_names())
        makesafe = OpEffects(
            op="makesafe",
            view=self.view.name,
            scenario=self.tag,
            steps=(Step("log_extend", EffectSet(reads=log_tables, writes=log_tables)),),
        )
        view_delete, view_insert = post_update_delta(self.log, self.view.query)
        plan = MaintenancePlan(assignments=self.log.clear_assignments())
        plan.add_patch(self.view.mv_table, view_delete, view_insert)
        locked = self._refresh_lock_resources()
        refresh = OpEffects(
            op="refresh",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step(
                    "delta_compute",
                    EffectSet(reads=read_footprint(self.db, view_delete, view_insert)),
                    locks=locked,
                ),
                Step("apply", plan_effects(self.db, plan), locks=locked),
            ),
        )
        return (makesafe, refresh)

    def _apply_group_deltas(self, deltas: tuple[Bag, Bag]) -> None:
        """The ``refresh_BL`` tail for pre-evaluated delta bags."""
        delete_bag, insert_bag = deltas
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=self.tag,
            group=True,
            delta_rows=len(delete_bag) + len(insert_bag),
            counter=self.counter,
        ):
            with self._refresh_lock("refresh_BL"):
                fault_point("crash-mid-refresh")
                if self._pmaint is not None:
                    self.db.apply_parts(
                        {self.view.mv_table: (delete_bag, insert_bag)},
                        clears=self._pmaint.log_clears(),
                        counter=self.counter,
                    )
                else:
                    plan = MaintenancePlan(assignments=self.log.clear_assignments())
                    plan.add_patch(
                        self.view.mv_table,
                        Literal(delete_bag, self.view.schema),
                        Literal(insert_bag, self.view.schema),
                    )
                    # The bags were already evaluated (and counted) in the
                    # task's compute step; this plan only re-emits them as
                    # literals.
                    plan.execute(self.db)
        self._note_fresh(0)

    def staleness_entries(self) -> int:
        return self.log.recorded_changes()

    def invariant_holds(self) -> bool:
        return invariants.base_log_invariant(self.db, self.view, self.log) and self.log.is_weakly_minimal()


class DiffTableScenario(Scenario):
    """Deferred maintenance with view differential tables: ``INV_DT`` (Section 3.4).

    With ``strong_minimality=True``, a normalization step after each
    fold removes the common part of :math:`\\triangledown MV` and
    :math:`\\triangle MV` (no tuple both deleted and reinserted),
    shrinking refresh work further (Section 5.3).
    """

    tag = "DT"

    def __init__(
        self, db, view, *, counter=None, ledger=None, strong_minimality: bool = False, strict: bool = False
    ) -> None:
        super().__init__(db, view, counter=counter, ledger=ledger, strict=strict)
        self.strong_minimality = strong_minimality

    def _install_auxiliary(self) -> None:
        self.db.create_table(self.view.dt_delete_table, self.view.schema, internal=True)
        self.db.create_table(self.view.dt_insert_table, self.view.schema, internal=True)

    def _uninstall_auxiliary(self) -> None:
        self.db.drop_table(self.view.dt_delete_table)
        self.db.drop_table(self.view.dt_insert_table)

    def _empty_literal(self) -> Literal:
        return Literal(Bag.empty(), self.view.schema)

    def _fold_into_dt(self, plan: MaintenancePlan, delete: Expr, insert: Expr) -> None:
        """Fold a ``(delete, insert)`` view delta into ∇MV/ΔMV (Lemma 3).

        .. math::

            \\triangledown MV := \\triangledown MV \\uplus
                (del \\dot{-} \\triangle MV), \\qquad
            \\triangle MV := (\\triangle MV \\dot{-} del) \\uplus ins
        """
        dt_insert = self.db.ref(self.view.dt_insert_table)
        plan.add_patch(self.view.dt_delete_table, self._empty_literal(), Monus(delete, dt_insert))
        plan.add_patch(self.view.dt_insert_table, delete, insert)

    def post_execute(self) -> None:
        """Strong-minimality normalization: cancel ∇MV ∩ ΔMV (Section 4.1)."""
        if not self.strong_minimality:
            return
        common = min_expr(self.db.ref(self.view.dt_delete_table), self.db.ref(self.view.dt_insert_table))
        plan = MaintenancePlan()
        plan.add_patch(self.view.dt_delete_table, common, self._empty_literal())
        plan.add_patch(self.view.dt_insert_table, common, self._empty_literal())
        plan.execute(self.db, counter=self.counter)

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """``makesafe_DT[T]``: T plus folding of pre-update deltas into ∇MV/ΔMV."""
        txn = txn.weakly_minimal()
        plan = MaintenancePlan(patches=txn.patches())
        nabla, delta = pre_update_delta(txn, self.db, self.view.query)
        self._fold_into_dt(plan, nabla, delta)
        return plan

    def _apply_dt_plan(self) -> MaintenancePlan:
        """``refresh_DT``'s plan: apply and clear the differentials."""
        dt_delete = self.db.ref(self.view.dt_delete_table)
        dt_insert = self.db.ref(self.view.dt_insert_table)
        plan = MaintenancePlan()
        plan.add_patch(self.view.mv_table, dt_delete, dt_insert)
        plan.add_assignment(self.view.dt_delete_table, self._empty_literal())
        plan.add_assignment(self.view.dt_insert_table, self._empty_literal())
        return plan

    def _apply_dt(self) -> None:
        """Apply-and-clear the differentials, partition-at-a-time when possible."""
        if self._pmaint is not None:
            self._pmaint.apply_differentials(self)
        else:
            self._apply_dt_plan().execute(self.db, counter=self.counter)

    def refresh(self) -> None:
        """``refresh_DT``: apply precomputed differentials — minimal downtime."""
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=self.tag,
            delta_rows=self._pending_dt_rows() if obs.telemetry_enabled() else 0,
            counter=self.counter,
        ):
            with self._refresh_lock("refresh_DT"):
                fault_point("crash-mid-refresh")
                self._apply_dt()
        self._note_fresh(0)

    def _pending_dt_rows(self) -> int:
        return len(self.db[self.view.dt_delete_table]) + len(self.db[self.view.dt_insert_table])

    def maintenance_protocol(self) -> tuple:
        from repro.analysis.effects import EffectSet, OpEffects, Step, plan_effects, read_footprint

        dt_tables = frozenset((self.view.dt_delete_table, self.view.dt_insert_table))
        makesafe = OpEffects(
            op="makesafe",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step(
                    "dt_fold",
                    EffectSet(
                        reads=read_footprint(self.db, self.view.query) | dt_tables,
                        writes=dt_tables,
                    ),
                ),
            ),
        )
        refresh = OpEffects(
            op="refresh",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step(
                    "apply",
                    plan_effects(self.db, self._apply_dt_plan()),
                    locks=self._refresh_lock_resources(),
                ),
            ),
        )
        return (makesafe, refresh)

    def staleness_entries(self) -> int:
        return self._pending_dt_rows()

    def invariant_holds(self) -> bool:
        holds = invariants.diff_table_invariant(self.db, self.view)
        return holds and invariants.dt_minimality_invariant(self.db, self.view)


class CombinedScenario(DiffTableScenario):
    """Deferred maintenance with logs *and* differential tables: ``INV_C`` (Section 3.5).

    * ``makesafe_C[T] = makesafe_BL[T]`` — per-transaction overhead is just
      the log extension.
    * ``propagate_C`` moves the log's changes into ∇MV/ΔMV (computing the
      post-update deltas *outside* any view lock) and clears the log.
    * ``partial_refresh_C = refresh_DT`` — applies the differentials under
      the lock; afterwards ``MV`` equals ``PAST(L, Q)``.
    * ``refresh_C`` is either propagate-then-partial-refresh or
      partial-refresh-then-``refresh_BL``.
    """

    tag = "C"

    def __init__(
        self, db, view, *, counter=None, ledger=None, strong_minimality: bool = False, strict: bool = False
    ) -> None:
        super().__init__(
            db, view, counter=counter, ledger=ledger, strong_minimality=strong_minimality, strict=strict
        )
        self.log = Log(db, view.base_tables(), owner=view.name)

    def _install_auxiliary(self) -> None:
        super()._install_auxiliary()
        self.log.install()
        # Same rationale as BaseLogScenario: build log-table indexes for
        # the propagate deltas while the logs are empty.
        view_delete, view_insert = post_update_delta(self.log, self.view.query)
        self.db.prime(view_delete, view_insert, counter=self.counter)
        from repro.core.partition_refresh import PartitionedMaintenance

        self._pmaint = PartitionedMaintenance.probe(self)

    def _uninstall_auxiliary(self) -> None:
        super()._uninstall_auxiliary()
        self.log.uninstall()

    def make_safe(self, txn: UserTransaction) -> MaintenancePlan:
        """``makesafe_C[T]`` — identical to ``makesafe_BL[T]``."""
        txn = txn.weakly_minimal()
        plan = MaintenancePlan(patches=txn.patches())
        for table, (delete, insert) in self.log.extend_patches(txn).items():
            plan.add_patch(table, delete, insert)
        return plan

    def post_execute(self) -> None:
        """Transactions only touch the log; differentials are untouched."""

    def _propagate_deltas(self) -> tuple[Expr, Expr]:
        """Post-update deltas over the log, pruned to affected partitions.

        On a partitioned database with a prunable plan, base-table
        references in the deltas are replaced by restrictions to the
        partitions holding this epoch's affected keys; otherwise (or when
        a reference unexpectedly fails to prune) the whole-table
        expressions are returned unchanged.
        """
        if self._pmaint is not None:
            pending = self._pmaint.pending_deltas()
            keys = self._pmaint.affected_keys(pending) if pending else {}
            pruned = self._pmaint.pruned_deltas(keys, counter=self.counter)
            if pruned is not None:
                return pruned
        return post_update_delta(self.log, self.view.query)

    def propagate(self) -> None:
        """``propagate_C``: log → differential tables, no view lock taken."""
        with obs.span(
            "propagate",
            view=self.view.name,
            scenario=self.tag,
            log_watermark=self.log.recorded_changes() if obs.telemetry_enabled() else 0,
            counter=self.counter,
        ):
            view_delete, view_insert = self._propagate_deltas()
            plan = MaintenancePlan(assignments=self.log.clear_assignments())
            self._fold_into_dt(plan, view_delete, view_insert)
            fault_point("crash-mid-propagate")
            plan.execute(self.db, counter=self.counter)
            super().post_execute()  # strong-minimality normalization, if enabled
        if obs.telemetry_enabled():
            obs.metric_inc("propagations")

    def partial_refresh(self) -> None:
        """``partial_refresh_C``: apply differentials; ``MV`` becomes ``PAST(L,Q)``."""
        with obs.span(
            "partial_refresh",
            view=self.view.name,
            scenario=self.tag,
            delta_rows=self._pending_dt_rows() if obs.telemetry_enabled() else 0,
            counter=self.counter,
        ):
            with self._refresh_lock("partial_refresh_C"):
                fault_point("crash-mid-refresh")
                self._apply_dt()
        # Policy 2 leaves the still-unpropagated log behind: the view is
        # a bounded k ticks out of date, never fully current.
        self._note_fresh(self.log.recorded_changes() if obs.telemetry_enabled() else 0)

    def refresh(self, *, order: str = "propagate_first") -> None:
        """``refresh_C``: full refresh via either composition of Figure 3.

        The *entire* composed refresh runs under the view's exclusive
        lock — this is the downtime Policy 1 pays.  Its advantage over
        ``refresh_BL`` is that periodic (unlocked) propagation already
        absorbed all but the last ``k`` time units of the log, so the
        in-lock delta computation covers a short log only.
        """
        if order not in ("propagate_first", "partial_first"):
            raise ValueError(f"unknown refresh order: {order!r}")
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=self.tag,
            order=order,
            log_watermark=self.log.recorded_changes() if obs.telemetry_enabled() else 0,
            counter=self.counter,
        ), self._refresh_lock("refresh_C"):
            fault_point("crash-mid-refresh")
            if order == "propagate_first":
                view_delete, view_insert = self._propagate_deltas()
                propagate_plan = MaintenancePlan(assignments=self.log.clear_assignments())
                self._fold_into_dt(propagate_plan, view_delete, view_insert)
                propagate_plan.execute(self.db, counter=self.counter)
                self._apply_dt()
            else:
                self._apply_dt()
                # refresh_BL tail: deltas for the remaining log.
                view_delete, view_insert = self._propagate_deltas()
                tail = MaintenancePlan(assignments=self.log.clear_assignments())
                tail.add_patch(self.view.mv_table, view_delete, view_insert)
                tail.execute(self.db, counter=self.counter)
        self._note_fresh(0)

    def compact_log(self) -> None:
        """Net-effect log compaction before a (group) refresh (see BL)."""
        self.log.compact(counter=self.counter)

    def group_refresh_task(self, *, order: int):
        """This view's contribution to a group-refresh epoch.

        The compute half is identical to the BL task (post-update deltas
        over the log), so a C view and a BL view with the same query and
        the same recorded changes share one cache entry; only the apply
        differs (fold through the differential tables).
        """
        return _log_delta_task(self, order=order)

    def partitioned_group_tasks(self, *, order: int, hot_threshold: int = 64):
        """Partition-chunked group tasks, or ``None`` when ineligible (see BL)."""
        if self._pmaint is None:
            return None
        return self._pmaint.chunked_group_tasks(
            self, order=order, hot_threshold=hot_threshold
        )

    def _group_writes(self) -> frozenset[str]:
        return frozenset(
            (
                self.view.mv_table,
                self.view.dt_delete_table,
                self.view.dt_insert_table,
                *self.log.table_names(),
            )
        )

    def _group_apply_plans(self, view_delete: Expr, view_insert: Expr) -> tuple[MaintenancePlan, ...]:
        """The apply-side plans of a group refresh, for effect inference.

        Mirrors :meth:`_apply_group_deltas`: the propagate-shaped fold
        through the differential tables, then the differential apply.
        """
        propagate_plan = MaintenancePlan(assignments=self.log.clear_assignments())
        self._fold_into_dt(propagate_plan, view_delete, view_insert)
        return (propagate_plan, self._apply_dt_plan())

    def maintenance_protocol(self) -> tuple:
        from repro.analysis.effects import EffectSet, OpEffects, Step, plan_effects, read_footprint

        log_tables = frozenset(self.log.table_names())
        makesafe = OpEffects(
            op="makesafe",
            view=self.view.name,
            scenario=self.tag,
            steps=(Step("log_extend", EffectSet(reads=log_tables, writes=log_tables)),),
        )
        view_delete, view_insert = post_update_delta(self.log, self.view.query)
        delta_reads = EffectSet(reads=read_footprint(self.db, view_delete, view_insert))
        propagate_plan = MaintenancePlan(assignments=self.log.clear_assignments())
        self._fold_into_dt(propagate_plan, view_delete, view_insert)
        propagate_effects = plan_effects(self.db, propagate_plan)
        apply_effects = plan_effects(self.db, self._apply_dt_plan())
        locked = self._refresh_lock_resources()
        # propagate_C holds no lock by design: it reads base/log tables
        # and writes only maintenance-private differentials — never MV.
        propagate = OpEffects(
            op="propagate",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step("delta_compute", delta_reads),
                Step("dt_fold", propagate_effects),
            ),
        )
        partial_refresh = OpEffects(
            op="partial_refresh",
            view=self.view.name,
            scenario=self.tag,
            steps=(Step("apply", apply_effects, locks=locked),),
        )
        refresh = OpEffects(
            op="refresh",
            view=self.view.name,
            scenario=self.tag,
            steps=(
                Step("delta_compute", delta_reads, locks=locked),
                Step("dt_fold", propagate_effects, locks=locked),
                Step("apply", apply_effects, locks=locked),
            ),
        )
        return (makesafe, propagate, partial_refresh, refresh)

    def _apply_group_deltas(self, deltas: tuple[Bag, Bag]) -> None:
        """The ``refresh_C`` (propagate-first) tail for pre-evaluated deltas."""
        delete_bag, insert_bag = deltas
        lit_delete = Literal(delete_bag, self.view.schema)
        lit_insert = Literal(insert_bag, self.view.schema)
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=self.tag,
            group=True,
            delta_rows=len(delete_bag) + len(insert_bag),
            counter=self.counter,
        ):
            with self._refresh_lock("refresh_C"):
                fault_point("crash-mid-refresh")
                propagate_plan = MaintenancePlan(assignments=self.log.clear_assignments())
                self._fold_into_dt(propagate_plan, lit_delete, lit_insert)
                propagate_plan.execute(self.db, counter=self.counter)
                self._apply_dt()
        self._note_fresh(0)

    def staleness_entries(self) -> int:
        return self.log.recorded_changes() + self._pending_dt_rows()

    def invariant_holds(self) -> bool:
        holds = invariants.combined_invariant(self.db, self.view, self.log)
        holds = holds and invariants.dt_minimality_invariant(self.db, self.view)
        return holds and self.log.is_weakly_minimal()
