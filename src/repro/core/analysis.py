"""Static analysis of view definitions.

Section 1.2 notes that select-project views are *self-maintainable*
[GJM96]: "such views can be maintained without looking at base tables",
which is why earlier deferred-maintenance work restricted to them never
met the state bug.  This module makes that observation executable:

* :func:`is_select_project` — syntactic membership in the SP class;
* :func:`maintenance_footprint` — the set of base tables the
  *post-update incremental queries* actually read.  For SP views the
  footprint is empty (refresh touches only the log); for joins it
  contains the joined tables; for monus views both operands.
* :func:`is_self_maintainable` — empty footprint.

The footprint is computed from the real differential rewrite, not a
re-derivation, so it is exact by construction: whatever tables the
deltas mention are exactly the tables refresh will scan.
"""

from __future__ import annotations

from repro.algebra.expr import Expr, Literal, MapProject, Project, Select, TableRef
from repro.core import naming
from repro.core.differential import differentiate
from repro.core.substitution import FactoredSubstitution
from repro.core.views import ViewDefinition
from repro.storage.database import Database

__all__ = [
    "is_select_project",
    "maintenance_footprint",
    "is_self_maintainable",
    "relevant_tables",
]


def is_select_project(expr: Expr) -> bool:
    """Whether ``expr`` is a select-project query over a single table.

    Duplicate elimination is allowed on top (it is still maintainable
    from deltas plus the view itself in the original literature, but it
    breaks *delta-only* self-maintenance, so it is excluded here).
    """
    node = expr
    while isinstance(node, (Select, Project, MapProject)):
        node = node.child
    return isinstance(node, (TableRef, Literal))


def maintenance_footprint(view: ViewDefinition, db: Database) -> frozenset[str]:
    """Base tables the post-update incremental queries read.

    Builds the view's log substitution symbolically (no log tables are
    actually created), differentiates, and collects every base-table
    reference in the resulting delta expressions — symbolic log tables
    excluded.
    """
    owner = f"__analysis__{view.name}"
    entries: dict[str, tuple[TableRef, TableRef]] = {}
    schemas = {}
    log_tables: set[str] = set()
    for table in sorted(view.base_tables()):
        schema = db.schema_of(table)
        log_delete = TableRef(naming.log_delete_name(owner, table), schema)
        log_insert = TableRef(naming.log_insert_name(owner, table), schema)
        log_tables.update((log_delete.name, log_insert.name))
        # L̂: the delete component is the log's insert table and vice versa.
        entries[table] = (log_insert, log_delete)
        schemas[table] = schema
    eta = FactoredSubstitution(entries, schemas)
    delete, insert = differentiate(eta, view.query)
    referenced = set(delete.tables()) | set(insert.tables())
    return frozenset(referenced - log_tables)


def is_self_maintainable(view: ViewDefinition, db: Database) -> bool:
    """Whether refreshing the view never reads base tables.

    True exactly when the post-update deltas are expressible over the
    log alone — the [GJM96] self-maintainability property for our
    insert/delete transaction class.
    """
    return not maintenance_footprint(view, db)


def relevant_tables(view: ViewDefinition, txn_tables: frozenset[str]) -> frozenset[str]:
    """The subset of a transaction's tables that can affect the view.

    A transaction touching none of these is *irrelevant* to the view
    (the classic relevant-update test [BLT86]); the maintenance
    machinery skips log extension for such transactions automatically.
    """
    return view.base_tables() & txn_tables
