"""Factored substitutions (Sections 2.4 and 4.1).

A *factored substitution* maps each table name :math:`R_i` to a query of
the shape :math:`(R_i \\dot{-} D_i) \\uplus A_i`.  Both substitutions the
maintenance algorithms need have this shape:

* :math:`\\widehat{\\mathcal{T}}` — from a simple transaction, with
  :math:`D_i = \\nabla R_i` and :math:`A_i = \\triangle R_i` (anticipates
  future changes);
* :math:`\\widehat{\\mathcal{L}}` — from a log, with
  :math:`D_i = \\blacktriangle R_i` and :math:`A_i = \\blacktriangledown R_i`
  (compensates for past changes — note the reversed roles).

A factored substitution is *weakly minimal* when :math:`D_i \\subseteq R_i`
in every state.  The differential rules of Figure 2 are proved for weakly
minimal substitutions; :meth:`FactoredSubstitution.weakly_minimal` converts
any factored substitution into an equivalent weakly minimal one by
replacing :math:`D_i` with :math:`D_i \\min R_i`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.algebra.bag import Bag
from repro.algebra.expr import Expr, Literal, Monus, TableRef, UnionAll, min_expr
from repro.algebra.schema import Schema
from repro.errors import SchemaError

__all__ = ["FactoredSubstitution"]


class FactoredSubstitution:
    """A substitution :math:`\\eta = [(R_i \\dot{-} D_i) \\uplus A_i / R_i]`."""

    def __init__(
        self,
        entries: Mapping[str, tuple[Expr, Expr]],
        schemas: Mapping[str, Schema],
        *,
        claims_weak_minimality: bool = False,
    ) -> None:
        """``entries`` maps a table name to its ``(D, A)`` pair.

        ``schemas`` must cover every table in ``entries``; arities of
        ``D`` and ``A`` are validated against them.

        ``claims_weak_minimality`` is a *provenance* flag: set it only
        when the builder guarantees :math:`D_i \\subseteq R_i` in every
        reachable state (e.g. a log maintained under Lemma 4's
        ``makesafe`` discipline).  The static classifier in
        :mod:`repro.analysis.properties` trusts it.
        """
        self._entries: dict[str, tuple[Expr, Expr]] = {}
        self._schemas: dict[str, Schema] = {}
        self._claims_weak_minimality = bool(claims_weak_minimality)
        for name, (delete, insert) in entries.items():
            schema = schemas.get(name)
            if schema is None:
                raise SchemaError(f"no schema supplied for substituted table {name!r}")
            if delete.schema().arity != schema.arity or insert.schema().arity != schema.arity:
                raise SchemaError(f"substitution for {name!r}: delta arity does not match table arity")
            self._entries[name] = (delete, insert)
            self._schemas[name] = schema

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def claims_weak_minimality(self) -> bool:
        """Whether the builder vouched for :math:`D_i \\subseteq R_i`."""
        return self._claims_weak_minimality

    def tables(self) -> frozenset[str]:
        return frozenset(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def delete_of(self, name: str) -> Expr:
        """The :math:`D_i` component for ``name``."""
        return self._entries[name][0]

    def insert_of(self, name: str) -> Expr:
        """The :math:`A_i` component for ``name``."""
        return self._entries[name][1]

    def schema_of(self, name: str) -> Schema:
        return self._schemas[name]

    def replacement(self, name: str) -> Expr:
        """The replacement query :math:`(R \\dot{-} D) \\uplus A` for ``name``."""
        delete, insert = self._entries[name]
        ref = TableRef(name, self._schemas[name])
        return UnionAll(Monus(ref, delete), insert)

    # ------------------------------------------------------------------
    # Application and normalization
    # ------------------------------------------------------------------

    def apply(self, query: Expr) -> Expr:
        """:math:`\\eta(Q)`: replace every occurrence of each substituted table."""
        mapping = {name: self.replacement(name) for name in self._entries}
        return query.substitute(mapping)

    def weakly_minimal(self) -> FactoredSubstitution:
        """An equivalent substitution with :math:`D_i \\min R_i` as delete parts."""
        entries: dict[str, tuple[Expr, Expr]] = {}
        for name, (delete, insert) in self._entries.items():
            ref = TableRef(name, self._schemas[name])
            entries[name] = (min_expr(delete, ref), insert)
        return FactoredSubstitution(entries, self._schemas, claims_weak_minimality=True)

    def is_trivial(self) -> bool:
        """True when every delta is a literal empty bag (η is the identity)."""
        for delete, insert in self._entries.values():
            for part in (delete, insert):
                if not (isinstance(part, Literal) and not part.bag):
                    return False
        return True

    @classmethod
    def identity(cls) -> FactoredSubstitution:
        """The empty substitution (replaces nothing)."""
        return cls({}, {})

    @classmethod
    def literal(cls, deltas: Mapping[str, tuple[Bag, Bag]], schemas: Mapping[str, Schema]) -> FactoredSubstitution:
        """Build from concrete ``(delete_bag, insert_bag)`` pairs."""
        entries = {
            name: (Literal(delete, schemas[name]), Literal(insert, schemas[name]))
            for name, (delete, insert) in deltas.items()
        }
        return cls(entries, schemas)

    def __repr__(self) -> str:
        return f"FactoredSubstitution({sorted(self._entries)})"
