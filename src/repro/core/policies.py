"""Refresh policies and the simulated-time maintenance driver (Section 5.3).

A *policy* is a scheme by which propagate/refresh operations are invoked
for a view.  The paper presents two for the ``INV_C`` scenario:

* **Policy 1** — every ``k`` time units run ``propagate_C``; every ``m``
  (``m > k``) bring the view fully up to date with ``refresh_C``.
* **Policy 2** — every ``k`` run ``propagate_C``; every ``m`` run only
  ``partial_refresh_C``.  Downtime is minimal (just applying the
  precomputed differentials) and the view is at most ``k`` out of date.

We add the obvious companions: periodic full refresh (for ``BL``/``DT``),
refresh-on-query, and on-demand.  :class:`MaintenanceDriver` advances an
integer simulated clock, feeds user transactions to the scenario,
invokes the policy's actions at each tick, and records staleness and
operation counts — the raw material for the downtime experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.scenarios import CombinedScenario, Scenario
from repro.core.transactions import UserTransaction
from repro.errors import PolicyError

__all__ = [
    "MaintenancePolicy",
    "LogThresholdPolicy",
    "Policy1",
    "Policy2",
    "PeriodicRefresh",
    "OnDemandPolicy",
    "OnQueryPolicy",
    "MaintenanceDriver",
    "DriverStats",
]


class MaintenancePolicy(ABC):
    """Decides which maintenance actions run at each simulated tick."""

    #: Action names understood by the driver.
    ACTIONS = ("propagate", "partial_refresh", "refresh")

    @abstractmethod
    def actions_at(self, tick: int) -> tuple[str, ...]:
        """The ordered maintenance actions to run at integer time ``tick``."""

    def actions_for(self, tick: int, scenario: Scenario) -> tuple[str, ...]:
        """Like :meth:`actions_at`, but may inspect the scenario's state.

        The default ignores the scenario; *adaptive* policies (the
        paper's "whenever any free cycles are available" variation)
        override this to react to log volume.
        """
        return self.actions_at(tick)

    def refresh_on_query(self) -> bool:
        """Whether the view must be refreshed before serving a query."""
        return False


@dataclass(frozen=True)
class Policy1(MaintenancePolicy):
    """Propagate every ``k``; full ``refresh`` every ``m`` (``m > k``)."""

    k: int
    m: int

    def __post_init__(self) -> None:
        if not (0 < self.k < self.m):
            raise PolicyError(f"Policy 1 requires 0 < k < m, got k={self.k}, m={self.m}")

    def actions_at(self, tick: int) -> tuple[str, ...]:
        if tick % self.m == 0:
            return ("refresh",)  # refresh_C subsumes the propagation
        if tick % self.k == 0:
            return ("propagate",)
        return ()


@dataclass(frozen=True)
class Policy2(MaintenancePolicy):
    """Propagate every ``k``; only ``partial_refresh`` every ``m`` (``m > k``).

    The view is refreshed to a state at most ``k`` time units old, with
    the minimal possible downtime.
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if not (0 < self.k < self.m):
            raise PolicyError(f"Policy 2 requires 0 < k < m, got k={self.k}, m={self.m}")

    def actions_at(self, tick: int) -> tuple[str, ...]:
        actions: list[str] = []
        if tick % self.k == 0:
            actions.append("propagate")
        if tick % self.m == 0:
            actions.append("partial_refresh")
        return tuple(actions)


@dataclass(frozen=True)
class PeriodicRefresh(MaintenancePolicy):
    """Full refresh every ``m`` ticks (the natural policy for BL and DT)."""

    m: int

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise PolicyError(f"PeriodicRefresh requires m > 0, got {self.m}")

    def actions_at(self, tick: int) -> tuple[str, ...]:
        return ("refresh",) if tick % self.m == 0 else ()


@dataclass(frozen=True)
class OnDemandPolicy(MaintenancePolicy):
    """No scheduled maintenance; the application calls ``refresh`` itself."""

    def actions_at(self, tick: int) -> tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class OnQueryPolicy(MaintenancePolicy):
    """Refresh lazily, immediately before each query against the view."""

    def actions_at(self, tick: int) -> tuple[str, ...]:
        return ()

    def refresh_on_query(self) -> bool:
        return True


@dataclass(frozen=True)
class LogThresholdPolicy(MaintenancePolicy):
    """Adaptive propagation (Section 5.3's closing remark).

    Rather than propagating on a fixed interval ``k``, propagate
    whenever the log has accumulated at least ``threshold`` recorded
    changes — a stand-in for "whenever any free cycles are available" —
    and partially refresh the view every ``m`` ticks.  Requires the
    combined (``INV_C``) scenario.
    """

    threshold: int
    m: int

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.m <= 0:
            raise PolicyError("LogThresholdPolicy needs threshold > 0 and m > 0")

    def actions_at(self, tick: int) -> tuple[str, ...]:
        return ("partial_refresh",) if tick % self.m == 0 else ()

    def actions_for(self, tick: int, scenario: Scenario) -> tuple[str, ...]:
        actions: list[str] = []
        log = getattr(scenario, "log", None)
        if log is not None and log.recorded_changes() >= self.threshold:
            actions.append("propagate")
        actions.extend(self.actions_at(tick))
        return tuple(actions)


@dataclass
class DriverStats:
    """Counters and samples accumulated by a :class:`MaintenanceDriver` run."""

    transactions: int = 0
    propagates: int = 0
    partial_refreshes: int = 0
    full_refreshes: int = 0
    queries: int = 0
    #: ``tick - mv_reflects`` sampled at each query.
    staleness_samples: list[int] = field(default_factory=list)
    #: Tuple-operation cost of user transactions (maintenance overhead included).
    transaction_cost: int = 0
    #: Tuple-operation cost of propagate operations.
    propagate_cost: int = 0
    #: Tuple-operation cost of refresh/partial-refresh operations.
    refresh_cost: int = 0

    def max_staleness(self) -> int:
        return max(self.staleness_samples, default=0)

    def mean_staleness(self) -> float:
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)


class MaintenanceDriver:
    """Advances simulated time, applying transactions and policy actions.

    The driver tracks two logical timestamps:

    * ``mv_reflects`` — the simulated time of the database state the view
      table currently equals (staleness = now − this);
    * ``dt_reflects`` — the time through which base-table changes have
      been propagated into the differential tables (``INV_C`` only).
    """

    def __init__(self, scenario: Scenario, policy: MaintenancePolicy) -> None:
        self.scenario = scenario
        self.policy = policy
        self.stats = DriverStats()
        self.now = 0
        self.mv_reflects = 0
        self.dt_reflects = 0
        if self._needs_combined() and not isinstance(scenario, CombinedScenario):
            raise PolicyError(
                f"policy {type(policy).__name__} requires the combined (INV_C) scenario, "
                f"got {type(scenario).__name__}"
            )

    def _needs_combined(self) -> bool:
        return isinstance(self.policy, (Policy1, Policy2, LogThresholdPolicy))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def _cost(self) -> int:
        return self.scenario.counter.tuples_out

    def submit(self, txn: UserTransaction) -> None:
        """Apply one user transaction (with maintenance extensions) now."""
        before = self._cost()
        self.scenario.execute(txn)
        self.stats.transactions += 1
        self.stats.transaction_cost += self._cost() - before
        if self.scenario.tag == "IM":
            self.mv_reflects = self.now

    def _run_action(self, action: str) -> None:
        scenario = self.scenario
        before = self._cost()
        if action == "propagate":
            if not isinstance(scenario, CombinedScenario):
                raise PolicyError("propagate requires the combined (INV_C) scenario")
            scenario.propagate()
            self.stats.propagates += 1
            self.stats.propagate_cost += self._cost() - before
            self.dt_reflects = self.now
        elif action == "partial_refresh":
            if not isinstance(scenario, CombinedScenario):
                raise PolicyError("partial_refresh requires the combined (INV_C) scenario")
            scenario.partial_refresh()
            self.stats.partial_refreshes += 1
            self.stats.refresh_cost += self._cost() - before
            self.mv_reflects = self.dt_reflects
        elif action == "refresh":
            scenario.refresh()
            self.stats.full_refreshes += 1
            self.stats.refresh_cost += self._cost() - before
            self.mv_reflects = self.now
            self.dt_reflects = self.now
        else:
            raise PolicyError(f"unknown maintenance action {action!r}")

    def tick(self, txns: Sequence[UserTransaction] = ()) -> None:
        """Advance the clock one unit: apply ``txns``, then policy actions."""
        self.now += 1
        for txn in txns:
            self.submit(txn)
        for action in self.policy.actions_for(self.now, self.scenario):
            self._run_action(action)

    def query(self):
        """Read the view as an application would, recording staleness."""
        if self.policy.refresh_on_query():
            self._run_action("refresh")
        self.stats.queries += 1
        self.stats.staleness_samples.append(self.now - self.mv_reflects)
        return self.scenario.read_view()

    def refresh_now(self) -> None:
        """Explicit on-demand refresh."""
        self._run_action("refresh")

    def run(
        self,
        schedule: Iterable[tuple[int, Sequence[UserTransaction]]],
        *,
        horizon: int,
        query_every: int | None = None,
    ) -> DriverStats:
        """Run to ``horizon`` ticks with transactions from ``schedule``.

        ``schedule`` yields ``(tick, transactions)`` pairs in increasing
        tick order; ticks not mentioned carry no transactions.  When
        ``query_every`` is given, the view is queried at that period.
        """
        pending = dict(schedule)
        for _ in range(horizon):
            txns = pending.get(self.now + 1, ())
            self.tick(txns)
            if query_every and self.now % query_every == 0:
                self.query()
        return self.stats
