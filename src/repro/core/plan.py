"""Maintenance plans: the executable form of ``makesafe`` and refreshes.

A plan is one simultaneous database transaction split into

* ``assignments`` — wholesale ``R := Q`` (used for clearing auxiliary
  tables and full recomputation), and
* ``patches`` — delta applications ``R := (R ∸ delete) ⊎ insert``
  executed as indexed in-place updates, whose cost is proportional to
  the delta, not the table.

Plans from several views merge into a single transaction: the user
transaction's own patches appear identically in each view's plan and
deduplicate structurally; auxiliary-table updates are per-view and
disjoint.  A genuine conflict (two different updates to one table) is
an error — it would mean two maintenance components disagree about the
same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr
from repro.errors import TransactionError
from repro.storage.database import Database

__all__ = ["MaintenancePlan"]


@dataclass
class MaintenancePlan:
    """A simultaneous transaction of assignments and patches."""

    assignments: dict[str, Expr] = field(default_factory=dict)
    patches: dict[str, tuple[Expr, Expr]] = field(default_factory=dict)

    def add_assignment(self, table: str, query: Expr) -> None:
        self._check_fresh(table, query)
        self.assignments[table] = query

    def add_patch(self, table: str, delete: Expr, insert: Expr) -> None:
        self._check_fresh(table, (delete, insert))
        self.patches[table] = (delete, insert)

    def _check_fresh(self, table: str, value: object) -> None:
        existing: object | None = None
        if table in self.assignments:
            existing = self.assignments[table]
        elif table in self.patches:
            existing = self.patches[table]
        if existing is not None and existing != value:
            raise TransactionError(f"conflicting updates to table {table!r} in one plan")

    def merge(self, other: MaintenancePlan) -> MaintenancePlan:
        """Combine two plans into one transaction.

        Structurally identical duplicate updates (the shared user
        transaction) deduplicate; diverging duplicates raise.
        """
        merged = MaintenancePlan(dict(self.assignments), dict(self.patches))
        for table, query in other.assignments.items():
            merged.add_assignment(table, query)
        for table, (delete, insert) in other.patches.items():
            merged.add_patch(table, delete, insert)
        return merged

    def tables(self) -> frozenset[str]:
        return frozenset(self.assignments) | frozenset(self.patches)

    def is_empty(self) -> bool:
        return not self.assignments and not self.patches

    def execute(self, db: Database, *, counter: CostCounter | None = None) -> None:
        """Run the plan as one simultaneous transaction."""
        db.apply(self.assignments, patches=self.patches, counter=counter)
