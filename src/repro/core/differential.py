"""The differential algorithm of Figure 2 and its two uses (Section 4).

Given a weakly minimal factored substitution :math:`\\eta` and a query
``Q``, :func:`differentiate` produces the pair of *incremental queries*
``(Del(η,Q), Add(η,Q))`` satisfying Theorem 2:

.. math::

    \\eta(Q) \\equiv (Q \\dot{-} \\mathrm{Del}(\\eta,Q))
                      \\uplus \\mathrm{Add}(\\eta,Q),
    \\qquad \\mathrm{Del}(\\eta,Q) \\subseteq Q .

The two specializations:

* **Pre-update** (immediate maintenance): with
  :math:`\\eta = \\widehat{\\mathcal{T}}`,
  :math:`\\nabla(\\mathcal{T},Q) = \\mathrm{Del}` and
  :math:`\\Delta(\\mathcal{T},Q) = \\mathrm{Add}`, evaluated *before*
  the transaction runs.

* **Post-update** (deferred maintenance): with
  :math:`\\eta = \\widehat{\\mathcal{L}}`, the roles flip via the
  Cancellation Lemma (Lemma 1):
  :math:`\\blacktriangledown(\\mathcal{L},Q) = \\mathrm{Add}(\\widehat{\\mathcal{L}},Q)`
  and
  :math:`\\blacktriangle(\\mathcal{L},Q) = Q \\min \\mathrm{Del}(\\widehat{\\mathcal{L}},Q)`,
  which simplifies to plain :math:`\\mathrm{Del}` when the log is weakly
  minimal.  Evaluating these in the current (post-update) state avoids
  the *state bug* of naively reusing pre-update deltas.

The rewrite aggressively folds empty deltas (an untouched subtree has
``Del = Add = φ``), so the incremental queries stay proportional to the
changed part of the query tree — this is what makes incremental refresh
cheaper than recomputation in practice.
"""

from __future__ import annotations

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
    min_expr,
)
from repro.algebra.schema import Schema
from repro.core.logs import Log
from repro.core.substitution import FactoredSubstitution
from repro.core.timetravel import transaction_substitution
from repro.core.transactions import UserTransaction
from repro.errors import ReproError
from repro.storage.database import Database

__all__ = [
    "differentiate",
    "pre_update_delta",
    "post_update_delta",
    "strongly_minimal_pair",
]


# ----------------------------------------------------------------------
# Empty-folding smart constructors
# ----------------------------------------------------------------------


def _is_empty(expr: Expr) -> bool:
    return isinstance(expr, Literal) and not expr.bag


def _empty_like(expr: Expr) -> Literal:
    return Literal(Bag.empty(), expr.schema())


def _empty(schema: Schema) -> Literal:
    return Literal(Bag.empty(), schema)


def _union(left: Expr, right: Expr) -> Expr:
    if _FOLD:
        if _is_empty(left):
            return right
        if _is_empty(right):
            return left
    return UnionAll(left, right)


def _monus(left: Expr, right: Expr) -> Expr:
    if _FOLD:
        if _is_empty(left):
            return left
        if _is_empty(right):
            return left
    return Monus(left, right)


def _min(left: Expr, right: Expr) -> Expr:
    if _FOLD:
        if _is_empty(left):
            return left
        if _is_empty(right):
            return _empty_like(left)
    return min_expr(left, right)


def _product(left: Expr, right: Expr) -> Expr:
    if _FOLD and (_is_empty(left) or _is_empty(right)):
        return _empty(left.schema().concat(right.schema()))
    return Product(left, right)


def _select(predicate, child: Expr) -> Expr:
    if _FOLD and _is_empty(child):
        return child
    if _FOLD and isinstance(child, UnionAll):
        # σ distributes over ⊎.  The Del/Add of a product is a union of
        # products; pushing the selection inside leaves σ_p(E × F) forms
        # that the evaluator's hash-join fast path can execute without
        # materializing cross products.
        return _union(_select(predicate, child.left), _select(predicate, child.right))
    return Select(predicate, child)


def _project(template: Project, child: Expr) -> Expr:
    if _FOLD and _is_empty(child):
        return _empty(template.schema())
    return Project(template.attrs, child, template.names)


def _map(template: MapProject, child: Expr) -> Expr:
    if _FOLD and _is_empty(child):
        return _empty(template.schema())
    return MapProject(template.terms, child, template.names)


def _dedup(child: Expr) -> Expr:
    if _FOLD and _is_empty(child):
        return child
    return DupElim(child)


# ----------------------------------------------------------------------
# Figure 2: Del and Add
# ----------------------------------------------------------------------


def differentiate(
    eta: FactoredSubstitution,
    query: Expr,
    *,
    fold_empty: bool = True,
) -> tuple[Expr, Expr]:
    """Compute ``(Del(η, Q), Add(η, Q))`` per Figure 2.

    ``eta`` must be weakly minimal for Theorem 2 to hold; callers that
    cannot guarantee this should normalize with
    :meth:`FactoredSubstitution.weakly_minimal` first.

    The recursion is memoized per query node, and shared subtrees in the
    result reference identical expression objects, which the evaluator's
    structural memoization then computes once.

    ``fold_empty=False`` disables the statically-empty-delta folding and
    emits the Figure 2 rules verbatim — an ablation knob (experiment
    E12) quantifying how much the folding matters; correctness is
    unaffected either way.
    """
    global _FOLD
    memo: dict[Expr, tuple[Expr, Expr]] = {}
    previous = _FOLD
    _FOLD = fold_empty
    try:
        return _diff(eta, query, memo)
    finally:
        _FOLD = previous


#: Whether the smart constructors fold statically-empty operands.
_FOLD = True


def _diff(eta: FactoredSubstitution, query: Expr, memo: dict[Expr, tuple[Expr, Expr]]) -> tuple[Expr, Expr]:
    cached = memo.get(query)
    if cached is not None:
        return cached

    if isinstance(query, TableRef):
        if query.name in eta:
            result = (eta.delete_of(query.name), eta.insert_of(query.name))
        else:
            result = (_empty_like(query), _empty_like(query))
    elif isinstance(query, Literal):
        result = (_empty_like(query), _empty_like(query))
    elif isinstance(query, Select):
        child_del, child_add = _diff(eta, query.child, memo)
        result = (_select(query.predicate, child_del), _select(query.predicate, child_add))
    elif isinstance(query, Project):
        child_del, child_add = _diff(eta, query.child, memo)
        result = (_project(query, child_del), _project(query, child_add))
    elif isinstance(query, MapProject):
        # Per-row maps push through deltas exactly like projections
        # (see the MapProject docstring for the weak-minimality argument).
        child_del, child_add = _diff(eta, query.child, memo)
        result = (_map(query, child_del), _map(query, child_add))
    elif isinstance(query, DupElim):
        child = query.child
        child_del, child_add = _diff(eta, child, memo)
        remainder = _monus(child, child_del)  # E ∸ Del(η, E), shared by both rules
        # Del(η, ε(E)) = ε(Del(η,E)) ∸ (E ∸ Del(η,E))
        del_part = _monus(_dedup(child_del), remainder)
        # Add(η, ε(E)) = ε(Add(η,E)) ∸ (E ∸ Del(η,E))
        add_part = _monus(_dedup(child_add), remainder)
        result = (del_part, add_part)
    elif isinstance(query, UnionAll):
        left_del, left_add = _diff(eta, query.left, memo)
        right_del, right_add = _diff(eta, query.right, memo)
        result = (_union(left_del, right_del), _union(left_add, right_add))
    elif isinstance(query, Monus):
        left, right = query.left, query.right
        left_del, left_add = _diff(eta, left, memo)
        right_del, right_add = _diff(eta, right, memo)
        # Del(η, E∸F) = (Del(η,E) ⊎ Add(η,F)) min (E ∸ F)
        del_part = _min(_union(left_del, right_add), _monus(left, right))
        # Add(η, E∸F) = ((Add(η,E) ⊎ Del(η,F)) ∸ (F ∸ E))
        #                ∸ ((Del(η,E) ⊎ Add(η,F)) ∸ (E ∸ F))
        add_part = _monus(
            _monus(_union(left_add, right_del), _monus(right, left)),
            _monus(_union(left_del, right_add), _monus(left, right)),
        )
        result = (del_part, add_part)
    elif isinstance(query, Product):
        left, right = query.left, query.right
        left_del, left_add = _diff(eta, left, memo)
        right_del, right_add = _diff(eta, right, memo)
        left_rest_del = _monus(left, left_del)  # E ∸ Del(η,E)
        right_rest_del = _monus(right, right_del)  # F ∸ Del(η,F)
        # Del(η, E×F) = (DelE × DelF) ⊎ (DelE × (F∸DelF)) ⊎ ((E∸DelE) × DelF)
        del_part = _union(
            _union(_product(left_del, right_del), _product(left_del, right_rest_del)),
            _product(left_rest_del, right_del),
        )
        # Add(η, E×F) = (AddE × AddF) ⊎ (AddE × (F∸DelF)) ⊎ ((E∸DelE) × AddF)
        add_part = _union(
            _union(_product(left_add, right_add), _product(left_add, right_rest_del)),
            _product(left_rest_del, right_add),
        )
        result = (del_part, add_part)
    else:
        raise ReproError(f"differentiate: unknown expression node {type(query).__name__}")

    memo[query] = result
    return result


# ----------------------------------------------------------------------
# Pre-update deltas: ∇(T, Q) and Δ(T, Q)
# ----------------------------------------------------------------------


def pre_update_delta(txn: UserTransaction, db: Database, query: Expr) -> tuple[Expr, Expr]:
    """Incremental queries for *immediate* maintenance.

    Returns :math:`(\\nabla(\\mathcal{T},Q), \\Delta(\\mathcal{T},Q))`,
    to be evaluated in the **pre-update** state and applied as

    .. math::

        MV := (MV \\dot{-} \\nabla(\\mathcal{T},Q))
               \\uplus \\Delta(\\mathcal{T},Q) .

    The transaction is normalized to weak minimality first, so the
    caller may pass any simple transaction.
    """
    eta = transaction_substitution(txn.weakly_minimal(), db)
    return differentiate(eta, query)


# ----------------------------------------------------------------------
# Post-update deltas: ▼(L, Q) and ▲(L, Q)
# ----------------------------------------------------------------------


def post_update_delta(
    log: Log,
    query: Expr,
    *,
    assume_weakly_minimal_log: bool | None = None,
) -> tuple[Expr, Expr]:
    """Incremental queries for *deferred* maintenance, post-update state.

    Returns :math:`(\\blacktriangledown(\\mathcal{L},Q),
    \\blacktriangle(\\mathcal{L},Q))` to be evaluated in the **current**
    state and applied as

    .. math::

        MV := (MV \\dot{-} \\blacktriangledown(\\mathcal{L},Q))
               \\uplus \\blacktriangle(\\mathcal{L},Q) .

    The duality (Section 4): differentiate ``Q`` with respect to the
    *log* substitution :math:`\\widehat{\\mathcal{L}}`, then swap the
    roles of the results —

    * the view's delete bag is :math:`\\mathrm{Add}(\\widehat{\\mathcal{L}},Q)`
      (what the past state had that the present lacks),
    * the view's insert bag is
      :math:`Q \\min \\mathrm{Del}(\\widehat{\\mathcal{L}},Q)` by the
      Cancellation Lemma, simplifying to
      :math:`\\mathrm{Del}(\\widehat{\\mathcal{L}},Q)` when the log is
      weakly minimal (``makesafe_BL`` maintains exactly that invariant).

    By default (``assume_weakly_minimal_log=None``) the choice is
    **analysis-backed**: the static classifier
    (:func:`repro.analysis.properties.classify_substitution`) decides
    whether :math:`\\widehat{\\mathcal{L}}` is provably weakly minimal —
    by provenance (Lemma 4's ``makesafe`` discipline marks the
    substitution) or by structure (:math:`D \\min R` normal forms) — and
    the ``min`` guard is emitted only when no proof exists.  Pass
    ``True`` to force the simplification, or ``False`` to force the
    conservative guard (correct for *any* log at the price of the extra
    ``min`` with ``Q``).
    """
    eta = log.substitution()
    if assume_weakly_minimal_log is None:
        from repro.analysis.properties import Minimality, classify_substitution

        assume_weakly_minimal_log = (
            classify_substitution(eta) is Minimality.WEAKLY_MINIMAL
        )
    if not assume_weakly_minimal_log:
        eta = eta.weakly_minimal()
    del_hat, add_hat = differentiate(eta, query)
    view_delete = add_hat
    if assume_weakly_minimal_log:
        view_insert = del_hat
    else:
        view_insert = _min(query, del_hat)
    return view_delete, view_insert


# ----------------------------------------------------------------------
# Strong minimality (Section 4.1)
# ----------------------------------------------------------------------


def strongly_minimal_pair(delete: Expr, insert: Expr) -> tuple[Expr, Expr]:
    """Normalize a weakly minimal ``(Del, Add)`` pair to strong minimality.

    Strong minimality additionally requires
    :math:`\\mathrm{Del} \\min \\mathrm{Add} \\equiv \\phi` — no tuple is
    deleted and immediately reinserted.  Subtracting the common part
    :math:`C = \\mathrm{Del} \\min \\mathrm{Add}` from both sides
    preserves :math:`(Q \\dot{-} \\mathrm{Del}) \\uplus \\mathrm{Add}`
    whenever :math:`\\mathrm{Del} \\subseteq Q` (weak minimality), and
    yields smaller differential tables — the paper's note on further
    minimizing view downtime (Section 5.3).
    """
    common = _min(delete, insert)
    return _monus(delete, common), _monus(insert, common)
