"""Simple transactions: per-table delete/insert deltas (Section 2.2).

The paper considers *simple transactions*

.. math::

    \\mathcal{T} = \\{R_i := (R_i \\dot{-} \\nabla R_i) \\uplus \\triangle R_i\\}

without loss of generality (any abstract transaction can be put in this
form).  :class:`UserTransaction` captures exactly that: for each updated
table, a pair of bag-algebra expressions — the delete bag
:math:`\\nabla R` and the insert bag :math:`\\triangle R` — evaluated in
the pre-transaction state.

Most user transactions delete and insert literal rows; the builder
methods :meth:`UserTransaction.insert` / :meth:`UserTransaction.delete`
accept plain row iterables and wrap them in literals.  Arbitrary
expressions are accepted too (the paper's generality), via
:meth:`UserTransaction.delete_query` / :meth:`UserTransaction.insert_query`.

*Weak minimality* (Section 4.1) requires :math:`\\nabla R \\subseteq R`.
:meth:`UserTransaction.weakly_minimal` rewrites the delete expressions as
:math:`\\nabla R \\min R`, which never changes the transaction's effect
(monus already ignores over-deletion) but makes the substitution
:math:`\\widehat{\\mathcal{T}}` weakly minimal as Figure 2 requires.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.bag import Bag, Row
from repro.algebra.expr import Expr, Literal, Monus, UnionAll, min_expr
from repro.errors import TransactionError
from repro.storage.database import Database

__all__ = ["UserTransaction"]


class UserTransaction:
    """A simple transaction over external base tables."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._deletes: dict[str, Expr] = {}
        self._inserts: dict[str, Expr] = {}

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    def _check_updatable(self, name: str) -> None:
        if self._db.is_internal(name):
            raise TransactionError(f"user transactions may not update internal table {name!r}")

    def insert(self, name: str, rows: Iterable[Row] | Bag) -> UserTransaction:
        """Insert literal rows into ``name``."""
        bag = rows if isinstance(rows, Bag) else Bag(rows)
        return self.insert_query(name, Literal(bag, self._db.schema_of(name)))

    def delete(self, name: str, rows: Iterable[Row] | Bag) -> UserTransaction:
        """Delete literal rows from ``name`` (copies beyond those present are ignored)."""
        bag = rows if isinstance(rows, Bag) else Bag(rows)
        return self.delete_query(name, Literal(bag, self._db.schema_of(name)))

    def insert_query(self, name: str, expr: Expr) -> UserTransaction:
        """Insert the result of a query (evaluated pre-transaction)."""
        self._check_updatable(name)
        current = self._inserts.get(name)
        self._inserts[name] = expr if current is None else UnionAll(current, expr)
        return self

    def delete_query(self, name: str, expr: Expr) -> UserTransaction:
        """Delete the result of a query (evaluated pre-transaction)."""
        self._check_updatable(name)
        current = self._deletes.get(name)
        self._deletes[name] = expr if current is None else UnionAll(current, expr)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def tables(self) -> frozenset[str]:
        """All tables this transaction updates."""
        return frozenset(self._deletes) | frozenset(self._inserts)

    def delete_expr(self, name: str) -> Expr:
        """The delete bag :math:`\\nabla R` for ``name`` (empty literal if none)."""
        expr = self._deletes.get(name)
        if expr is None:
            return Literal(Bag.empty(), self._db.schema_of(name))
        return expr

    def insert_expr(self, name: str) -> Expr:
        """The insert bag :math:`\\triangle R` for ``name`` (empty literal if none)."""
        expr = self._inserts.get(name)
        if expr is None:
            return Literal(Bag.empty(), self._db.schema_of(name))
        return expr

    def is_empty(self) -> bool:
        return not self._deletes and not self._inserts

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def weakly_minimal(self) -> UserTransaction:
        """An equivalent transaction whose deletes satisfy :math:`\\nabla R \\subseteq R`."""
        normalized = UserTransaction(self._db)
        normalized._inserts = dict(self._inserts)
        for name, expr in self._deletes.items():
            normalized._deletes[name] = min_expr(expr, self._db.ref(name))
        return normalized

    # ------------------------------------------------------------------
    # Lowering to assignments
    # ------------------------------------------------------------------

    def assignments(self) -> dict[str, Expr]:
        """The assignment form :math:`R := (R \\dot{-} \\nabla R) \\uplus \\triangle R`."""
        result: dict[str, Expr] = {}
        for name in sorted(self.tables):
            ref = self._db.ref(name)
            result[name] = UnionAll(Monus(ref, self.delete_expr(name)), self.insert_expr(name))
        return result

    def patches(self) -> dict[str, tuple[Expr, Expr]]:
        """The patch form: per-table ``(∇R, ΔR)`` delta pairs.

        Semantically identical to :meth:`assignments` but executed as
        indexed in-place updates, so the transaction's cost is
        proportional to its delta sizes.
        """
        return {name: (self.delete_expr(name), self.insert_expr(name)) for name in sorted(self.tables)}

    def apply(self) -> None:
        """Execute this transaction directly (no view maintenance)."""
        self._db.apply(patches=self.patches(), restrict_to_external=True)

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self.tables):
            if name in self._deletes:
                parts.append(f"-{name}")
            if name in self._inserts:
                parts.append(f"+{name}")
        return f"UserTransaction({', '.join(parts)})"
