"""The four database invariants of Figure 1, as checkable objects.

Each invariant relates the view's defining query ``Q``, its materialized
table ``MV``, and the auxiliary tables of the scenario:

========  =====================================================================
scenario  invariant
========  =====================================================================
``IM``    :math:`Q \\equiv MV`
``BL``    :math:`\\mathrm{PAST}(\\mathcal{L}, Q) \\equiv MV`
``DT``    :math:`Q \\equiv (MV \\dot{-} \\triangledown MV) \\uplus \\triangle MV`
``C``     :math:`\\mathrm{PAST}(\\mathcal{L}, Q) \\equiv
          (MV \\dot{-} \\triangledown MV) \\uplus \\triangle MV`
========  =====================================================================

Plus the *minimality invariants* of Section 5.2:
:math:`\\blacktriangle R_i \\subseteq R_i` for every logged table, and
:math:`\\triangledown MV \\subseteq MV` when differential tables are used.

These checks recompute queries from scratch, so they are intended for
tests, assertions, and fault-injection experiments — not the hot path.
"""

from __future__ import annotations

from repro.algebra.evaluation import evaluate
from repro.core.logs import Log
from repro.core.timetravel import past_query
from repro.core.views import ViewDefinition
from repro.errors import InvariantViolation
from repro.storage.database import Database

__all__ = [
    "immediate_invariant",
    "base_log_invariant",
    "diff_table_invariant",
    "combined_invariant",
    "log_minimality_invariant",
    "dt_minimality_invariant",
    "require",
]


def require(holds: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` when ``holds`` is false."""
    if not holds:
        raise InvariantViolation(message)


def immediate_invariant(db: Database, view: ViewDefinition) -> bool:
    """:math:`\\mathbb{INV}_{IM}`: the view table is always consistent."""
    return evaluate(view.query, db.state) == db[view.mv_table]


def base_log_invariant(db: Database, view: ViewDefinition, log: Log) -> bool:
    """:math:`\\mathbb{INV}_{BL}`: ``MV`` holds the past value of ``Q``."""
    return evaluate(past_query(view.query, log), db.state) == db[view.mv_table]


def diff_table_invariant(db: Database, view: ViewDefinition) -> bool:
    """:math:`\\mathbb{INV}_{DT}`: ``Q ≡ (MV ∸ ∇MV) ⊎ ΔMV``."""
    current = evaluate(view.query, db.state)
    patched = db[view.mv_table].monus(db[view.dt_delete_table]).union_all(db[view.dt_insert_table])
    return current == patched


def combined_invariant(db: Database, view: ViewDefinition, log: Log) -> bool:
    """:math:`\\mathbb{INV}_{C}`: ``PAST(L,Q) ≡ (MV ∸ ∇MV) ⊎ ΔMV``."""
    past = evaluate(past_query(view.query, log), db.state)
    patched = db[view.mv_table].monus(db[view.dt_delete_table]).union_all(db[view.dt_insert_table])
    return past == patched


def log_minimality_invariant(db: Database, log: Log) -> bool:
    """Weak minimality of the log: :math:`\\blacktriangle R \\subseteq R`."""
    return log.is_weakly_minimal()


def dt_minimality_invariant(db: Database, view: ViewDefinition) -> bool:
    """Weak minimality of the differential tables: :math:`\\triangledown MV \\subseteq MV`."""
    return db[view.dt_delete_table].issubbag(db[view.mv_table])
