"""Past and future queries (Section 2.5).

* ``FUTURE(T, Q)`` — evaluated *now*, returns the value ``Q`` will have
  after transaction ``T`` runs: :math:`\\widehat{\\mathcal{T}}(Q)`.
* ``PAST(L, Q)`` — evaluated in the current (post-update) state, returns
  the value ``Q`` had in the state before the changes recorded in log
  ``L``: :math:`\\widehat{\\mathcal{L}}(Q)`.

Future queries *anticipate* changes; past queries *compensate* for them.
Both are just substitution instances, which is the duality Section 4
exploits.
"""

from __future__ import annotations

from repro.algebra.expr import Expr
from repro.core.logs import Log
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.storage.database import Database

__all__ = ["future_query", "past_query", "transaction_substitution"]


def transaction_substitution(txn: UserTransaction, db: Database) -> FactoredSubstitution:
    """:math:`\\widehat{\\mathcal{T}}`: maps each updated :math:`R` to
    :math:`(R \\dot{-} \\nabla R) \\uplus \\triangle R`."""
    entries = {name: (txn.delete_expr(name), txn.insert_expr(name)) for name in txn.tables}
    schemas = {name: db.schema_of(name) for name in txn.tables}
    return FactoredSubstitution(entries, schemas)


def future_query(query: Expr, txn: UserTransaction, db: Database) -> Expr:
    """``FUTURE(T, Q)``: the value ``Q`` will have immediately after ``T``."""
    return transaction_substitution(txn, db).apply(query)


def past_query(query: Expr, log: Log) -> Expr:
    """``PAST(L, Q)``: the value ``Q`` had before the changes recorded in ``L``."""
    return log.substitution().apply(query)
