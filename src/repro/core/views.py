"""View definitions.

A view is a named query over *external* base tables.  The materialized
table ``MV`` and any auxiliary tables are derived from the view name via
:mod:`repro.core.naming` when a maintenance scenario installs the view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expr import Expr
from repro.algebra.schema import Schema
from repro.core import naming

__all__ = ["ViewDefinition"]


@dataclass(frozen=True)
class ViewDefinition:
    """A view: a name plus its defining bag-algebra query ``Q``."""

    name: str
    query: Expr

    @property
    def schema(self) -> Schema:
        """The view's result schema."""
        return self.query.schema()

    @property
    def mv_table(self) -> str:
        """Name of the materialized table ``MV``."""
        return naming.mv_name(self.name)

    @property
    def dt_delete_table(self) -> str:
        """Name of the differential table :math:`\\triangledown MV`."""
        return naming.dt_delete_name(self.name)

    @property
    def dt_insert_table(self) -> str:
        """Name of the differential table :math:`\\triangle MV`."""
        return naming.dt_insert_name(self.name)

    def base_tables(self) -> frozenset[str]:
        """Names of the base tables the view reads."""
        return self.query.tables()
