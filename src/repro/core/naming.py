"""Naming conventions for the internal (maintenance) tables.

The paper's auxiliary tables are real database tables (Section 2.3:
"a log is a collection of auxiliary base tables"), so we give them
deterministic names derived from the owning view and the base-table
name.  The ``__`` prefix marks them internal;
:class:`~repro.storage.database.Database` refuses user transactions
against internal tables.

Logs are namespaced per owning view.  The paper's ``makesafe_BL`` keeps
one log per maintained view; storing logs so that per-transaction work
is independent of the number of views is listed as future work
(Section 7) — see :class:`repro.extensions.sharedlog.SharedLog` for our
implementation of that extension.
"""

from __future__ import annotations

__all__ = [
    "log_delete_name",
    "log_insert_name",
    "mv_name",
    "dt_delete_name",
    "dt_insert_name",
    "view_of_mv",
    "is_mv_table",
]


def log_delete_name(owner: str, table: str) -> str:
    """Name of the log table :math:`\\blacktriangledown R` (recorded deletions)."""
    return f"__log_del__{owner}__{table}"


def log_insert_name(owner: str, table: str) -> str:
    """Name of the log table :math:`\\blacktriangle R` (recorded insertions)."""
    return f"__log_ins__{owner}__{table}"


def mv_name(view: str) -> str:
    """Name of the materialized table ``MV`` for a view."""
    return f"__mv__{view}"


def view_of_mv(table: str) -> str:
    """The owning view of an ``MV`` table name (identity for other names)."""
    prefix = "__mv__"
    return table[len(prefix):] if table.startswith(prefix) else table


def is_mv_table(table: str) -> bool:
    """Whether a table name is a reader-visible materialized-view table.

    ``MV`` tables are the only internal tables readers are served from,
    so they are the resources the Section 5.3 lock discipline protects;
    log and differential tables are maintenance-private.
    """
    return table.startswith("__mv__")


def dt_delete_name(view: str) -> str:
    """Name of the view differential table :math:`\\triangledown MV`."""
    return f"__dt_del__{view}"


def dt_insert_name(view: str) -> str:
    """Name of the view differential table :math:`\\triangle MV`."""
    return f"__dt_ins__{view}"
