"""Base-table logs (Section 2.3).

A log :math:`\\mathcal{L}` is a collection of auxiliary base tables
:math:`\\blacktriangledown R_i` (recorded deletions) and
:math:`\\blacktriangle R_i` (recorded insertions), one pair per tracked
base table.  The log records the transition from a past state
:math:`s_p` to the current state :math:`s_c`:

.. math::

    R_i(s_p) = ((R_i \\dot{-} \\blacktriangle R_i)
                \\uplus \\blacktriangledown R_i)(s_c)

:class:`Log` manages the pair of internal tables per tracked base table,
builds the substitution :math:`\\widehat{\\mathcal{L}}` for past queries,
and produces the assignment fragments used by ``makesafe_BL`` (Figure 3)
to extend the log while *keeping it weakly minimal* (Lemma 4), i.e.
preserving the invariant :math:`\\blacktriangle R_i \\subseteq R_i`:

.. math::

    \\blacktriangledown R_i :=
        \\blacktriangledown R_i \\uplus (\\nabla R_i \\dot{-} \\blacktriangle R_i)
    \\qquad
    \\blacktriangle R_i :=
        (\\blacktriangle R_i \\dot{-} \\nabla R_i) \\uplus \\triangle R_i
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Expr, Literal, Monus, TableRef, UnionAll, min_expr
from repro.core import naming
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.errors import TransactionError
from repro.storage.database import Database

__all__ = ["Log"]


class Log:
    """A log over a fixed set of tracked external tables."""

    def __init__(self, db: Database, tables: Iterable[str], *, owner: str = "shared") -> None:
        self._db = db
        self._tables = tuple(sorted(set(tables)))
        self._owner = owner

    @property
    def tables(self) -> tuple[str, ...]:
        """The tracked base tables."""
        return self._tables

    def table_names(self) -> tuple[str, ...]:
        """Names of all log tables (the ▼/▲ pair of every tracked table)."""
        names: list[str] = []
        for name in self._tables:
            names.append(naming.log_delete_name(self._owner, name))
            names.append(naming.log_insert_name(self._owner, name))
        return tuple(names)

    def canonical_rename(self) -> dict[str, str]:
        """Map this log's table names to owner-independent placeholders.

        Used for subplan fingerprinting: two views with identical queries
        produce structurally identical refresh deltas that differ only in
        their private log-table names; under this rename they fingerprint
        equal and can share one delta evaluation per group-refresh epoch.
        """
        rename: dict[str, str] = {}
        for name in self._tables:
            rename[naming.log_delete_name(self._owner, name)] = naming.log_delete_name("@", name)
            rename[naming.log_insert_name(self._owner, name)] = naming.log_insert_name("@", name)
        return rename

    def content_digests(self) -> tuple[tuple[str, str, str], ...]:
        """Per tracked table, digests of the current ``(▼R, ▲R)`` contents.

        Part of the delta-cache key: two per-view logs with equal recorded
        changes (the common case when same-shaped views refresh together)
        digest equal, independent of their table names.
        """
        from repro.exec.group import bag_digest

        return tuple(
            (
                name,
                bag_digest(self._db[naming.log_delete_name(self._owner, name)]),
                bag_digest(self._db[naming.log_insert_name(self._owner, name)]),
            )
            for name in self._tables
        )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Create the (empty) log tables as internal tables."""
        for name in self._tables:
            schema = self._db.schema_of(name)
            self._db.create_table(naming.log_delete_name(self._owner, name), schema, internal=True)
            self._db.create_table(naming.log_insert_name(self._owner, name), schema, internal=True)

    def uninstall(self) -> None:
        """Drop the log tables (inverse of :meth:`install`)."""
        for name in self._tables:
            self._db.drop_table(naming.log_delete_name(self._owner, name))
            self._db.drop_table(naming.log_insert_name(self._owner, name))

    def delete_ref(self, name: str) -> TableRef:
        """Reference to :math:`\\blacktriangledown R` for tracked table ``name``."""
        return self._db.ref(naming.log_delete_name(self._owner, name))

    def insert_ref(self, name: str) -> TableRef:
        """Reference to :math:`\\blacktriangle R` for tracked table ``name``."""
        return self._db.ref(naming.log_insert_name(self._owner, name))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True when no changes have been recorded since the last clear."""
        for name in self._tables:
            if self._db[naming.log_delete_name(self._owner, name)] or self._db[naming.log_insert_name(self._owner, name)]:
                return False
        return True

    def recorded_changes(self) -> int:
        """Total recorded tuples across all log tables."""
        total = 0
        for name in self._tables:
            total += len(self._db[naming.log_delete_name(self._owner, name)])
            total += len(self._db[naming.log_insert_name(self._owner, name)])
        return total

    def is_weakly_minimal(self) -> bool:
        """Check the invariant :math:`\\blacktriangle R \\subseteq R`."""
        for name in self._tables:
            if not self._db[naming.log_insert_name(self._owner, name)].issubbag(self._db[name]):
                return False
        return True

    # ------------------------------------------------------------------
    # The substitution L̂
    # ------------------------------------------------------------------

    def substitution(self) -> FactoredSubstitution:
        """:math:`\\widehat{\\mathcal{L}}`: maps :math:`R` to
        :math:`(R \\dot{-} \\blacktriangle R) \\uplus \\blacktriangledown R`.

        The *delete* component is the log's insert table and vice versa —
        past queries must undo recorded changes.
        """
        entries = {
            name: (self.insert_ref(name), self.delete_ref(name))  # (D, A) = (▲R, ▼R)
            for name in self._tables
        }
        schemas = {name: self._db.schema_of(name) for name in self._tables}
        # makesafe_BL maintains ▲R ⊆ R (Lemma 4), so the substitution is
        # weakly minimal by construction — provenance the static
        # classifier can rely on without a runtime subset check.
        return FactoredSubstitution(entries, schemas, claims_weak_minimality=True)

    # ------------------------------------------------------------------
    # Assignment fragments for Figure 3
    # ------------------------------------------------------------------

    def extend_assignments(self, txn: UserTransaction, *, strict: bool = False) -> dict[str, Expr]:
        """The log-update half of ``makesafe_BL[T]``.

        Returns assignments for the log tables of every *tracked* table
        the transaction touches.  Updates to untracked tables are
        ignored — they cannot affect any view defined over the tracked
        tables — unless ``strict=True``, in which case they raise.
        """
        untracked = txn.tables - set(self._tables)
        if strict and untracked:
            raise TransactionError(
                f"transaction updates tables not covered by the log: {sorted(untracked)}"
            )
        assignments: dict[str, Expr] = {}
        for name in sorted(txn.tables & set(self._tables)):
            nabla = txn.delete_expr(name)
            delta = txn.insert_expr(name)
            log_del = self.delete_ref(name)
            log_ins = self.insert_ref(name)
            # ▼R := ▼R ⊎ (∇R ∸ ▲R)
            assignments[log_del.name] = UnionAll(log_del, Monus(nabla, log_ins))
            # ▲R := (▲R ∸ ∇R) ⊎ ΔR
            assignments[log_ins.name] = UnionAll(Monus(log_ins, nabla), delta)
        return assignments

    def extend_patches(self, txn: UserTransaction, *, strict: bool = False) -> dict[str, tuple[Expr, Expr]]:
        """The log extension of ``makesafe_BL[T]`` in patch form.

        Identical semantics to :meth:`extend_assignments`, but expressed
        as delta patches so the per-transaction log overhead is
        proportional to the transaction's own delta — the paper's
        "little overhead since we only need to record the changes".
        """
        untracked = txn.tables - set(self._tables)
        if strict and untracked:
            raise TransactionError(
                f"transaction updates tables not covered by the log: {sorted(untracked)}"
            )
        empty_of = {name: Literal(Bag.empty(), self._db.schema_of(name)) for name in self._tables}
        patches: dict[str, tuple[Expr, Expr]] = {}
        for name in sorted(txn.tables & set(self._tables)):
            nabla = txn.delete_expr(name)
            delta = txn.insert_expr(name)
            log_ins = self.insert_ref(name)
            # ▼R := ▼R ⊎ (∇R ∸ ▲R)        — insert-only patch
            patches[self.delete_ref(name).name] = (empty_of[name], Monus(nabla, log_ins))
            # ▲R := (▲R ∸ ∇R) ⊎ ΔR        — delete/insert patch
            patches[log_ins.name] = (nabla, delta)
        return patches

    # ------------------------------------------------------------------
    # Net-effect compaction
    # ------------------------------------------------------------------

    def compaction_patches(self) -> dict[str, tuple[Expr, Expr]]:
        """Patches cancelling the common part of each ``(▼R, ▲R)`` pair.

        Removing :math:`\\blacktriangledown R \\min \\blacktriangle R`
        from *both* sides is sound whenever the log is weakly minimal
        (Lemma 4, :math:`\\blacktriangle R \\subseteq R`): the past state
        :math:`(R \\dot{-} \\blacktriangle R) \\uplus \\blacktriangledown R`
        is unchanged when the same bag is dropped from the subtrahend and
        the addend, and the shrunken :math:`\\blacktriangle R' \\subseteq
        \\blacktriangle R \\subseteq R` stays weakly minimal.  This is the
        strong-minimality normalization of Section 4.1 applied to the
        *log* instead of the view differentials: afterwards no tuple is
        recorded as both deleted and re-inserted, so ``PAST(L, Q)`` and
        every post-update delta scale with the **net** change.
        """
        patches: dict[str, tuple[Expr, Expr]] = {}
        for name in self._tables:
            schema = self._db.schema_of(name)
            empty = Literal(Bag.empty(), schema)
            common = min_expr(self.delete_ref(name), self.insert_ref(name))
            patches[naming.log_delete_name(self._owner, name)] = (common, empty)
            patches[naming.log_insert_name(self._owner, name)] = (common, empty)
        return patches

    def compact(self, *, counter: CostCounter | None = None) -> None:
        """Apply :meth:`compaction_patches` as one simultaneous transaction."""
        from repro.core.plan import MaintenancePlan

        MaintenancePlan(patches=self.compaction_patches()).execute(self._db, counter=counter)

    def clear_assignments(self) -> dict[str, Expr]:
        """Assignments implementing :math:`\\mathcal{L} := \\phi`."""
        assignments: dict[str, Expr] = {}
        for name in self._tables:
            schema = self._db.schema_of(name)
            assignments[naming.log_delete_name(self._owner, name)] = Literal(Bag.empty(), schema)
            assignments[naming.log_insert_name(self._owner, name)] = Literal(Bag.empty(), schema)
        return assignments
