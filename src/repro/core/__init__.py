"""The paper's contribution: deferred view maintenance.

* :mod:`repro.core.views` — view definitions,
* :mod:`repro.core.transactions` — simple transactions (∇R / ΔR pairs),
* :mod:`repro.core.substitution` — factored substitutions and minimality,
* :mod:`repro.core.logs` — base-table logs (▼R / ▲R),
* :mod:`repro.core.timetravel` — PAST and FUTURE queries,
* :mod:`repro.core.differential` — the Figure 2 Del/Add algorithm and the
  pre-/post-update incremental queries,
* :mod:`repro.core.invariants` — the Figure 1 invariants as checks,
* :mod:`repro.core.scenarios` — the Figure 3 maintenance algorithms,
* :mod:`repro.core.policies` — refresh policies and the simulated driver.
"""

from repro.core.differential import (
    differentiate,
    post_update_delta,
    pre_update_delta,
    strongly_minimal_pair,
)
from repro.core.logs import Log
from repro.core.policies import (
    LogThresholdPolicy,
    MaintenanceDriver,
    MaintenancePolicy,
    OnDemandPolicy,
    OnQueryPolicy,
    PeriodicRefresh,
    Policy1,
    Policy2,
)
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
    Scenario,
)
from repro.core.substitution import FactoredSubstitution
from repro.core.timetravel import future_query, past_query, transaction_substitution
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition

__all__ = [
    "ViewDefinition",
    "UserTransaction",
    "FactoredSubstitution",
    "Log",
    "future_query",
    "past_query",
    "transaction_substitution",
    "differentiate",
    "pre_update_delta",
    "post_update_delta",
    "strongly_minimal_pair",
    "Scenario",
    "ImmediateScenario",
    "BaseLogScenario",
    "DiffTableScenario",
    "CombinedScenario",
    "MaintenancePolicy",
    "LogThresholdPolicy",
    "Policy1",
    "Policy2",
    "PeriodicRefresh",
    "OnDemandPolicy",
    "OnQueryPolicy",
    "MaintenanceDriver",
]
