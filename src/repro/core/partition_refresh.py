"""Partition-pruned refresh paths for the deferred scenarios.

:class:`PartitionedMaintenance` is the bridge between one scenario
(BL or C) and a :class:`~repro.storage.partition.PartitionedDatabase`.
It is built once at install time by :meth:`PartitionedMaintenance.probe`,
which re-runs the static pruning analysis of
:mod:`repro.analysis.partitioning` (the same verdict ``repro lint``
reports as RVM701/RVM702) and returns ``None`` whenever the partitioned
fast path would not be sound or not be profitable:

* the database is not partitioned (or lacks the fast-apply API),
* the engine is the interpreted oracle (kept byte-identical to the
  unpartitioned semantics on purpose — it is the reference the
  benchmarks digest against),
* some base table of the view has no declared partition spec,
* same-domain tables have drifted layouts (RVM702),
* the maintenance deltas cannot be fully pruned (RVM701), or
* the view's output does not carry a partition-key column (the MV could
  not be patched partition-by-partition).

When the probe succeeds, the MV is co-declared into the base tables'
partition domain, and the scenarios route refresh/propagate/partial
refresh through:

* :meth:`refresh_log` — ``refresh_BL``'s shape: evaluate the *pruned*
  post-update deltas under the view lock, then install the MV patch and
  the log clears in one :meth:`~repro.storage.partition.PartitionedDatabase.apply_parts`
  epoch (delta-proportional, partition-at-a-time, crash-atomic);
* :meth:`pruned_deltas` — the propagate-side rewrite for ``INV_C``
  (fold into the differential tables stays on the generic plan path:
  the differentials are delta-sized already);
* :meth:`partial_refresh` — apply the pending differentials to the MV
  through ``apply_parts`` and clear them in the same epoch.

Every pruning decision is recorded on the scenario's
:class:`~repro.algebra.evaluation.CostCounter` (``partition_prunes``,
``partition_fallbacks``, ``partitions_touched``) — the benchmark and
the regression gate's ``--partition-guard`` read those counters.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.algebra.bag import Bag
from repro.algebra.expr import Expr
from repro.analysis.partitioning import analyze_deltas, key_positions, prune_expr
from repro.core.differential import post_update_delta
from repro.errors import ReproError
from repro.robustness.faults import fault_point

__all__ = ["PartitionedMaintenance"]

_FAST_APPLY_API = ("partition_spec", "affected_keys", "restrict", "apply_parts")


class PartitionedMaintenance:
    """Pruned maintenance machinery for one installed view."""

    def __init__(
        self,
        db,
        view,
        log,
        specs: Mapping[str, object],
        log_map: Mapping[str, str],
        delete_expr: Expr,
        insert_expr: Expr,
        mv_position: int,
        domain: str,
    ) -> None:
        self.db = db
        self.view = view
        self.log = log
        self.specs = dict(specs)
        self.log_map = dict(log_map)
        self.delete_expr = delete_expr
        self.insert_expr = insert_expr
        self.mv_position = mv_position
        self.domain = domain

    # ------------------------------------------------------------------
    # Install-time probe
    # ------------------------------------------------------------------

    @classmethod
    def probe(cls, scenario) -> PartitionedMaintenance | None:
        """Build the fast path for ``scenario``, or ``None`` if ineligible."""
        db = scenario.db
        if any(not hasattr(db, name) for name in _FAST_APPLY_API):
            return None
        if db.exec_mode == "interpreted":
            # The interpreted oracle stays on unpartitioned semantics:
            # it is the digest baseline the partitioned engines must
            # reproduce bit-identically.
            return None
        view = scenario.view
        log = scenario.log
        base = sorted(view.base_tables())
        specs = {}
        for table in base:
            spec = db.partition_spec(table)
            if spec is None:
                return None
            specs[table] = spec
        for i, first in enumerate(base):
            for second in base[i + 1 :]:
                a, b = specs[first], specs[second]
                if a.domain == b.domain and not a.co_partitioned(b):
                    return None  # RVM702: layout drift
        log_map = {}
        for table in base:
            log_map[log.delete_ref(table).name] = table
            log_map[log.insert_ref(table).name] = table
        delete_expr, insert_expr = post_update_delta(log, view.query)
        plan = analyze_deltas((delete_expr, insert_expr), specs, log_map)
        if not plan.prunable:
            return None  # RVM701: whole-table fallback
        keyed = key_positions(view.query, specs)
        if not keyed:
            return None
        mv_position = min(keyed)
        domain = keyed[mv_position]
        support = cls(
            db, view, log, specs, log_map, delete_expr, insert_expr, mv_position, domain
        )
        support._declare_mv()
        return support

    def _declare_mv(self) -> None:
        """Co-declare the MV into the base tables' partition domain."""
        representative = next(
            spec for spec in self.specs.values() if spec.domain == self.domain
        )
        schema = self.view.schema
        self.db.declare_partitioning(
            self.view.mv_table,
            schema.attributes[self.mv_position],
            parts=representative.parts,
            scheme=representative.scheme,
            bounds=representative.bounds,
            domain=self.domain,
        )

    # ------------------------------------------------------------------
    # Epoch-time helpers
    # ------------------------------------------------------------------

    def pending_deltas(self) -> dict[str, Bag]:
        """Recorded per-base-table log contents (▼R ⊎ ▲R), non-empty only."""
        pending: dict[str, Bag] = {}
        for table in self.specs:
            delete = self.db[self.log.delete_ref(table).name]
            insert = self.db[self.log.insert_ref(table).name]
            if delete or insert:
                pending[table] = delete.union_all(insert)
        return pending

    def affected_keys(self, pending: Mapping[str, Bag]) -> dict[str, set]:
        return self.db.affected_keys(pending)

    def pruned_deltas(self, keys: Mapping[str, set], *, counter=None) -> tuple[Expr, Expr] | None:
        """The pruned ``(delete, insert)`` delta expressions for this epoch.

        Returns ``None`` when a reference unexpectedly fails to prune
        (the caller falls back to the whole-table plan).
        """

        def restrict(table: str, domain: str) -> Bag:
            return self.db.restrict(table, keys.get(domain, ()), counter=counter)

        delete = prune_expr(
            self.delete_expr, self.specs, self.log_map, restrict, counter=counter
        )
        insert = prune_expr(
            self.insert_expr, self.specs, self.log_map, restrict, counter=counter
        )
        if delete.fallbacks or insert.fallbacks:
            return None
        return delete.expr, insert.expr

    def log_clears(self) -> dict[str, Bag]:
        return {name: Bag.empty() for name in self.log.table_names()}

    # ------------------------------------------------------------------
    # Scenario fast paths
    # ------------------------------------------------------------------

    def refresh_log(self, scenario) -> bool:
        """``refresh_BL`` via pruning + partitioned apply.  True = handled."""
        counter = scenario.counter
        with obs.span(
            "refresh",
            view=self.view.name,
            scenario=scenario.tag,
            partitioned=True,
            log_watermark=self.log.recorded_changes() if obs.telemetry_enabled() else 0,
            counter=counter,
        ):
            pending = self.pending_deltas()
            if not pending:
                scenario._note_fresh(0)
                return True
            keys = self.affected_keys(pending)
            pruned = self.pruned_deltas(keys, counter=counter)
            if pruned is None:
                return False
            delete_expr, insert_expr = pruned
            with scenario._refresh_lock(f"refresh_{scenario.tag}"):
                fault_point("crash-mid-refresh")
                delete_bag = self.db.evaluate(delete_expr, counter=counter)
                insert_bag = self.db.evaluate(insert_expr, counter=counter)
                self.db.apply_parts(
                    {self.view.mv_table: (delete_bag, insert_bag)},
                    clears=self.log_clears(),
                    counter=counter,
                )
        scenario._note_fresh(0)
        return True

    def chunked_group_tasks(self, scenario, *, order: int, hot_threshold: int = 64) -> list | None:
        """Per-partition-chunk :class:`~repro.exec.group.GroupTask`\\ s.

        Returns ``None`` when per-chunk evaluation is not provably sound
        (the static plan is not chunk-safe) — the caller falls back to
        the whole-log group task.  Otherwise: one read-only compute task
        per affected partition chunk (hot partitions sub-split by
        :func:`~repro.exec.group.split_hot_partitions`), declared under
        partition-granular resources so independent chunks of one view
        evaluate in parallel, plus a finalize task whose apply merges
        the per-chunk deltas — they are disjoint by key, so they
        ⊎-sum to the whole-log deltas — and runs the scenario's normal
        group apply once.
        """
        from repro.exec.group import GroupTask, partition_resource, split_hot_partitions

        plan = analyze_deltas((self.delete_expr, self.insert_expr), self.specs, self.log_map)
        if not plan.chunkable:
            return None
        pending = self.pending_deltas()
        keys = sorted(self.affected_keys(pending).get(self.domain, ()), key=repr)
        spec = next(s for s in self.specs.values() if s.domain == self.domain)
        by_pid: dict[int, list] = {}
        for key in keys:
            by_pid.setdefault(spec.partition_of(key), []).append(key)
        chunks = split_hot_partitions(by_pid, hot_threshold) or [("p-none", ())]
        view = self.view
        log_tables = frozenset(self.log.table_names())
        results: dict[str, tuple[Bag, Bag]] = {}

        def make_compute(chunk_keys: tuple):
            def compute(counter):
                chunk = frozenset(chunk_keys)
                log_bags = {name: self.db[name] for name in log_tables}

                def restrict(table: str, domain: str) -> Bag:
                    return self.db.restrict(table, chunk_keys, counter=counter)

                delete = prune_expr(
                    self.delete_expr, self.specs, self.log_map, restrict,
                    chunk_keys=chunk, log_bags=log_bags, counter=counter,
                )
                insert = prune_expr(
                    self.insert_expr, self.specs, self.log_map, restrict,
                    chunk_keys=chunk, log_bags=log_bags, counter=counter,
                )
                if delete.fallbacks or insert.fallbacks:
                    raise ReproError(
                        f"chunked refresh of {view.name!r}: runtime rewrite "
                        "fell back although the static plan was prunable"
                    )
                return (
                    self.db.evaluate(delete.expr, counter=counter),
                    self.db.evaluate(insert.expr, counter=counter),
                )

            return compute

        def prime():
            self.db.prime(self.delete_expr, self.insert_expr, counter=scenario.counter)
            for table in self.specs:
                # Force-build the key index parallel restricts will probe.
                self.db.restrict(table, ())

        tasks = []
        all_pids: set[int] = set()
        for label, chunk_keys in chunks:
            pids = {spec.partition_of(key) for key in chunk_keys}
            all_pids |= pids
            tasks.append(
                GroupTask(
                    name=f"{view.name}[{label}]",
                    order=order,
                    key=lambda: None,
                    compute=make_compute(chunk_keys),
                    apply=lambda deltas, label=label: results.__setitem__(label, deltas),
                    reads=log_tables
                    | {partition_resource(t, pid) for t in self.specs for pid in pids},
                    writes=frozenset(),
                    prime=prime,
                )
            )

        def finalize_apply(_deltas) -> None:
            merged: list[dict] = [{}, {}]
            for label, __ in chunks:
                for side, bag in enumerate(results[label]):
                    counts = merged[side]
                    for row, count in bag.items():
                        counts[row] = counts.get(row, 0) + count
            scenario._apply_group_deltas(
                (Bag.from_counts(merged[0]), Bag.from_counts(merged[1]))
            )

        # Differentials already pending from an earlier propagate (a C
        # view) land on partitions this epoch's log never mentioned —
        # widen the declared write set to cover them.
        state = self.db.state
        for name in (
            getattr(view, "dt_delete_table", None),
            getattr(view, "dt_insert_table", None),
        ):
            if name is not None and name in state:
                for row in state[name].support:
                    all_pids.add(spec.partition_of(row[self.mv_position]))

        tasks.append(
            GroupTask(
                name=f"{view.name}[finalize]",
                order=order,
                key=lambda: None,
                compute=lambda counter: (Bag.empty(), Bag.empty()),
                apply=finalize_apply,
                reads=frozenset(),
                writes=frozenset(scenario._group_writes() - {view.mv_table})
                | {partition_resource(view.mv_table, pid) for pid in all_pids},
            )
        )
        return tasks

    def apply_differentials(self, scenario) -> None:
        """The ``refresh_DT`` apply, partition-at-a-time.

        Installs the pending ∇MV/ΔMV patch and the differential clears
        in one ``apply_parts`` epoch — same effect as
        ``DiffTableScenario._apply_dt_plan``, but mutating only the
        affected partitions' slices instead of copying the MV dict.
        """
        view = self.view
        empty = Bag.empty()
        self.db.apply_parts(
            {view.mv_table: (self.db[view.dt_delete_table], self.db[view.dt_insert_table])},
            clears={view.dt_delete_table: empty, view.dt_insert_table: empty},
            counter=scenario.counter,
        )
