"""Schemas: ordered attribute names for tables and query results.

The bag kernel (:mod:`repro.algebra.bag`) is purely positional; schemas
attach *names* to positions so that selections and projections can be
written against attribute names and resolved to positions once, when an
expression is built.

Product concatenates schemas.  Duplicate attribute names may legally
arise from a self-join; resolution of such a name then raises
:class:`~repro.errors.SchemaError` (ambiguous reference) — the SQL front
end avoids this by qualifying attributes with range-variable prefixes
(``c.custId``), exactly like the paper's Example 1.1.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An immutable, ordered sequence of attribute names."""

    __slots__ = ("_attrs", "_positions")

    def __init__(self, attrs: Iterable[str]) -> None:
        attrs = tuple(attrs)
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(f"attribute names must be non-empty strings, got {attr!r}")
        self._attrs = attrs
        positions: dict[str, int | None] = {}
        for index, attr in enumerate(attrs):
            # A name seen twice maps to None: resolvable only by position.
            positions[attr] = index if attr not in positions else None
        self._positions = positions

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names, in order."""
        return self._attrs

    @property
    def arity(self) -> int:
        return len(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __contains__(self, attr: str) -> bool:
        return attr in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return f"Schema({list(self._attrs)!r})"

    def index_of(self, attr: str) -> int:
        """Resolve an attribute name to its position.

        Raises :class:`SchemaError` when the name is absent or ambiguous.
        """
        if attr not in self._positions:
            raise SchemaError(
                f"unknown attribute {attr!r}; schema has {list(self._attrs)}",
                attribute=attr,
            )
        position = self._positions[attr]
        if position is None:
            raise SchemaError(
                f"ambiguous attribute {attr!r} in schema {list(self._attrs)}",
                attribute=attr,
            )
        return position

    def positions_of(self, attrs: Iterable[str]) -> tuple[int, ...]:
        """Resolve a sequence of attribute names to positions, in order."""
        return tuple(self.index_of(attr) for attr in attrs)

    def concat(self, other: Schema) -> Schema:
        """The schema of a product: this schema followed by ``other``."""
        return Schema(self._attrs + other._attrs)

    def project(self, attrs: Iterable[str]) -> Schema:
        """The schema after projecting onto ``attrs`` (validates names)."""
        attrs = tuple(attrs)
        self.positions_of(attrs)
        return Schema(attrs)

    def rename(self, mapping: dict[str, str]) -> Schema:
        """A schema with attributes renamed per ``mapping`` (others kept)."""
        return Schema(tuple(mapping.get(attr, attr) for attr in self._attrs))

    def qualify(self, prefix: str) -> Schema:
        """Prefix every attribute with ``prefix.`` (range-variable naming)."""
        return Schema(tuple(f"{prefix}.{attr}" for attr in self._attrs))

    def union_compatible(self, other: Schema) -> bool:
        """Whether two schemas may be combined by ⊎ / ∸ (same arity)."""
        return self.arity == other.arity
