"""Columnar batches: the value representation of the vectorized engine.

A :class:`ColumnBatch` holds the same information as a :class:`Bag` —
a finite multiset of same-arity tuples — but decomposed into parallel
*value columns* plus one integer *multiplicity vector*:

====================  =============================================
``columns[j][i]``     value of column ``j`` in physical row ``i``
``mults[i]``          signed multiplicity of physical row ``i``
====================  =============================================

Unlike a bag, a batch is **not canonical**: the same logical row may
appear in several physical positions, and multiplicities may be
*negative*.  The logical content is the per-row *net*: summing the
multiplicities of every physical occurrence of a row and dropping the
rows that net to zero recovers the bag (:meth:`to_bag`).  Batches
produced from bags, and batches flowing through the vectorized
kernels, always net to non-negative counts, so the conversion is
lossless in both directions.

The representation buys three things the dict-of-tuples bag cannot:

* **projection is a column gather** — ``Π_A`` reorders/duplicates
  column references in O(arity), touching no rows;
* **union-all and patch are appends** — ``X ⊎ Y`` concatenates columns
  and a patch appends the insert rows as-is plus the (clamped) delete
  rows with negated multiplicities, deferring consolidation;
* **linear operators distribute over the net** — σ, Π, map, ⊎, × and
  equi-joins may run directly on non-canonical inputs (multiplicities
  are summed or multiplied per physical row, and products of nets are
  nets).  Only the *nonlinear* operators — ε (dedup), ∸ (monus), min —
  must :meth:`consolidate` first, exactly the boundary at which the
  vectorized executor nets a batch.

The clamping invariant: when a patch ``(R ∸ delete) ⊎ insert`` is
appended, the delete side must first be clamped to the multiplicities
actually present (``delete min R``, what :meth:`Bag.patch` floors
away), otherwise the net would dip below zero and nonlinear operators
downstream would see phantom rows.  :meth:`append_patch` takes the
pre-patch bag and clamps internally.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.algebra.bag import Bag, Row
from repro.robustness.faults import fault_point

__all__ = ["ColumnBatch"]


class ColumnBatch:
    """A columnar, possibly non-canonical encoding of one bag.

    ``columns`` is a tuple of equal-length lists (one per attribute);
    ``mults`` is the parallel list of signed multiplicities.  Column
    lists may be *shared* between batches (:meth:`gather` shares, it
    never copies) — treat them as frozen unless you own the batch
    (the vectorized executor's table cache appends in place, which is
    safe because every derived batch is guarded by version stamps).
    """

    __slots__ = ("columns", "mults", "arity")

    def __init__(self, columns: tuple[list, ...], mults: list[int], arity: int | None = None) -> None:
        self.columns = columns
        self.mults = mults
        self.arity = len(columns) if arity is None else arity

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, arity: int = 0) -> ColumnBatch:
        return cls(tuple([] for _ in range(arity)), [], arity)

    @classmethod
    def from_bag(cls, bag: Bag) -> ColumnBatch:
        """Decompose a bag into columns (canonical: distinct rows, positive mults)."""
        return cls.from_pairs(bag.items(), bag.arity or 0)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Row, int]], arity: int) -> ColumnBatch:
        """Build a batch from ``(row, multiplicity)`` pairs."""
        mults: list[int] = []
        rows: list[Row] = []
        for row, count in pairs:
            rows.append(row)
            mults.append(count)
        if not rows:
            return cls.empty(arity)
        columns = tuple([row[j] for row in rows] for j in range(arity))
        return cls(columns, mults, arity)

    def to_bag(self) -> Bag:
        """Net the physical rows back into a canonical bag.

        Rows netting to zero disappear; the batches the vectorized
        engine produces never net negative (see the module docstring),
        and :class:`Bag` drops non-positive counts anyway.
        """
        counts: dict[Row, int] = {}
        if self.arity == 0:
            total = sum(self.mults)
            return Bag(counts={(): total}) if total > 0 else Bag.empty()
        for row, count in zip(zip(*self.columns), self.mults):
            counts[row] = counts.get(row, 0) + count
        return Bag(counts=counts)

    def net_counts(self) -> dict[Row, int]:
        """The per-row net multiplicities (zeros removed, sign kept)."""
        counts: dict[Row, int] = {}
        if self.arity == 0:
            total = sum(self.mults)
            return {(): total} if total else {}
        for row, count in zip(zip(*self.columns), self.mults):
            new = counts.get(row, 0) + count
            if new:
                counts[row] = new
            else:
                counts.pop(row, None)
        return counts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *physical* rows (not the logical bag size)."""
        return len(self.mults)

    def __bool__(self) -> bool:
        return bool(self.mults)

    def rows(self) -> Iterator[tuple[Row, int]]:
        """Iterate physical ``(row, signed multiplicity)`` pairs."""
        if self.arity == 0:
            for count in self.mults:
                yield (), count
            return
        yield from zip(zip(*self.columns), self.mults)

    # ------------------------------------------------------------------
    # Structural kernels
    # ------------------------------------------------------------------

    def gather(self, positions: tuple[int, ...]) -> ColumnBatch:
        """Projection as an O(arity) column gather — rows are untouched.

        The gathered batch *shares* column lists and the multiplicity
        vector with this one.
        """
        if not self.mults:
            # Empty batches may carry a collapsed arity (e.g. the
            # runtime-empty short-circuit); gather cannot index into
            # columns that were never materialized.
            return ColumnBatch.empty(len(positions))
        return ColumnBatch(tuple(self.columns[position] for position in positions), self.mults, len(positions))

    def concat(self, other: ColumnBatch) -> ColumnBatch:
        """Union-all as a column-wise append (multiplicities concatenate)."""
        if not self.mults:
            return other
        if not other.mults:
            return self
        arity = self.arity if self.columns or self.mults else other.arity
        columns = tuple(
            self.columns[j] + other.columns[j] for j in range(min(len(self.columns), len(other.columns)))
        )
        return ColumnBatch(columns, self.mults + other.mults, arity)

    def consolidate(self) -> ColumnBatch:
        """Net duplicates away: one physical row per logical row, net > 0.

        The boundary operation before nonlinear kernels (ε, ∸, min) and
        the periodic compaction of delta-appended table batches.
        """
        counts = self.net_counts()
        return ColumnBatch.from_pairs(((row, count) for row, count in counts.items() if count > 0), self.arity)

    def append_patch(self, delete: Bag, insert: Bag, before: Bag) -> None:
        """Apply ``(R ∸ delete) ⊎ insert`` in place as an O(|delta|) append.

        ``before`` is the table value the patch was applied to; the
        delete side is clamped against it (mirroring ``Bag.patch``'s
        floor at zero copies) so the batch keeps netting exactly to the
        post-patch bag.  Only the owner of the batch may call this.

        Exception-safe by stage-and-swap: the appended tail is built in
        staging lists first and committed with per-column ``extend``
        calls only once complete, so an error raised mid-append (the
        ``crash-mid-consolidate`` fault point sits on the seam) can
        never leave ragged columns — a torn batch would silently corrupt
        every later read of the table.
        """
        arity = self.arity
        staged_columns: tuple[list, ...] = tuple([] for _ in range(arity))
        staged_mults: list[int] = []
        for row, count in insert.items():
            for j in range(arity):
                staged_columns[j].append(row[j])
            staged_mults.append(count)
        for row, count in delete.items():
            clamped = min(count, before.multiplicity(row))
            if clamped <= 0:
                continue
            for j in range(arity):
                staged_columns[j].append(row[j])
            staged_mults.append(-clamped)
        fault_point("crash-mid-consolidate")
        for j in range(arity):
            self.columns[j].extend(staged_columns[j])
        self.mults.extend(staged_mults)

    def __repr__(self) -> str:
        return f"ColumnBatch(arity={self.arity}, physical_rows={len(self.mults)})"
