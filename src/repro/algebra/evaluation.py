"""Evaluation of bag-algebra expressions against database states.

``evaluate(expr, state)`` computes :math:`Q(s)` for a state ``s`` given as
a mapping from table names to :class:`~repro.algebra.bag.Bag` values.

Two production concerns are handled here rather than in the AST:

* **Common-subexpression memoization.**  The differential rewrite of
  Figure 2 produces expressions with heavily shared subtrees (``E``,
  ``Del(η,E)`` and ``E ∸ Del(η,E)`` all appear repeatedly).  The
  evaluator memoizes on structural equality within one call, so each
  distinct subexpression is computed once.

* **Cost accounting.**  A :class:`CostCounter` tallies the number of
  tuples flowing through each operator.  Wall-clock timings on a laptop
  are noisy; the tuple-operation counts give the experiments a
  deterministic second signal, mirroring how the paper argues about
  per-transaction overhead and refresh work.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.algebra.bag import Bag, Row
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import And, Attr, Comparison, Predicate
from repro.errors import ReproError, SchemaError, UnknownTableError

__all__ = ["evaluate", "CostCounter"]


@dataclass
class CostCounter:
    """Accumulates tuple-operation counts across evaluations.

    ``tuples_out`` counts tuples produced by every operator application
    (memoized hits are not recounted — shared work is shared).
    ``by_operator`` breaks the same total down per operator name.

    The compiled executor (:mod:`repro.exec`) additionally reports how
    its caches behaved: ``plan_hits``/``plan_misses`` count physical-plan
    cache lookups, ``memo_hits`` counts version-stamped subexpression
    results reused across ``evaluate`` calls, and ``index_probes`` counts
    hash-index key lookups (each probe is also charged one tuple-op under
    the probing operator, so ``tuples_out`` remains comparable between
    the interpreted and compiled paths).
    """

    tuples_out: int = 0
    evaluations: int = 0
    by_operator: dict[str, int] = field(default_factory=dict)
    plan_hits: int = 0
    plan_misses: int = 0
    memo_hits: int = 0
    index_probes: int = 0
    delta_cache_hits: int = 0
    partitions_touched: int = 0
    partition_prunes: int = 0
    partition_fallbacks: int = 0

    def record(self, operator: str, produced: int) -> None:
        self.tuples_out += produced
        self.evaluations += 1
        self.by_operator[operator] = self.by_operator.get(operator, 0) + produced

    def record_probes(self, operator: str, probes: int) -> None:
        """Charge ``probes`` index-key lookups against ``operator``."""
        self.index_probes += probes
        self.record(operator, probes)

    def record_partitions(self, touched: int) -> None:
        """Note that a partitioned apply touched ``touched`` partitions.

        Bookkeeping only — partition routing moves no tuples, so this
        does not feed ``tuples_out``.
        """
        self.partitions_touched += touched

    def record_prune(self, *, fallback: bool = False) -> None:
        """Note one partition-pruning decision on a maintenance plan."""
        if fallback:
            self.partition_fallbacks += 1
        else:
            self.partition_prunes += 1

    def snapshot(self) -> dict[str, object]:
        """A plain-dict summary (useful for report tables).

        Per-operator totals are nested under ``"operators"`` so they can
        never collide with the top-level keys.
        """
        return {
            "tuples_out": self.tuples_out,
            "evaluations": self.evaluations,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "memo_hits": self.memo_hits,
            "index_probes": self.index_probes,
            "delta_cache_hits": self.delta_cache_hits,
            "partitions_touched": self.partitions_touched,
            "partition_prunes": self.partition_prunes,
            "partition_fallbacks": self.partition_fallbacks,
            "operators": dict(self.by_operator),
        }

    def absorb(self, other: CostCounter) -> None:
        """Fold another counter's totals into this one.

        Used by the parallel group scheduler: each worker accounts into a
        private counter, and the workers' totals are merged back in task
        order so the aggregate is independent of thread interleaving.
        """
        self.tuples_out += other.tuples_out
        self.evaluations += other.evaluations
        for operator, produced in other.by_operator.items():
            self.by_operator[operator] = self.by_operator.get(operator, 0) + produced
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.memo_hits += other.memo_hits
        self.index_probes += other.index_probes
        self.delta_cache_hits += other.delta_cache_hits
        self.partitions_touched += other.partitions_touched
        self.partition_prunes += other.partition_prunes
        self.partition_fallbacks += other.partition_fallbacks

    def reset(self) -> None:
        self.tuples_out = 0
        self.evaluations = 0
        self.by_operator.clear()
        self.plan_hits = 0
        self.plan_misses = 0
        self.memo_hits = 0
        self.index_probes = 0
        self.delta_cache_hits = 0
        self.partitions_touched = 0
        self.partition_prunes = 0
        self.partition_fallbacks = 0


def evaluate(
    expr: Expr,
    state: Mapping[str, Bag],
    *,
    counter: CostCounter | None = None,
    memo: dict[Expr, Bag] | None = None,
) -> Bag:
    """Evaluate ``expr`` in ``state`` and return the resulting bag.

    ``memo`` may be supplied to share memoized results across several
    ``evaluate`` calls against the *same* state (e.g. when a transaction
    evaluates many assignment right-hand sides simultaneously).

    .. warning::

        The memo is keyed by expression structure only — it knows nothing
        about which state produced an entry.  Reusing one ``memo`` dict
        across calls with *different* states returns stale results from
        the first state.  Callers must create a fresh memo per state (as
        :meth:`Database.apply` does).  For safe reuse *across* state
        changes, use the compiled executor (:mod:`repro.exec`), whose
        result cache is invalidated by per-table version stamps.
    """
    if memo is None:
        memo = {}
    return _eval(expr, state, counter, memo)


# ----------------------------------------------------------------------
# Hash-join fast path
# ----------------------------------------------------------------------


def _conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten a conjunction into its conjuncts."""
    if isinstance(predicate, And):
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return [predicate]


def _equijoin_keys(
    predicate: Predicate, schema, left_arity: int
) -> tuple[list[tuple[int, int]], list[Predicate]]:
    """Split a predicate into cross-operand equality keys and a residual.

    Each key is ``(left_position, right_position)`` with the right
    position relative to the right operand.  Conjuncts that are not
    attribute equalities spanning the two operands stay in the residual.
    """
    keys: list[tuple[int, int]] = []
    residual: list[Predicate] = []
    for conjunct in _conjuncts(predicate):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        ):
            try:
                first = schema.index_of(conjunct.left.name)
                second = schema.index_of(conjunct.right.name)
            except SchemaError:  # ambiguous in the joint schema: leave it
                residual.append(conjunct)
                continue
            if first < left_arity <= second:
                keys.append((first, second - left_arity))
                continue
            if second < left_arity <= first:
                keys.append((second, first - left_arity))
                continue
        residual.append(conjunct)
    return keys, residual


def _hash_join(
    expr: Select,
    product: Product,
    state: Mapping[str, Bag],
    counter: CostCounter | None,
    memo: dict[Expr, Bag],
) -> Bag | None:
    """Evaluate ``σ_p(E × F)`` as a hash join when ``p`` has equi-keys.

    Returns ``None`` when no cross-operand equality exists (caller falls
    back to materializing the product).  Cost model: inputs plus the
    *join output* — and when the build side is a stored (indexable)
    table while the probe side is not, the build side's scan is not
    charged at all; the recorded ``probe`` cost is one unit per probe
    key, as an indexed nested-loop join would pay.
    """
    schema = product.schema()
    left_arity = product.left.schema().arity
    keys, residual = _equijoin_keys(expr.predicate, schema, left_arity)
    if not keys:
        return None

    left = _eval(product.left, state, counter, memo)
    right = _eval(product.right, state, counter, memo)
    left_positions = tuple(position for position, __ in keys)
    right_positions = tuple(position for __, position in keys)

    buckets: dict[tuple, list[tuple[Row, int]]] = {}
    for row, count in right.items():
        buckets.setdefault(tuple(row[position] for position in right_positions), []).append((row, count))

    residual_check = None
    if residual:
        residual_predicate = residual[0]
        for extra in residual[1:]:
            residual_predicate = And(residual_predicate, extra)
        residual_check = residual_predicate.bind(schema)

    counts: dict[Row, int] = {}
    for left_row, left_count in left.items():
        bucket = buckets.get(tuple(left_row[position] for position in left_positions))
        if not bucket:
            continue
        for right_row, right_count in bucket:
            joined = left_row + right_row
            if residual_check is not None and not residual_check(joined):
                continue
            counts[joined] = counts.get(joined, 0) + left_count * right_count
    result = Bag(counts=counts)
    if counter is not None:
        counter.record("hash_join", len(result))
    return result


def _runtime_empty(expr: Expr, state: Mapping[str, Bag]) -> bool:
    """Conservatively decide, without evaluating, that ``expr`` is empty.

    This models executor short-circuiting: a nested-loop or hash join
    whose outer operand is an empty (log) table never touches the inner
    operand.  Only emptiness provable from literals and current table
    sizes is used; ``False`` means "unknown".
    """
    if isinstance(expr, Literal):
        return not expr.bag
    if isinstance(expr, TableRef):
        value = state.get(expr.name)
        return value is not None and not value
    if isinstance(expr, (Select, Project, MapProject, DupElim)):
        return _runtime_empty(expr.child, state)
    if isinstance(expr, Product):
        return _runtime_empty(expr.left, state) or _runtime_empty(expr.right, state)
    if isinstance(expr, Monus):
        return _runtime_empty(expr.left, state)
    if isinstance(expr, UnionAll):
        return _runtime_empty(expr.left, state) and _runtime_empty(expr.right, state)
    return False


def _eval(
    expr: Expr,
    state: Mapping[str, Bag],
    counter: CostCounter | None,
    memo: dict[Expr, Bag],
) -> Bag:
    cached = memo.get(expr)
    if cached is not None:
        return cached

    if not isinstance(expr, (TableRef, Literal)) and _runtime_empty(expr, state):
        result = Bag.empty()
        memo[expr] = result
        return result

    if isinstance(expr, TableRef):
        try:
            result = state[expr.name]
        except KeyError:
            raise UnknownTableError(f"table {expr.name!r} is not present in the database state") from None
        if counter is not None:
            counter.record("scan", len(result))
    elif isinstance(expr, Literal):
        result = expr.bag
        if counter is not None:
            counter.record("literal", len(result))
    elif isinstance(expr, Select):
        result = None
        if isinstance(expr.child, Product) and expr.child not in memo:
            result = _hash_join(expr, expr.child, state, counter, memo)
        if result is None:
            child = _eval(expr.child, state, counter, memo)
            predicate = expr.predicate.bind(expr.child.schema())
            result = child.select(predicate)
            if counter is not None:
                counter.record("select", len(result))
    elif isinstance(expr, Project):
        child = _eval(expr.child, state, counter, memo)
        result = child.project(expr.positions())
        if counter is not None:
            counter.record("project", len(result))
    elif isinstance(expr, MapProject):
        child = _eval(expr.child, state, counter, memo)
        functions = [term.bind(expr.child.schema()) for term in expr.terms]
        counts: dict[Row, int] = {}
        for row, count in child.items():
            image = tuple(function(row) for function in functions)
            counts[image] = counts.get(image, 0) + count
        result = Bag(counts=counts)
        if counter is not None:
            counter.record("map", len(result))
    elif isinstance(expr, DupElim):
        child = _eval(expr.child, state, counter, memo)
        result = child.dedup()
        if counter is not None:
            counter.record("dedup", len(result))
    elif isinstance(expr, UnionAll):
        left = _eval(expr.left, state, counter, memo)
        right = _eval(expr.right, state, counter, memo)
        result = left.union_all(right)
        if counter is not None:
            counter.record("union_all", len(result))
    elif isinstance(expr, Monus):
        if _runtime_empty(expr.right, state):
            # ``E ∸ φ`` is ``E``: an executor skips the anti-join entirely.
            result = _eval(expr.left, state, counter, memo)
            memo[expr] = result
            return result
        left = _eval(expr.left, state, counter, memo)
        if isinstance(expr.right, TableRef) and expr.right not in memo:
            # Probe optimization: ``E ∸ R`` needs only per-row lookups in
            # the stored (hashed) table, not a scan — a real engine would
            # probe R's index once per row of E.  Cost: the probes.
            try:
                right = state[expr.right.name]
            except KeyError:
                raise UnknownTableError(
                    f"table {expr.right.name!r} is not present in the database state"
                ) from None
            if counter is not None:
                counter.record("probe", left.distinct_count())
        else:
            right = _eval(expr.right, state, counter, memo)
        result = left.monus(right)
        if counter is not None:
            counter.record("monus", len(result))
    elif isinstance(expr, Product):
        left = _eval(expr.left, state, counter, memo)
        right = _eval(expr.right, state, counter, memo)
        result = left.product(right)
        if counter is not None:
            counter.record("product", len(result))
    else:
        raise ReproError(f"unknown expression node: {type(expr).__name__}")

    memo[expr] = result
    return result
