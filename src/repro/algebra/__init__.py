"""The bag algebra :math:`\\mathcal{BA}`: values, expressions, evaluation.

This subpackage is the query-language substrate of the reproduction:

* :mod:`repro.algebra.bag` — counted multisets (the value domain),
* :mod:`repro.algebra.schema` — named attributes over positional tuples,
* :mod:`repro.algebra.predicates` — quantifier-free selection predicates,
* :mod:`repro.algebra.expr` — the expression AST and derived operations,
* :mod:`repro.algebra.evaluation` — memoizing evaluator with cost counters.
"""

from repro.algebra.bag import Bag, Row
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
    empty,
    except_expr,
    join,
    max_expr,
    min_expr,
    rename,
    singleton,
    table,
)
from repro.algebra.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    attr,
    const,
)
from repro.algebra.rewrite import optimize, simplify_predicate
from repro.algebra.schema import Schema

__all__ = [
    "Bag",
    "Row",
    "Schema",
    "Expr",
    "TableRef",
    "Literal",
    "Select",
    "Project",
    "DupElim",
    "UnionAll",
    "Monus",
    "Product",
    "empty",
    "singleton",
    "table",
    "join",
    "min_expr",
    "max_expr",
    "except_expr",
    "rename",
    "evaluate",
    "CostCounter",
    "optimize",
    "simplify_predicate",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "Attr",
    "Const",
    "attr",
    "const",
]
