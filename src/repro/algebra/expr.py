"""The bag-algebra expression language :math:`\\mathcal{BA}` (Section 2.1).

The grammar of the paper is::

    Q ::= phi | {x} | R_i | sigma_p(Q) | Pi_A(Q) | eps(Q)
        | Q1 (+) Q2        -- additive union, ⊎
        | Q1 (-) Q2        -- monus, ∸
        | Q1 x Q2          -- product

Seven *core* node types implement exactly this grammar (``phi`` and
``{x}`` are both :class:`Literal`).  The derived operations the paper
defines on top of the core — ``min``, ``max``, ``EXCEPT``, θ-join — are
provided as *smart constructors* (:func:`min_expr`, :func:`max_expr`,
:func:`except_expr`, :func:`join`) that expand into core-operator trees,
so the differential algorithm of Figure 2 needs rules only for the core.

Expressions are immutable and structurally hashable; common subtrees
introduced by the differential rewrite are shared, and the evaluator
memoizes on structural equality so they are computed once.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Union

from repro.algebra.bag import Bag
from repro.algebra.predicates import And, Attr, Comparison, Predicate, Term, TruePredicate
from repro.algebra.schema import Schema
from repro.errors import SchemaError

__all__ = [
    "Expr",
    "TableRef",
    "Literal",
    "Select",
    "Project",
    "MapProject",
    "DupElim",
    "UnionAll",
    "Monus",
    "Product",
    "empty",
    "singleton",
    "table",
    "join",
    "min_expr",
    "max_expr",
    "except_expr",
    "rename",
]


@dataclass(frozen=True)
class Expr:
    """Base class of all bag-algebra expressions."""

    def schema(self) -> Schema:
        """The result schema of this expression."""
        raise NotImplementedError

    def children(self) -> tuple[Expr, ...]:
        """Immediate subexpressions."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        """Simultaneously replace table references per ``mapping``.

        This is the substitution :math:`\\eta(Q)` of Section 2.4: every
        occurrence of a table name in ``mapping`` is replaced by the
        associated expression.  References to the *replacement*
        expressions are not rewritten again (the substitution is
        simultaneous, not iterated).
        """
        raise NotImplementedError

    def tables(self) -> frozenset[str]:
        """Names of all tables referenced anywhere in the expression."""
        names: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, TableRef):
                names.add(node.name)
            stack.extend(node.children())
        return frozenset(names)

    def size(self) -> int:
        """Number of AST nodes (shared subtrees counted once per edge)."""
        return 1 + sum(child.size() for child in self.children())

    def walk(self) -> Iterator[Expr]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Operator sugar ----------------------------------------------------

    def union_all(self, other: Expr) -> UnionAll:
        return UnionAll(self, other)

    def monus(self, other: Expr) -> Monus:
        return Monus(self, other)

    def product(self, other: Expr) -> Product:
        return Product(self, other)

    def where(self, predicate: Predicate) -> Select:
        return Select(predicate, self)

    def project(self, attrs: Iterable[Union[str, int]], names: Iterable[str] | None = None) -> Project:
        return Project(tuple(attrs), self, tuple(names) if names is not None else None)

    def dedup(self) -> DupElim:
        return DupElim(self)


@dataclass(frozen=True)
class TableRef(Expr):
    """A reference to a named base table (external or internal)."""

    name: str
    table_schema: Schema

    def schema(self) -> Schema:
        return self.table_schema

    def children(self) -> tuple[Expr, ...]:
        return ()

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        replacement = mapping.get(self.name)
        if replacement is None:
            return self
        if replacement.schema().arity != self.table_schema.arity:
            raise SchemaError(
                f"substitution for {self.name!r} has arity {replacement.schema().arity}, "
                f"expected {self.table_schema.arity}"
            )
        return replacement

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant bag — the grammar's :math:`\\phi` and :math:`\\{x\\}`.

    Literals are unaffected by substitution, so their Del/Add changes are
    both empty (Figure 2 base cases).
    """

    bag: Bag
    literal_schema: Schema

    def __post_init__(self) -> None:
        if self.bag.arity is not None and self.bag.arity != self.literal_schema.arity:
            raise SchemaError(
                f"literal bag arity {self.bag.arity} does not match schema arity {self.literal_schema.arity}"
            )

    def schema(self) -> Schema:
        return self.literal_schema

    def children(self) -> tuple[Expr, ...]:
        return ()

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def __str__(self) -> str:
        return "phi" if not self.bag else repr(self.bag)


@dataclass(frozen=True)
class Select(Expr):
    """Selection :math:`\\sigma_p(E)`."""

    predicate: Predicate
    child: Expr

    def __post_init__(self) -> None:
        # Validate that every referenced attribute resolves unambiguously.
        child_schema = self.child.schema()
        for name in self.predicate.attributes():
            try:
                child_schema.index_of(name)
            except SchemaError as exc:
                raise exc.with_context(expression=f"sigma[{self.predicate}](...)") from None

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Select(self.predicate, self.child.substitute(mapping))

    def __str__(self) -> str:
        return f"sigma[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Project(Expr):
    """Projection :math:`\\Pi_A(E)` (duplicate-preserving).

    ``attrs`` may mix attribute names and 0-based positions; positions
    allow renaming columns of a schema with duplicate names (as produced
    by self-joins).  ``names`` optionally renames the output columns.
    """

    attrs: tuple[Union[str, int], ...]
    child: Expr
    names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.names is not None and len(self.names) != len(self.attrs):
            raise SchemaError(f"project: {len(self.attrs)} attributes but {len(self.names)} output names")
        self.positions()  # validate eagerly

    def positions(self) -> tuple[int, ...]:
        """Resolve ``attrs`` to input positions."""
        child_schema = self.child.schema()
        context = "pi[{}](...)".format(", ".join(str(attr) for attr in self.attrs))
        resolved: list[int] = []
        for item in self.attrs:
            if isinstance(item, int):
                if not 0 <= item < child_schema.arity:
                    raise SchemaError(
                        f"project: position {item} out of range for arity {child_schema.arity}",
                        expression=context,
                    )
                resolved.append(item)
            else:
                try:
                    resolved.append(child_schema.index_of(item))
                except SchemaError as exc:
                    raise exc.with_context(expression=context) from None
        return tuple(resolved)

    def schema(self) -> Schema:
        if self.names is not None:
            return Schema(self.names)
        child_schema = self.child.schema()
        out: list[str] = []
        for item in self.attrs:
            out.append(child_schema.attributes[item] if isinstance(item, int) else item)
        return Schema(out)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Project(self.attrs, self.child.substitute(mapping), self.names)

    def __str__(self) -> str:
        cols = ", ".join(str(attr) for attr in self.attrs)
        return f"pi[{cols}]({self.child})"


@dataclass(frozen=True)
class MapProject(Expr):
    """Generalized projection: per-row computed terms.

    Each output column is an arbitrary :class:`~repro.algebra.predicates.Term`
    (attribute, constant, arithmetic) evaluated against the input row —
    SQL's expression select-list, and the engine behind ``UPDATE``.
    Like :class:`Project`, it preserves duplicates (rows mapping to the
    same image add their multiplicities).

    Not part of the paper's grammar, but differentiation extends to it
    soundly: for any multiplicity-summing row map ``f`` and ``D ⊆ E``,
    ``f((E ∸ D) ⊎ A) = (f(E) ∸ f(D)) ⊎ f(A)`` — the same argument that
    justifies Figure 2's Π rule (weak minimality keeps the per-image
    subtraction from flooring).  The Del/Add rules therefore push ``f``
    through exactly like a projection.
    """

    terms: tuple[Term, ...]
    child: Expr
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.terms) != len(self.names):
            raise SchemaError(f"map: {len(self.terms)} terms but {len(self.names)} output names")
        if not self.terms:
            raise SchemaError("map needs at least one output column")
        child_schema = self.child.schema()
        for term in self.terms:
            for name in term.attributes():
                try:
                    child_schema.index_of(name)
                except SchemaError as exc:
                    raise exc.with_context(expression=f"map[{term} AS ...](...)") from None

    def schema(self) -> Schema:
        return Schema(self.names)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return MapProject(self.terms, self.child.substitute(mapping), self.names)

    def __str__(self) -> str:
        cols = ", ".join(f"{term} AS {name}" for term, name in zip(self.terms, self.names))
        return f"map[{cols}]({self.child})"


@dataclass(frozen=True)
class DupElim(Expr):
    """Duplicate elimination :math:`\\epsilon(E)`."""

    child: Expr

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return DupElim(self.child.substitute(mapping))

    def __str__(self) -> str:
        return f"eps({self.child})"


def _check_union_compatible(left: Expr, right: Expr, op: str) -> None:
    if left.schema().arity != right.schema().arity:
        raise SchemaError(
            f"{op}: operand arities differ ({left.schema().arity} vs {right.schema().arity})"
        )


@dataclass(frozen=True)
class UnionAll(Expr):
    """Additive union :math:`E \\uplus F`."""

    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        _check_union_compatible(self.left, self.right, "union_all")

    def schema(self) -> Schema:
        return self.left.schema()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return UnionAll(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} (+) {self.right})"


@dataclass(frozen=True)
class Monus(Expr):
    """Monus :math:`E \\dot{-} F` (truncated bag difference)."""

    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        _check_union_compatible(self.left, self.right, "monus")

    def schema(self) -> Schema:
        return self.left.schema()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Monus(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} (-) {self.right})"


@dataclass(frozen=True)
class Product(Expr):
    """Cartesian product :math:`E \\times F`."""

    left: Expr
    right: Expr

    def schema(self) -> Schema:
        return self.left.schema().concat(self.right.schema())

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Product(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def table(name: str, attrs: Iterable[str]) -> TableRef:
    """A table reference with the given attribute names."""
    return TableRef(name, Schema(attrs))


def empty(schema: Schema) -> Literal:
    """The empty bag :math:`\\phi` at the given schema."""
    return Literal(Bag.empty(), schema)


def singleton(row: tuple, schema: Schema) -> Literal:
    """The singleton bag :math:`\\{x\\}`."""
    return Literal(Bag.singleton(row), schema)


def join(left: Expr, right: Expr, on: Predicate | None = None) -> Expr:
    """θ-join: :math:`\\sigma_p(E \\times F)` (cross product if ``on`` is None)."""
    product = Product(left, right)
    if on is None:
        return product
    return Select(on, product)


def min_expr(left: Expr, right: Expr) -> Expr:
    """Minimal intersection, expanded per the paper:
    :math:`Q_1 \\min Q_2 = Q_1 \\dot{-} (Q_1 \\dot{-} Q_2)`."""
    return Monus(left, Monus(left, right))


def max_expr(left: Expr, right: Expr) -> Expr:
    """Maximal union, expanded per the paper:
    :math:`Q_1 \\max Q_2 = Q_1 \\uplus (Q_2 \\dot{-} Q_1)`."""
    return UnionAll(left, Monus(right, left))


def rename(child: Expr, names: Iterable[str]) -> Project:
    """Rename all columns of ``child`` positionally to ``names``."""
    names = tuple(names)
    if len(names) != child.schema().arity:
        raise SchemaError(f"rename: {len(names)} names for arity {child.schema().arity}")
    return Project(tuple(range(len(names))), child, names)


def except_expr(left: Expr, right: Expr) -> Expr:
    """SQL ``EXCEPT``, expanded into core operators per the paper:

    .. math::

        Q_1 \\text{ EXCEPT } Q_2 =
            \\Pi_1(\\sigma_{1=2}(Q_1 \\times (\\epsilon(Q_1) \\dot{-} Q_2)))

    The "keep set" :math:`\\epsilon(Q_1) \\dot{-} Q_2` contains one copy of
    each row of ``left`` absent from ``right``; joining ``left`` against it
    on full-row equality retains the original multiplicities.
    """
    _check_union_compatible(left, right, "except")
    arity = left.schema().arity
    left_names = tuple(f"__exl{index}" for index in range(arity))
    right_names = tuple(f"__exr{index}" for index in range(arity))
    renamed_left = rename(left, left_names)
    keep_set = rename(Monus(DupElim(left), right), right_names)
    pairing = Product(renamed_left, keep_set)
    predicate: Predicate = TruePredicate()
    for left_name, right_name in zip(left_names, right_names):
        equality = Comparison("=", Attr(left_name), Attr(right_name))
        predicate = equality if isinstance(predicate, TruePredicate) else And(predicate, equality)
    filtered = Select(predicate, pairing)
    original_names = left.schema().attributes
    return Project(tuple(range(arity)), filtered, original_names)
