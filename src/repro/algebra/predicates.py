"""Quantifier-free predicates for selections and θ-joins.

The paper's :math:`\\sigma_p` takes a quantifier-free predicate ``p`` over
the attributes of its input.  We represent predicates as a small AST of
terms and boolean connectives so they can be

* **bound** against a :class:`~repro.algebra.schema.Schema` once, yielding
  a fast positional row function,
* **printed** back as SQL text, and
* **left untouched by substitution** — predicates mention attributes only,
  never table names, so the differential algorithm can push selections
  through without rewriting them.

Terms are attribute references or constants; comparisons use the usual
six operators.  ``None`` models SQL ``NULL`` with the simple convention
that any comparison involving ``None`` is false (sufficient for the
paper, which never relies on three-valued logic).
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.algebra.bag import Row
from repro.algebra.schema import Schema
from repro.errors import SchemaError

__all__ = [
    "Term",
    "Attr",
    "Const",
    "Arith",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "attr",
    "const",
]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class for predicate terms."""

    def bind(self, schema: Schema) -> Callable[[Row], Any]:
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Attr(Term):
    """A reference to an attribute by name."""

    name: str

    def bind(self, schema: Schema) -> Callable[[Row], Any]:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def attributes(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A literal constant (int, float, str, bool, or None)."""

    value: Any

    def __post_init__(self) -> None:
        if self.value is not None and not isinstance(self.value, (int, float, str, bool)):
            raise SchemaError(f"unsupported constant type: {type(self.value).__name__}")

    def bind(self, schema: Schema) -> Callable[[Row], Any]:
        value = self.value
        return lambda row: value

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return repr(self.value)


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True)
class Arith(Term):
    """Arithmetic over terms: ``left op right`` with op in ``+ - * /``.

    Follows the same two-valued conventions as comparisons: any operand
    being ``None``, a type mismatch, or division by zero yields ``None``
    (which comparisons then treat as false and maps store as NULL).
    Division is true (float) division.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise SchemaError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[Row], Any]:
        compute = _ARITH_OPS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def apply(row: Row) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, str) or isinstance(rhs, str):
                return None  # no implicit string arithmetic
            try:
                return compute(lhs, rhs)
            except (TypeError, ZeroDivisionError):
                return None

        return apply

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def attr(name: str) -> Attr:
    """Shorthand constructor for an attribute reference."""
    return Attr(name)


def const(value: Any) -> Const:
    """Shorthand constructor for a constant."""
    return Const(value)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Predicate:
    """Base class for quantifier-free predicates."""

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        """Compile against ``schema`` into a row function."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """All attribute names the predicate mentions."""
        raise NotImplementedError

    def __and__(self, other: Predicate) -> Predicate:
        return And(self, other)

    def __or__(self, other: Predicate) -> Predicate:
        return Or(self, other)

    def __invert__(self) -> Predicate:
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (σ with it is the identity)."""

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        return lambda row: True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` with op in ``= != < <= > >=``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SchemaError(f"unknown comparison operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        compare = _OPS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def check(row: Row) -> bool:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return False
            try:
                return bool(compare(lhs, rhs))
            except TypeError:
                # Cross-type ordering comparisons are false, matching the
                # "no implicit coercion" stance of the in-memory engine.
                return False

        return check

    def bind_constants(self) -> bool:
        """Evaluate a constant–constant comparison (both sides ``Const``).

        Uses the same conventions as :meth:`bind`: comparisons involving
        ``None`` or mixed incomparable types are false.
        """
        if not (isinstance(self.left, Const) and isinstance(self.right, Const)):
            raise SchemaError("bind_constants requires constant operands on both sides")
        lhs, rhs = self.left.value, self.right.value
        if lhs is None or rhs is None:
            return False
        try:
            return bool(_OPS[self.op](lhs, rhs))
        except TypeError:
            return False

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction."""

    left: Predicate
    right: Predicate

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: left(row) and right(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction."""

    left: Predicate
    right: Predicate

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: left(row) or right(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    operand: Predicate

    def bind(self, schema: Schema) -> Callable[[Row], bool]:
        inner = self.operand.bind(schema)
        return lambda row: not inner(row)

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"
