"""Counted multisets (bags) of tuples — the value domain of the bag algebra.

The paper's query language :math:`\\mathcal{BA}` (Section 2.1) operates on
finite bags of flat tuples.  This module implements that value domain as
:class:`Bag`: an immutable multiset backed by a ``dict`` mapping each tuple
to its (strictly positive) multiplicity.

The operations mirror the paper exactly:

=====================  =======================================
paper                  here
=====================  =======================================
:math:`X \\uplus Y`     :meth:`Bag.union_all`  (additive union)
:math:`X \\dot{-} Y`    :meth:`Bag.monus`      (truncated difference)
:math:`\\epsilon(X)`    :meth:`Bag.dedup`      (duplicate elimination)
:math:`X \\times Y`     :meth:`Bag.product`    (tuple concatenation)
:math:`\\sigma_p(X)`    :meth:`Bag.select`
:math:`\\Pi_A(X)`       :meth:`Bag.project`    (positional)
:math:`X \\min Y`       :meth:`Bag.min_`       (minimal intersection)
:math:`X \\max Y`       :meth:`Bag.max_`       (maximal union)
``X EXCEPT Y``         :meth:`Bag.except_`    (SQL EXCEPT, all copies)
=====================  =======================================

Bags are hashable and comparable; ``X <= Y`` is the subbag relation
:math:`X \\sqsubseteq Y` used throughout the paper's minimality conditions.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from repro.errors import SchemaError

Row = tuple[Any, ...]

__all__ = ["Bag", "Row"]


def _normalize(counts: Mapping[Row, int]) -> dict[Row, int]:
    """Drop non-positive multiplicities, validating types along the way."""
    clean: dict[Row, int] = {}
    for row, count in counts.items():
        if not isinstance(row, tuple):
            raise SchemaError(f"bag elements must be tuples, got {type(row).__name__}")
        if count > 0:
            clean[row] = count
    return clean


class Bag:
    """An immutable finite multiset of same-arity tuples.

    The empty bag has indeterminate arity and combines with bags of any
    arity; all other combinations check arity compatibility eagerly so
    schema bugs surface at the operation that caused them.
    """

    __slots__ = ("_counts", "_arity", "_hash")

    def __init__(self, items: Iterable[Row] = (), *, counts: Mapping[Row, int] | None = None) -> None:
        if counts is not None:
            self._counts = _normalize(counts)
        else:
            acc: dict[Row, int] = {}
            for row in items:
                if not isinstance(row, tuple):
                    raise SchemaError(f"bag elements must be tuples, got {type(row).__name__}")
                acc[row] = acc.get(row, 0) + 1
            self._counts = acc
        arities = {len(row) for row in self._counts}
        if len(arities) > 1:
            raise SchemaError(f"rows of mixed arity in one bag: {sorted(arities)}")
        self._arity: int | None = arities.pop() if arities else None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_clean(cls, counts: dict[Row, int], arity: int | None) -> Bag:
        """Adopt an already-validated counts dict without copy or scan.

        Internal: the caller guarantees tuple rows of uniform ``arity``
        with strictly positive multiplicities, and must not mutate the
        dict afterwards.  This is what keeps ``patch`` and the
        partition layer's slice materialization single-pass.
        """
        bag = cls.__new__(cls)
        bag._counts = counts
        bag._arity = arity if counts else None
        bag._hash = None
        return bag

    @classmethod
    def empty(cls) -> Bag:
        """The empty bag :math:`\\phi`."""
        return _EMPTY

    @classmethod
    def singleton(cls, row: Row) -> Bag:
        """The one-element bag :math:`\\{x\\}`."""
        return cls(counts={row: 1})

    @classmethod
    def from_counts(cls, counts: Mapping[Row, int]) -> Bag:
        """Build a bag from a ``row -> multiplicity`` mapping."""
        return cls(counts=counts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int | None:
        """Tuple width, or ``None`` for the empty bag."""
        return self._arity

    def multiplicity(self, row: Row) -> int:
        """The number of copies of ``row`` in this bag (0 if absent)."""
        return self._counts.get(row, 0)

    def counts(self) -> dict[Row, int]:
        """A fresh ``row -> multiplicity`` dict (safe to mutate)."""
        return dict(self._counts)

    @property
    def support(self) -> frozenset[Row]:
        """The set of distinct rows."""
        return frozenset(self._counts)

    def __len__(self) -> int:
        """Total number of copies, counting multiplicity."""
        return sum(self._counts.values())

    def distinct_count(self) -> int:
        """Number of distinct rows."""
        return len(self._counts)

    def __iter__(self) -> Iterator[Row]:
        """Iterate rows with multiplicity (each copy yielded separately)."""
        for row, count in self._counts.items():
            for _ in range(count):
                yield row

    def items(self) -> Iterator[tuple[Row, int]]:
        """Iterate ``(row, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def __contains__(self, row: Row) -> bool:
        return row in self._counts

    def __bool__(self) -> bool:
        return bool(self._counts)

    # ------------------------------------------------------------------
    # Equality / ordering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def issubbag(self, other: Bag) -> bool:
        """The subbag relation: every row occurs at most as often as in ``other``."""
        return all(count <= other._counts.get(row, 0) for row, count in self._counts.items())

    def __le__(self, other: Bag) -> bool:
        return self.issubbag(other)

    def _check_arity(self, other: Bag, op: str) -> None:
        if self._arity is not None and other._arity is not None and self._arity != other._arity:
            raise SchemaError(f"{op}: arity mismatch ({self._arity} vs {other._arity})")

    # ------------------------------------------------------------------
    # The seven core operations of BA
    # ------------------------------------------------------------------

    def union_all(self, other: Bag) -> Bag:
        """Additive union :math:`X \\uplus Y`: multiplicities add."""
        self._check_arity(other, "union_all")
        if not self:
            return other
        if not other:
            return self
        counts = dict(self._counts)
        for row, count in other._counts.items():
            counts[row] = counts.get(row, 0) + count
        return Bag(counts=counts)

    def monus(self, other: Bag) -> Bag:
        """Monus :math:`X \\dot{-} Y`: multiplicities subtract, floored at 0."""
        self._check_arity(other, "monus")
        if not other or not self:
            return self
        counts: dict[Row, int] = {}
        for row, count in self._counts.items():
            remaining = count - other._counts.get(row, 0)
            if remaining > 0:
                counts[row] = remaining
        return Bag(counts=counts)

    def dedup(self) -> Bag:
        """Duplicate elimination :math:`\\epsilon(X)`: every multiplicity becomes 1."""
        return Bag(counts={row: 1 for row in self._counts})

    def product(self, other: Bag) -> Bag:
        """Cartesian product: concatenated tuples, multiplied multiplicities."""
        if not self or not other:
            return _EMPTY
        counts: dict[Row, int] = {}
        for left, lcount in self._counts.items():
            for right, rcount in other._counts.items():
                counts[left + right] = counts.get(left + right, 0) + lcount * rcount
        return Bag(counts=counts)

    def select(self, predicate: Callable[[Row], bool]) -> Bag:
        """Selection :math:`\\sigma_p(X)`: keep rows satisfying ``predicate``."""
        return Bag(counts={row: count for row, count in self._counts.items() if predicate(row)})

    def project(self, positions: tuple[int, ...]) -> Bag:
        """Projection :math:`\\Pi_A(X)` onto the given 0-based positions.

        Bag projection does *not* eliminate duplicates; multiplicities of
        rows that collapse together add up.
        """
        if self._arity is not None:
            for position in positions:
                if not 0 <= position < self._arity:
                    raise SchemaError(f"project: position {position} out of range for arity {self._arity}")
        counts: dict[Row, int] = {}
        for row, count in self._counts.items():
            image = tuple(row[position] for position in positions)
            counts[image] = counts.get(image, 0) + count
        return Bag(counts=counts)

    def patch(self, delete: Bag, insert: Bag) -> Bag:
        """Apply a delta: :math:`(X \\dot{-} delete) \\uplus insert` in one pass.

        Semantically identical to ``monus`` followed by ``union_all``;
        used by the storage layer to model indexed, delta-proportional
        updates (the cost of a patch is the size of the delta, not the
        size of the table).
        """
        self._check_arity(delete, "patch")
        self._check_arity(insert, "patch")
        counts = dict(self._counts)
        for row, count in delete._counts.items():
            remaining = counts.get(row, 0) - count
            if remaining > 0:
                counts[row] = remaining
            else:
                counts.pop(row, None)
        for row, count in insert._counts.items():
            counts[row] = counts.get(row, 0) + count
        # Every row came from an already-validated bag and every count is
        # positive by construction, so re-normalizing would only re-copy.
        arity = self._arity if self._arity is not None else insert._arity
        return Bag._from_clean(counts, arity)

    # ------------------------------------------------------------------
    # Derived operations (Section 2.1)
    # ------------------------------------------------------------------

    def min_(self, other: Bag) -> Bag:
        """Minimal intersection: per-row minimum of multiplicities.

        Defined in the paper as :math:`X \\dot{-} (X \\dot{-} Y)`.
        """
        self._check_arity(other, "min_")
        counts: dict[Row, int] = {}
        for row, count in self._counts.items():
            m = min(count, other._counts.get(row, 0))
            if m > 0:
                counts[row] = m
        return Bag(counts=counts)

    def max_(self, other: Bag) -> Bag:
        """Maximal union: per-row maximum of multiplicities.

        Defined in the paper as :math:`X \\uplus (Y \\dot{-} X)`.
        """
        self._check_arity(other, "max_")
        counts = dict(self._counts)
        for row, count in other._counts.items():
            if count > counts.get(row, 0):
                counts[row] = count
        return Bag(counts=counts)

    def except_(self, other: Bag) -> Bag:
        """SQL ``EXCEPT ALL``-style difference with *total* elimination.

        ``X EXCEPT Y`` removes every copy of each row present in ``Y``,
        regardless of its multiplicity in ``Y`` — this is the SQL EXCEPT
        semantics the paper contrasts with monus.
        """
        self._check_arity(other, "except_")
        return Bag(counts={row: count for row, count in self._counts.items() if row not in other._counts})

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{row!r}x{count}" if count > 1 else repr(row)
            for row, count in sorted(self._counts.items(), key=lambda item: repr(item[0]))
        )
        return f"Bag({{{inner}}})"


_EMPTY = Bag()
