"""Algebraic simplification of bag-algebra expressions.

The differential algorithm produces expressions whose shape mirrors the
Figure 2 rules; many subterms are statically empty, tautological, or
collapsible.  :func:`optimize` applies a terminating set of
semantics-preserving rewrites, bottom-up:

* **empty folding** — ``E ⊎ φ → E``, ``φ ∸ E → φ``, ``E ∸ φ → E``,
  ``E × φ → φ``, ``σ_p(φ) → φ``, ``Π(φ) → φ``, ``ε(φ) → φ``;
* **self-cancellation** — ``E ∸ E → φ`` (structural equality);
* **constant folding** — any operator whose operands are all literals is
  evaluated at rewrite time; predicates over constants fold to
  true/false, and ``σ_true(E) → E``, ``σ_false(E) → φ``;
* **selection fusion** — ``σ_p(σ_q(E)) → σ_{p∧q}(E)``;
* **projection fusion** — ``Π_A(Π_B(E)) → Π_{B∘A}(E)``;
* **identity projection** — a projection that keeps all columns in order
  under their original names disappears;
* **idempotent ε** — ``ε(ε(E)) → ε(E)``.

Every rule strictly decreases expression size, so a single bottom-up
pass with local fixpointing terminates.  ``optimize`` never changes the
result schema (names included) or the value of the expression in any
state — properties the test suite checks by construction and by
randomized evaluation.
"""

from __future__ import annotations

from repro.algebra.bag import Bag
from repro.algebra.evaluation import evaluate
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["optimize", "simplify_predicate", "is_empty_literal"]

#: Canonical "false" — the predicate module has no False node.
_FALSE = Not(TruePredicate())


def is_empty_literal(expr: Expr) -> bool:
    """Whether ``expr`` is statically the empty bag."""
    return isinstance(expr, Literal) and not expr.bag


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Literal)


def _empty_like(expr: Expr) -> Literal:
    return Literal(Bag.empty(), expr.schema())


# ----------------------------------------------------------------------
# Predicate simplification
# ----------------------------------------------------------------------


def _constant_truth(predicate: Predicate) -> bool | None:
    """The constant truth value of a predicate, or ``None`` if data-dependent."""
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        if isinstance(predicate.left, Const) and isinstance(predicate.right, Const):
            return predicate.bind_constants()
        return None
    if isinstance(predicate, Not):
        inner = _constant_truth(predicate.operand)
        return None if inner is None else not inner
    if isinstance(predicate, And):
        left = _constant_truth(predicate.left)
        right = _constant_truth(predicate.right)
        if left is False or right is False:
            return False
        if left is True and right is True:
            return True
        return None
    if isinstance(predicate, Or):
        left = _constant_truth(predicate.left)
        right = _constant_truth(predicate.right)
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        return None
    return None


def simplify_predicate(predicate: Predicate) -> Predicate:
    """Fold constant subformulas; shrink AND/OR with known sides."""
    if isinstance(predicate, And):
        left = simplify_predicate(predicate.left)
        right = simplify_predicate(predicate.right)
        left_truth = _constant_truth(left)
        right_truth = _constant_truth(right)
        if left_truth is False or right_truth is False:
            return _FALSE
        if left_truth is True:
            return right
        if right_truth is True:
            return left
        return And(left, right)
    if isinstance(predicate, Or):
        left = simplify_predicate(predicate.left)
        right = simplify_predicate(predicate.right)
        left_truth = _constant_truth(left)
        right_truth = _constant_truth(right)
        if left_truth is True or right_truth is True:
            return TruePredicate()
        if left_truth is False:
            return right
        if right_truth is False:
            return left
        return Or(left, right)
    if isinstance(predicate, Not):
        inner = simplify_predicate(predicate.operand)
        truth = _constant_truth(inner)
        if truth is True:
            return _FALSE
        if truth is False:
            return TruePredicate()
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    truth = _constant_truth(predicate)
    if truth is True:
        return TruePredicate()
    if truth is False:
        return _FALSE
    return predicate


# ----------------------------------------------------------------------
# Expression rewriting
# ----------------------------------------------------------------------


def optimize(expr: Expr) -> Expr:
    """Rewrite ``expr`` into a semantically identical, no-larger form."""
    memo: dict[Expr, Expr] = {}
    return _rewrite(expr, memo)


def _fold_literal(expr: Expr) -> Expr:
    """Evaluate an all-literal operator application at rewrite time."""
    value = evaluate(expr, {})
    return Literal(value, expr.schema())


def _rewrite(expr: Expr, memo: dict[Expr, Expr]) -> Expr:
    cached = memo.get(expr)
    if cached is not None:
        return cached
    result = _rewrite_node(expr, memo)
    memo[expr] = result
    return result


def _rewrite_node(expr: Expr, memo: dict[Expr, Expr]) -> Expr:
    if isinstance(expr, (TableRef, Literal)):
        return expr

    if isinstance(expr, Select):
        child = _rewrite(expr.child, memo)
        predicate = simplify_predicate(expr.predicate)
        truth = _constant_truth(predicate)
        if truth is True:
            return child
        if truth is False or is_empty_literal(child):
            return _empty_like(expr)
        if _is_literal(child):
            return _fold_literal(Select(predicate, child))
        if isinstance(child, Select):
            return _rewrite(Select(simplify_predicate(And(predicate, child.predicate)), child.child), memo)
        return Select(predicate, child)

    if isinstance(expr, Project):
        child = _rewrite(expr.child, memo)
        if is_empty_literal(child):
            return Literal(Bag.empty(), expr.schema())
        rebuilt = Project(expr.attrs, child, expr.names)
        if _is_literal(child):
            return _fold_literal(rebuilt)
        positions = rebuilt.positions()
        if isinstance(child, Project):
            inner_positions = child.positions()
            fused = tuple(inner_positions[position] for position in positions)
            return _rewrite(Project(fused, child.child, rebuilt.schema().attributes), memo)
        child_schema = child.schema()
        identity = (
            positions == tuple(range(child_schema.arity))
            and rebuilt.schema().attributes == child_schema.attributes
        )
        if identity:
            return child
        return rebuilt

    if isinstance(expr, MapProject):
        child = _rewrite(expr.child, memo)
        if is_empty_literal(child):
            return Literal(Bag.empty(), expr.schema())
        rebuilt_map = MapProject(expr.terms, child, expr.names)
        if _is_literal(child):
            return _fold_literal(rebuilt_map)
        return rebuilt_map

    if isinstance(expr, DupElim):
        child = _rewrite(expr.child, memo)
        if is_empty_literal(child):
            return child
        if _is_literal(child):
            return _fold_literal(DupElim(child))
        if isinstance(child, DupElim):
            return child
        return DupElim(child)

    if isinstance(expr, UnionAll):
        left = _rewrite(expr.left, memo)
        right = _rewrite(expr.right, memo)
        if is_empty_literal(left):
            return _coerce_schema(right, expr)
        if is_empty_literal(right):
            return _coerce_schema(left, expr)
        if _is_literal(left) and _is_literal(right):
            return _fold_literal(UnionAll(left, right))
        return UnionAll(left, right)

    if isinstance(expr, Monus):
        left = _rewrite(expr.left, memo)
        right = _rewrite(expr.right, memo)
        if is_empty_literal(left) or left == right:
            return _empty_like(expr)
        if is_empty_literal(right):
            return _coerce_schema(left, expr)
        if _is_literal(left) and _is_literal(right):
            return _fold_literal(Monus(left, right))
        return Monus(left, right)

    if isinstance(expr, Product):
        left = _rewrite(expr.left, memo)
        right = _rewrite(expr.right, memo)
        if is_empty_literal(left) or is_empty_literal(right):
            return Literal(Bag.empty(), expr.schema())
        if _is_literal(left) and _is_literal(right):
            return _fold_literal(Product(left, right))
        return Product(left, right)

    return expr


def _coerce_schema(expr: Expr, template: Expr) -> Expr:
    """Keep the original node's schema names after dropping an operand.

    ``E ⊎ F`` takes its names from ``E``; rewriting it to bare ``F`` must
    not change the visible schema, so attach a rename when names differ.
    """
    if expr.schema() == template.schema():
        return expr
    from repro.algebra.expr import rename

    return rename(expr, template.schema().attributes)
