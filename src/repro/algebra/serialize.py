"""JSON-serializable encoding of bag-algebra expressions.

Round-trips every AST node (expressions, predicates, terms, literal
bags) through plain dict/list/scalar structures, so view definitions
can be persisted alongside the database state and reattached after a
restart (see :mod:`repro.warehouse.persistence`).

The encoding is structural and versioned by node ``kind`` strings;
``expr_from_dict(expr_to_dict(e)) == e`` for every expression the
library can build.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Expr,
    Literal,
    MapProject,
    Monus,
    Product,
    Project,
    Select,
    TableRef,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.algebra.schema import Schema
from repro.errors import ReproError

__all__ = ["expr_to_dict", "expr_from_dict", "predicate_to_dict", "predicate_from_dict"]

_TRUE_TAG = "\x00bool:1"
_FALSE_TAG = "\x00bool:0"


def _encode_value(value: Any) -> Any:
    """Scalars, with bools tagged so JSON round-trips don't confuse 1/True."""
    if value is True:
        return _TRUE_TAG
    if value is False:
        return _FALSE_TAG
    if value is None or isinstance(value, (int, float, str)):
        return value
    raise ReproError(f"cannot serialize value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if value == _TRUE_TAG:
        return True
    if value == _FALSE_TAG:
        return False
    return value


# ----------------------------------------------------------------------
# Terms and predicates
# ----------------------------------------------------------------------


def term_to_dict(term: Term) -> dict:
    if isinstance(term, Attr):
        return {"kind": "attr", "name": term.name}
    if isinstance(term, Const):
        return {"kind": "const", "value": _encode_value(term.value)}
    if isinstance(term, Arith):
        return {
            "kind": "arith",
            "op": term.op,
            "left": term_to_dict(term.left),
            "right": term_to_dict(term.right),
        }
    raise ReproError(f"cannot serialize term {type(term).__name__}")


def term_from_dict(data: dict) -> Term:
    kind = data["kind"]
    if kind == "attr":
        return Attr(data["name"])
    if kind == "const":
        return Const(_decode_value(data["value"]))
    if kind == "arith":
        return Arith(data["op"], term_from_dict(data["left"]), term_from_dict(data["right"]))
    raise ReproError(f"unknown term kind {kind!r}")


def predicate_to_dict(predicate: Predicate) -> dict:
    if isinstance(predicate, TruePredicate):
        return {"kind": "true"}
    if isinstance(predicate, Comparison):
        return {
            "kind": "cmp",
            "op": predicate.op,
            "left": term_to_dict(predicate.left),
            "right": term_to_dict(predicate.right),
        }
    if isinstance(predicate, And):
        return {"kind": "and", "left": predicate_to_dict(predicate.left), "right": predicate_to_dict(predicate.right)}
    if isinstance(predicate, Or):
        return {"kind": "or", "left": predicate_to_dict(predicate.left), "right": predicate_to_dict(predicate.right)}
    if isinstance(predicate, Not):
        return {"kind": "not", "operand": predicate_to_dict(predicate.operand)}
    raise ReproError(f"cannot serialize predicate {type(predicate).__name__}")


def predicate_from_dict(data: dict) -> Predicate:
    kind = data["kind"]
    if kind == "true":
        return TruePredicate()
    if kind == "cmp":
        return Comparison(data["op"], term_from_dict(data["left"]), term_from_dict(data["right"]))
    if kind == "and":
        return And(predicate_from_dict(data["left"]), predicate_from_dict(data["right"]))
    if kind == "or":
        return Or(predicate_from_dict(data["left"]), predicate_from_dict(data["right"]))
    if kind == "not":
        return Not(predicate_from_dict(data["operand"]))
    raise ReproError(f"unknown predicate kind {kind!r}")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def expr_to_dict(expr: Expr) -> dict:
    """Encode an expression as JSON-safe nested dicts."""
    if isinstance(expr, TableRef):
        return {"kind": "table", "name": expr.name, "schema": list(expr.table_schema.attributes)}
    if isinstance(expr, Literal):
        return {
            "kind": "literal",
            "schema": list(expr.literal_schema.attributes),
            "rows": [
                [[_encode_value(value) for value in row], count] for row, count in sorted(
                    expr.bag.items(), key=lambda item: repr(item)
                )
            ],
        }
    if isinstance(expr, Select):
        return {
            "kind": "select",
            "predicate": predicate_to_dict(expr.predicate),
            "child": expr_to_dict(expr.child),
        }
    if isinstance(expr, Project):
        return {
            "kind": "project",
            "attrs": list(expr.attrs),
            "names": list(expr.names) if expr.names is not None else None,
            "child": expr_to_dict(expr.child),
        }
    if isinstance(expr, MapProject):
        return {
            "kind": "map",
            "terms": [term_to_dict(term) for term in expr.terms],
            "names": list(expr.names),
            "child": expr_to_dict(expr.child),
        }
    if isinstance(expr, DupElim):
        return {"kind": "dedup", "child": expr_to_dict(expr.child)}
    if isinstance(expr, UnionAll):
        return {"kind": "union", "left": expr_to_dict(expr.left), "right": expr_to_dict(expr.right)}
    if isinstance(expr, Monus):
        return {"kind": "monus", "left": expr_to_dict(expr.left), "right": expr_to_dict(expr.right)}
    if isinstance(expr, Product):
        return {"kind": "product", "left": expr_to_dict(expr.left), "right": expr_to_dict(expr.right)}
    raise ReproError(f"cannot serialize expression {type(expr).__name__}")


def expr_from_dict(data: dict) -> Expr:
    """Decode an expression produced by :func:`expr_to_dict`."""
    kind = data["kind"]
    if kind == "table":
        return TableRef(data["name"], Schema(data["schema"]))
    if kind == "literal":
        counts = {
            tuple(_decode_value(value) for value in row): count for row, count in data["rows"]
        }
        return Literal(Bag.from_counts(counts), Schema(data["schema"]))
    if kind == "select":
        return Select(predicate_from_dict(data["predicate"]), expr_from_dict(data["child"]))
    if kind == "project":
        names = tuple(data["names"]) if data["names"] is not None else None
        return Project(tuple(data["attrs"]), expr_from_dict(data["child"]), names)
    if kind == "map":
        return MapProject(
            tuple(term_from_dict(term) for term in data["terms"]),
            expr_from_dict(data["child"]),
            tuple(data["names"]),
        )
    if kind == "dedup":
        return DupElim(expr_from_dict(data["child"]))
    if kind == "union":
        return UnionAll(expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "monus":
        return Monus(expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "product":
        return Product(expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    raise ReproError(f"unknown expression kind {kind!r}")
