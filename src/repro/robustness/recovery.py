"""Invariant-driven recovery: restart a warehouse into a green state.

The paper's invariants (Figure 1) are the recovery oracle: after a
restart every scenario's invariant — ``INV_IM``, ``INV_BL``,
``INV_DT``, ``INV_C`` — must hold *exactly* over the reloaded snapshot.
:func:`recover` makes that true:

1. **Classify.**  Load the journal; if an intent is pending, compare the
   snapshot's table digests with the intent's recorded pre-operation
   digests.  Because checkpoints are atomic (temp file +
   ``os.replace``), the snapshot is either exactly the pre-op state or
   exactly the completed post-op state — a torn intermediate is
   impossible by construction.
2. **Resolve.**  Pre-op snapshot: replay the operation from the journal
   (user transactions from their recorded delta bags; ``refresh`` /
   ``propagate`` / ``partial_refresh`` / ``refresh_all`` simply re-run
   against the surviving logs and differential tables — Figure 3's
   operations are deterministic functions of that state, which is what
   makes roll-forward sound), checkpoint, and commit the intent.
   Non-replayable intents (DDL) are rolled back.  Post-op snapshot: the
   work is already durable; just commit the intent.
3. **Heal.**  Validate the engine-derived state against the recovered
   tables (:func:`repro.robustness.governor.heal_engine_state`): hash
   indexes are drained and audited bucket-for-bucket, and a pushdown
   executor's SQLite mirror is digest-compared per table — anything a
   crash left corrupted is rebuilt or resynced before the warehouse
   answers queries again.
4. **Audit.**  Recompute every view's scenario invariant from scratch
   and report.  ``recover`` is idempotent: a second run finds no
   pending intent and changes nothing.

``python -m repro recover <file>`` is the CLI front end (exit status 1
when any invariant is violated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.transactions import UserTransaction
from repro.errors import RecoveryError
from repro.robustness.governor import heal_engine_state
from repro.robustness.journal import (
    IntentJournal,
    OpIntent,
    deserialize_bag,
    journal_path,
    table_digests,
)
from repro.storage.persistence import staging_path
from repro.warehouse.manager import ViewManager
from repro.warehouse.persistence import load_warehouse, save_warehouse

__all__ = ["ViewAudit", "RecoveryReport", "audit_manager", "recover", "main"]

#: Scenario tag → the Figure 1 invariant it maintains.
INVARIANT_NAMES = {
    "IM": "INV_IM",
    "BL": "INV_BL",
    "DT": "INV_DT",
    "C": "INV_C",
}

#: Journal kinds the runner can roll forward; anything else rolls back.
REPLAYABLE = {"txn", "refresh", "refresh_all", "refresh_group", "propagate", "partial_refresh"}


@dataclass(frozen=True)
class ViewAudit:
    """The outcome of checking one view's scenario invariant."""

    view: str
    tag: str
    invariant: str
    holds: bool

    def format(self) -> str:
        verdict = "holds" if self.holds else "VIOLATED"
        return f"view {self.view!r} [{self.tag}]: {self.invariant} {verdict}"


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    path: Path
    pending: OpIntent | None
    #: ``"none"`` (clean journal), ``"rolled_forward"``,
    #: ``"already_applied"``, or ``"rolled_back"``.
    action: str
    audits: list[ViewAudit] = field(default_factory=list)
    #: Engine-derived state repaired by the heal step:
    #: ``{"indexes": [...], "mirror": [...]}`` (usually both empty).
    healed: dict = field(default_factory=lambda: {"indexes": [], "mirror": []})

    @property
    def green(self) -> bool:
        """Every view's invariant holds after recovery."""
        return all(audit.holds for audit in self.audits)

    def format(self) -> str:
        lines = [f"recover {self.path}:"]
        if self.pending is None:
            lines.append("  journal clean — no operation was in flight")
        else:
            lines.append(f"  pending: {self.pending.describe()}")
            lines.append(f"  action: {self.action.replace('_', ' ')}")
        repaired = [item for items in self.healed.values() for item in items]
        if repaired:
            lines.append(f"  healed engine state: {', '.join(sorted(repaired))}")
        if not self.audits:
            lines.append("  no views registered")
        for audit in self.audits:
            lines.append(f"  {audit.format()}")
        lines.append("  state: " + ("GREEN" if self.green else "RED"))
        return "\n".join(lines)


def invariant_name(tag: str) -> str:
    return INVARIANT_NAMES.get(tag, f"INV_{tag}")


def audit_manager(manager: ViewManager) -> list[ViewAudit]:
    """Recompute every registered view's scenario invariant from scratch."""
    audits = []
    for name in manager.views():
        scenario = manager.scenario(name)
        audits.append(
            ViewAudit(name, scenario.tag, invariant_name(scenario.tag), scenario.invariant_holds())
        )
    return audits


def _replay(manager: ViewManager, intent: OpIntent) -> None:
    """Re-run a replayable intent against the pre-op snapshot."""
    kind = intent.kind
    if kind == "txn":
        txn = UserTransaction(manager.db)
        for table, delta in sorted(intent.payload.get("deltas", {}).items()):
            delete = deserialize_bag(delta["delete"])
            insert = deserialize_bag(delta["insert"])
            if delete:
                txn.delete(table, delete)
            if insert:
                txn.insert(table, insert)
        manager.execute(txn)
    elif kind == "refresh":
        manager.refresh(intent.view)
    elif kind == "refresh_all":
        manager.refresh_all()
    elif kind == "refresh_group":
        # Deterministic sequential re-run: compaction and sequential
        # scheduling are functions of the snapshot's logs and cursors,
        # and parallel vs sequential execution is bag-equal by design.
        manager.refresh_group(
            intent.payload.get("views") or None,
            compact=intent.payload.get("compact", True),
        )
    elif kind == "propagate":
        manager.propagate(intent.view)
    elif kind == "partial_refresh":
        manager.partial_refresh(intent.view)
    else:  # pragma: no cover - guarded by REPLAYABLE
        raise RecoveryError(f"cannot replay journal kind {intent.kind!r}")


def recover(path: str | Path) -> RecoveryReport:
    """Resolve any interrupted operation at ``path`` and audit invariants.

    Idempotent: running it again (or crashing *during* recovery and
    running it once more) converges to the same green state.
    """
    path = Path(path)
    if not path.exists():
        raise RecoveryError(f"no snapshot at {path}; nothing to recover")
    with obs.span("recovery", path=str(path)) as recovery_span:
        # A crash between staging and os.replace can leave a stray temp
        # file; it is not part of the durable state.
        staged = staging_path(path)
        if staged.exists():
            staged.unlink()
        journal = IntentJournal(journal_path(path))
        try:
            pending = journal.pending()
            manager = load_warehouse(path)
            action = "none"
            if pending is not None:
                recorded = pending.pre_digests
                snapshot_is_pre_op = table_digests(manager.db) == recorded
                if snapshot_is_pre_op:
                    if pending.kind in REPLAYABLE:
                        _replay(manager, pending)
                        save_warehouse(manager, path)
                        journal.commit_op(pending.op_id)
                        action = "rolled_forward"
                    else:
                        journal.abort_op(pending.op_id)
                        action = "rolled_back"
                else:
                    # The atomic checkpoint landed, so the snapshot *is* the
                    # completed post-state; only the commit mark was lost.
                    journal.commit_op(pending.op_id)
                    action = "already_applied"
            healed = heal_engine_state(manager.db)
            audits = audit_manager(manager)
            recovery_span.set(action=action, pending=pending.describe() if pending else "")
            obs.metric_inc("recoveries")
            return RecoveryReport(path, pending, action, audits, healed)
        finally:
            journal.close()


def main(argv: list[str]) -> int:
    """CLI front end: ``python -m repro recover <file>``."""
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro recover <warehouse.db>")
        return 0 if argv else 2
    report = recover(argv[0])
    print(report.format())
    return 0 if report.green else 1
