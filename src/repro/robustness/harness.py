"""Randomized crash-schedule driver for the fault-injection suite.

:class:`RetailCrashHarness` drives a deterministic retail workload
(Example 1.1's customer/sales join view under the combined scenario)
through a :class:`~repro.robustness.durable.DurableWarehouse`, with a
*crash schedule* — a set of ``(fault point, visit number)`` pairs — armed
on the process-wide injector.  Whenever an
:class:`~repro.robustness.faults.InjectedCrash` fires, the harness does
exactly what a restarted process would do:

1. abandon the in-memory warehouse entirely (the simulated death);
2. run :func:`repro.robustness.recovery.recover` — retrying if the
   schedule crashes *recovery itself*, which must therefore be
   idempotent;
3. reopen the warehouse from the snapshot and resume the workload at
   the interrupted step.

User transactions carry idempotency tokens, so a step whose intent
committed before the crash is skipped on resume — the workload applies
exactly once no matter where the schedule kills it.  The final state of
any schedule must be bag-equal to an uninterrupted run and leave every
invariant green; :meth:`RetailCrashHarness.run` asserts neither and
returns both so tests can.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.algebra.bag import Bag
from repro.robustness.durable import DurableWarehouse
from repro.robustness.faults import CRASH_POINTS, INJECTOR, InjectedCrash
from repro.robustness.journal import journal_path
from repro.robustness.recovery import RecoveryReport, recover
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

__all__ = ["CrashEvent", "HarnessResult", "RetailCrashHarness", "random_schedule"]


@dataclass(frozen=True)
class CrashEvent:
    """Kill the process at the ``hit``-th visit of ``point``."""

    point: str
    hit: int


@dataclass
class HarnessResult:
    """Outcome of one (possibly crash-ridden) workload run."""

    contents: dict[str, Bag]
    crashes: int
    recoveries: list[RecoveryReport] = field(default_factory=list)

    @property
    def green(self) -> bool:
        return all(report.green for report in self.recoveries)


def random_schedule(rng: random.Random, *, max_events: int = 3, max_hit: int = 30) -> list[CrashEvent]:
    """A random crash schedule: 1–``max_events`` kills at random visits.

    Draws from :data:`~repro.robustness.faults.CRASH_POINTS` only — the
    ``flaky-*`` seams model transient backend trouble, which storms
    (:meth:`~repro.robustness.faults.FaultInjector.arm_storm`) rain on
    instead of scheduling.
    """
    points = sorted(CRASH_POINTS)
    events = []
    for __ in range(rng.randint(1, max_events)):
        events.append(CrashEvent(rng.choice(points), rng.randint(1, max_hit)))
    return events


class RetailCrashHarness:
    """Deterministic retail workload, killable at any fault point."""

    def __init__(
        self,
        path: str | Path,
        *,
        seed: int = 96,
        txns: int = 6,
        exec_mode: str | None = None,
        governed: bool = False,
        governor_opts: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.seed = seed
        self.txns = txns
        self.exec_mode = exec_mode
        self.governed = governed
        self.governor_opts = governor_opts
        self.config = RetailConfig(
            customers=24, items=10, initial_sales=60, txn_inserts=4, seed=seed
        )
        self._txn_specs = self._plan_transactions()

    # ------------------------------------------------------------------
    # Deterministic workload plan
    # ------------------------------------------------------------------

    def _plan_transactions(self) -> list[tuple[list, list]]:
        """Precompute every transaction's literal (inserts, deletes).

        Planned once, up front, from the seeded generator — so the same
        rows are applied no matter how many times the run is interrupted
        and resumed.
        """
        workload = RetailWorkload(self.config)
        # Materialize initial data through the same generator state the
        # setup step will use, then derive the update stream.
        self._customer_rows = workload.customer_rows()
        self._sales_rows = workload.initial_sales_rows()
        rng = random.Random(self.seed + 1)
        live = list(self._sales_rows)
        specs: list[tuple[list, list]] = []
        for __ in range(self.txns):
            inserts = [workload._sale_row() for __ in range(self.config.txn_inserts)]
            live.extend(inserts)
            deletes = []
            if rng.random() < 0.5 and live:
                for __ in range(rng.randint(1, 2)):
                    deletes.append(live.pop(rng.randrange(len(live))))
            specs.append((inserts, deletes))
        return specs

    def _ops(self) -> list[tuple[str, str | None]]:
        ops: list[tuple[str, str | None]] = [("setup", None), ("view", None)]
        for index in range(self.txns):
            ops.append(("txn", f"txn-{self.seed}-{index}"))
            if index % 2 == 1:
                ops.append(("propagate", None))
            if index % 3 == 2:
                ops.append(("partial_refresh", None))
        ops.append(("refresh", None))
        return ops

    # ------------------------------------------------------------------
    # Step application (each step idempotent under resume)
    # ------------------------------------------------------------------

    def _apply(self, warehouse: DurableWarehouse, kind: str, arg: str | None) -> None:
        if kind == "setup":
            if not warehouse.db.has_table("customer"):
                warehouse.create_table("customer", ("custId", "name", "address", "score"))
            if not warehouse.db["customer"]:
                warehouse.load("customer", self._customer_rows)
            if not warehouse.db.has_table("sales"):
                warehouse.create_table("sales", ("custId", "itemNo", "quantity", "salesPrice"))
            if not warehouse.db["sales"]:
                warehouse.load("sales", self._sales_rows)
        elif kind == "view":
            if "V" not in warehouse.views():
                warehouse.define_view("V", VIEW_SQL, scenario="combined")
        elif kind == "txn":
            index = int(arg.rsplit("-", 1)[1])
            inserts, deletes = self._txn_specs[index]
            txn = warehouse.transaction(token=arg)
            if inserts:
                txn.insert("sales", inserts)
            if deletes:
                txn.delete("sales", deletes)
            txn.run()
        elif kind == "propagate":
            warehouse.propagate("V")
        elif kind == "partial_refresh":
            warehouse.partial_refresh("V")
        elif kind == "refresh":
            warehouse.refresh("V")
        else:  # pragma: no cover
            raise ValueError(f"unknown workload op {kind!r}")

    # ------------------------------------------------------------------
    # Driving with crashes
    # ------------------------------------------------------------------

    def _attach(self) -> DurableWarehouse:
        # The snapshot stores no engine choice, so the harness replays
        # its configured exec_mode/governed flags on every reopen — a
        # vectorized chaos run stays vectorized across every simulated
        # process death.
        if self.path.exists():
            return DurableWarehouse.open(
                self.path,
                auto_recover=False,
                exec_mode=self.exec_mode,
                governed=self.governed,
                governor_opts=self.governor_opts,
            )
        return DurableWarehouse(
            self.path,
            exec_mode=self.exec_mode,
            governed=self.governed,
            governor_opts=self.governor_opts,
        )

    def _recover_until_done(self, result: HarnessResult) -> None:
        """Recovery must survive crashes of its own (idempotence)."""
        while True:
            try:
                result.recoveries.append(recover(self.path))
                return
            except InjectedCrash:
                result.crashes += 1

    def run(
        self,
        schedule: list[CrashEvent] | None = None,
        *,
        trace: bool = False,
        storm_seed: int | None = None,
        storm_probability: float = 0.05,
        storm_points: frozenset[str] | None = None,
    ) -> HarnessResult:
        """Drive the full workload, crashing and recovering per schedule.

        With ``trace`` the injector counts fault-point visits (in
        ``INJECTOR.hits``) without the run crashing — used to verify the
        point catalog is actually reachable.  ``storm_seed`` arms a
        seeded transient-fault storm on every ``flaky-*`` seam for the
        whole run (independently of, and composable with, the crash
        schedule); under a governed warehouse the storm must stay
        invisible to the workload.
        """
        for stale in (self.path, journal_path(self.path), self.path.with_name(self.path.name + ".saving")):
            if stale.exists():
                stale.unlink()
        INJECTOR.reset()
        if trace:
            INJECTOR.trace()
        for event in schedule or []:
            INJECTOR.arm(event.point, hit=event.hit)
        if storm_seed is not None:
            INJECTOR.arm_storm(
                seed=storm_seed, probability=storm_probability, points=storm_points
            )
        result = HarnessResult(contents={}, crashes=0)
        warehouse: DurableWarehouse | None = None
        ops = self._ops()
        index = 0
        while index < len(ops):
            if warehouse is None:
                try:
                    warehouse = self._attach()
                except InjectedCrash:
                    result.crashes += 1
                    if self.path.exists():
                        self._recover_until_done(result)
                    continue
            kind, arg = ops[index]
            try:
                self._apply(warehouse, kind, arg)
            except InjectedCrash:
                result.crashes += 1
                warehouse.close()
                warehouse = None
                self._recover_until_done(result)
                continue
            index += 1
        if not trace:  # tracing callers read INJECTOR.hits before resetting
            INJECTOR.reset()
        assert warehouse is not None
        result.contents = {name: warehouse.query(name) for name in warehouse.views()}
        warehouse.close()
        return result
