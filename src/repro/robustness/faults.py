"""Named fault-injection points for crash-safety testing.

The crash-safety layer (:mod:`repro.robustness`) is only trustworthy if
every claim about "a crash at point X recovers to a green invariant" is
actually exercised.  This module provides the machinery: a catalog of
*named injection points* threaded through the maintenance hot path
(``scenarios.py``, ``warehouse/manager.py``, ``storage/persistence.py``,
``storage/database.py``, and the durable wrapper itself), and a process
wide :class:`FaultInjector` that can be armed to

* **crash** at the *n*-th visit of a point — raising
  :class:`InjectedCrash`, a ``BaseException`` subclass so ordinary
  ``except Exception`` handlers cannot accidentally swallow the
  simulated process death; or
* raise a **transient** error (by default SQLite's
  ``OperationalError: database is locked``) for a bounded number of
  visits, to exercise retry-with-backoff paths.

When nothing is armed, :func:`fault_point` is a single attribute check —
cheap enough to leave compiled into production code paths.

The catalog (see :data:`FAULT_POINTS`):

======================= =========================================================
point                   where it fires
======================= =========================================================
crash-before-journal    durable op, before the intent record is written
crash-after-journal     durable op, intent journaled, before any state mutation
crash-mid-apply         ``Database.apply`` commit phase, between table installs
crash-mid-execute       ``ViewManager.execute``, after planning, before applying
crash-mid-refresh       inside a refresh critical section, before the plan runs
crash-mid-propagate     ``propagate_C``, before the propagation plan runs
crash-mid-checkpoint    ``save_database``, temp file written, before ``os.replace``
crash-after-checkpoint  durable op, checkpoint durable, before the journal commit
crash-after-commit      durable op, journal committed, before returning
crash-mid-consolidate   columnar consolidation, staged rows built, before the swap
crash-mid-delta-cache   ``EpochDeltaCache.store``, before the entry installs
crash-mid-partition-apply ``PartitionedDatabase.apply_parts``, between partitions
flaky-save              ``save_database``, start of a (retried) write attempt
flaky-mirror-upsert     ``SQLiteMirror._apply_net``, before the UPSERT batch
flaky-mirror-adopt      ``SQLiteMirror._adopt``, before the eager table create
flaky-mirror-reload     ``SQLiteMirror._reload``, before the wholesale re-insert
flaky-index-create      ``SQLiteMirror._create_index``, before the CREATE INDEX
flaky-pushdown-execute  ``PushdownExecutor._sql_eval``, before the compiled SELECT
flaky-governor-probe    engine governor, half-open probe, before the cross-check
======================= =========================================================

``crash-*`` points simulate process death (:class:`InjectedCrash`);
``flaky-*`` points sit on retryable backend seams and are the targets
of :meth:`FaultInjector.arm_storm`'s probabilistic transient storms.
"""

from __future__ import annotations

import random
import sqlite3

from repro import obs
from typing import Callable

__all__ = [
    "CRASH_POINTS",
    "FAULT_POINTS",
    "STORM_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "INJECTOR",
    "fault_point",
]


class InjectedCrash(BaseException):
    """A simulated process death at a named fault point.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    library code catching ``Exception`` treats it the way a real crash
    would behave: nothing downstream of the raise point runs except
    ``finally`` blocks.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


#: Every injection point the codebase is instrumented with.
FAULT_POINTS: frozenset[str] = frozenset(
    {
        "crash-before-journal",
        "crash-after-journal",
        "crash-mid-apply",
        "crash-mid-execute",
        "crash-mid-refresh",
        "crash-mid-propagate",
        "crash-mid-checkpoint",
        "crash-after-checkpoint",
        "crash-after-commit",
        "crash-mid-consolidate",
        "crash-mid-delta-cache",
        "crash-mid-partition-apply",
        "flaky-save",
        "flaky-mirror-upsert",
        "flaky-mirror-adopt",
        "flaky-mirror-reload",
        "flaky-index-create",
        "flaky-pushdown-execute",
        "flaky-governor-probe",
    }
)

#: Transient-only points: retryable backend seams where a real deployment
#: sees contention/IO errors, never a process death.
STORM_POINTS: frozenset[str] = frozenset(
    point for point in FAULT_POINTS if point.startswith("flaky-")
)

#: Points where crash schedules may kill the process.
CRASH_POINTS: frozenset[str] = FAULT_POINTS - STORM_POINTS


def _locked_error() -> Exception:
    return sqlite3.OperationalError("database is locked")


class FaultInjector:
    """Process-wide registry of armed faults and visit counters."""

    def __init__(self) -> None:
        self.active = False
        self.tracing = False
        self.hits: dict[str, int] = {}
        self._crashes: dict[str, list[int]] = {}
        self._transients: dict[str, tuple[int, Callable[[], Exception]]] = {}
        #: Probabilistic transient storm: (points, probability, rng, factory).
        self._storm: tuple[frozenset[str], float, random.Random, Callable[[], Exception]] | None = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Disarm everything and forget visit counts."""
        self.active = False
        self.tracing = False
        self.hits.clear()
        self._crashes.clear()
        self._transients.clear()
        self._storm = None

    def arm(self, point: str, *, hit: int = 1) -> None:
        """Crash at the ``hit``-th visit of ``point`` (1-based, one-shot)."""
        self._require(point)
        if hit < 1:
            raise ValueError("hit numbers are 1-based")
        self._crashes.setdefault(point, []).append(self.hits.get(point, 0) + hit)
        self.active = True

    def arm_transient(
        self,
        point: str,
        *,
        times: int = 1,
        exc_factory: Callable[[], Exception] = _locked_error,
    ) -> None:
        """Raise a transient error at the next ``times`` visits of ``point``."""
        self._require(point)
        self._transients[point] = (times, exc_factory)
        self.active = True

    def arm_storm(
        self,
        *,
        seed: int,
        probability: float = 0.05,
        points: frozenset[str] | None = None,
        exc_factory: Callable[[], Exception] = _locked_error,
    ) -> None:
        """Rain seeded transient errors on the retryable backend seams.

        Every visit of a storm point independently raises with the given
        ``probability`` — modeling sustained backend contention rather
        than the one-shot schedules of :meth:`arm_transient`.  Only
        :data:`STORM_POINTS` (the ``flaky-*`` seams) are eligible;
        crashes never rain, they are scheduled.  Cleared by
        :meth:`reset`.
        """
        points = STORM_POINTS if points is None else points
        unknown = points - STORM_POINTS
        if unknown:
            raise ValueError(f"not transient storm points: {sorted(unknown)}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("storm probability must be in [0, 1]")
        self._storm = (frozenset(points), probability, random.Random(seed), exc_factory)
        self.active = True

    def trace(self) -> None:
        """Count visits without raising (for reachability checks)."""
        self.tracing = True

    def _require(self, point: str) -> None:
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}; catalog: {sorted(FAULT_POINTS)}")

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def fire(self, point: str) -> None:
        """Record a visit of ``point`` and raise if a fault is armed for it."""
        self._require(point)
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        transient = self._transients.get(point)
        if transient is not None:
            remaining, factory = transient
            if remaining > 1:
                self._transients[point] = (remaining - 1, factory)
            else:
                del self._transients[point]
            obs.metric_inc("faults_injected")
            raise factory()
        scheduled = self._crashes.get(point)
        if scheduled and count in scheduled:
            scheduled.remove(count)
            if not scheduled:
                del self._crashes[point]
            obs.metric_inc("faults_injected")
            raise InjectedCrash(point)
        storm = self._storm
        if storm is not None:
            points, probability, rng, factory = storm
            if point in points and rng.random() < probability:
                obs.metric_inc("faults_injected")
                raise factory()

    def armed(self) -> bool:
        """Whether any crash, transient, or storm fault is still pending."""
        return bool(self._crashes or self._transients or self._storm)


#: The process-wide injector used by :func:`fault_point`.
INJECTOR = FaultInjector()


def fault_point(name: str) -> None:
    """Visit a named injection point (no-op unless the injector is live)."""
    if INJECTOR.active or INJECTOR.tracing:
        INJECTOR.fire(name)
