"""Crash-safe maintenance: intent journal, recovery, fault injection.

The paper's framework is a set of database invariants (``INV_BL``,
``INV_DT``, ``INV_C``) that hold *between* maintenance operations.  This
package makes them hold *across process deaths* too:

* :mod:`repro.robustness.faults` — named injection points threaded
  through the maintenance hot path, and the process-wide injector that
  arms crashes and transient errors at them;
* :mod:`repro.robustness.journal` — the write-ahead intent journal: an
  fsync'd SQLite file recording every maintenance operation (kind, view,
  log watermark, delta payloads, table digests) *before* any state
  mutates, with client-token deduplication for exactly-once replay;
* :mod:`repro.robustness.durable` — :class:`DurableWarehouse`, the
  journaled, checkpoint-on-every-op wrapper around
  :class:`~repro.warehouse.ViewManager`;
* :mod:`repro.robustness.recovery` — the invariant auditor and the
  recovery runner behind ``python -m repro recover <file>``: classify
  the interrupted operation from the journal, roll it forward or back,
  and prove the scenario invariants green;
* :mod:`repro.robustness.harness` — the randomized crash-schedule
  driver that kills a retail workload at every reachable point and
  checks recovery against an uninterrupted oracle run.

Submodules are imported lazily so the storage layer's ``fault_point``
calls never create import cycles.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CRASH_POINTS",
    "CircuitBreaker",
    "DurableWarehouse",
    "EngineGovernor",
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "INJECTOR",
    "IntentJournal",
    "RecoveryReport",
    "STORM_POINTS",
    "audit_manager",
    "bag_digest",
    "fault_point",
    "heal_engine_state",
    "recover",
]

_EXPORTS = {
    "CRASH_POINTS": ("repro.robustness.faults", "CRASH_POINTS"),
    "CircuitBreaker": ("repro.robustness.governor", "CircuitBreaker"),
    "DurableWarehouse": ("repro.robustness.durable", "DurableWarehouse"),
    "EngineGovernor": ("repro.robustness.governor", "EngineGovernor"),
    "FAULT_POINTS": ("repro.robustness.faults", "FAULT_POINTS"),
    "FaultInjector": ("repro.robustness.faults", "FaultInjector"),
    "InjectedCrash": ("repro.robustness.faults", "InjectedCrash"),
    "INJECTOR": ("repro.robustness.faults", "INJECTOR"),
    "IntentJournal": ("repro.robustness.journal", "IntentJournal"),
    "RecoveryReport": ("repro.robustness.recovery", "RecoveryReport"),
    "STORM_POINTS": ("repro.robustness.faults", "STORM_POINTS"),
    "audit_manager": ("repro.robustness.recovery", "audit_manager"),
    "bag_digest": ("repro.robustness.journal", "bag_digest"),
    "fault_point": ("repro.robustness.faults", "fault_point"),
    "heal_engine_state": ("repro.robustness.governor", "heal_engine_state"),
    "recover": ("repro.robustness.recovery", "recover"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
